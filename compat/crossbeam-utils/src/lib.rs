//! An in-tree, API-compatible subset of `crossbeam-utils` (see
//! `compat/parking_lot` for why these shims exist). Only [`CachePadded`] is
//! implemented — the single item this workspace uses.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) the size of a cache line, so that
/// two `CachePadded` values never share a line and hot per-thread counters
/// don't false-share.
///
/// 128 bytes covers the common cases: x86_64 prefetches cache-line pairs and
/// Apple/ARM64 server cores use 128-byte lines outright.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_aligns_to_128() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(41);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
