//! An in-tree, API-compatible subset of the `parking_lot` crate, implemented
//! over `std::sync` primitives.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies the code uses are provided as small
//! path crates under `compat/`. Only the surface the workspace actually
//! uses is implemented:
//!
//! * [`Mutex`] / [`MutexGuard`] — infallible `lock()` (poisoning is ignored,
//!   matching parking_lot semantics).
//! * [`RwLock`] with `read()` / `write()`.
//! * [`Condvar`] with `notify_one` / `notify_all` / `wait` / `wait_for`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock with an infallible, poison-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard is stored as an `Option` so [`Condvar::wait_for`] can
/// temporarily take ownership of it (std's wait API moves the guard); it is
/// always `Some` outside that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock with an infallible, poison-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
///
/// Unlike parking_lot, std requires every wait on one `Condvar` to use the
/// same mutex; std panics at runtime on mismatch, which is acceptable for
/// this workspace (each condvar is paired with exactly one mutex).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiting thread. Returns `true` if a thread may have been
    /// woken (std does not report this; `true` keeps callers conservative).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads. Returns 0 (std does not report the count).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside wait");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present outside wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(1);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(!*g);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_one();
        t.join().unwrap();
    }
}
