//! An in-tree, API-compatible subset of the `rand` crate (see
//! `compat/parking_lot` for why these shims exist).
//!
//! Implements exactly the surface the workspace uses: [`Rng::gen`] /
//! [`Rng::gen_range`] over half-open integer ranges, [`SeedableRng`], and a
//! deterministic [`rngs::StdRng`]. The generator is xoshiro256++ seeded via
//! splitmix64 — statistically solid for workload generation, not
//! cryptographic.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be produced from uniform random bits ([`Rng::gen`]).
pub trait Standardable {
    /// Builds a value from 64 uniform bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standardable for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standardable for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standardable for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

macro_rules! impl_standardable_int {
    ($($t:ty),*) => {$(
        impl Standardable for $t {
            fn from_bits(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}
impl_standardable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Samples uniformly from `[low, high)` given 64 uniform bits.
    fn sample_range(bits: u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range(bits: u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Modulo bias is ≤ span/2^64 — irrelevant for workload
                // generation (and the shim promises determinism, not
                // perfection).
                low.wrapping_add((bits as u128 % span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// User-facing convenience methods, blanket-implemented for every bit
/// source.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of `T` (`f64` is in `[0, 1)`).
    fn gen<T: Standardable>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Returns a uniform sample from the half-open `range`.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self.next_u64(), range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10_u64..20);
            assert!((10..20).contains(&v));
        }
        // Small spans hit every value.
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.gen_range(0_usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        assert!(sample(&mut r) < 1.0);
    }
}
