//! An in-tree, API-compatible subset of the `proptest` crate (see
//! `compat/parking_lot` for why these shims exist).
//!
//! Implements random-generation property testing with the surface this
//! workspace's test suites use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, [`prop_oneof!`] (weighted and unweighted), `any::<T>()`,
//! integer-range strategies, tuple strategies, `&str` character-class regex
//! strategies, and `proptest::collection::{vec, hash_set}`.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! case index and seed instead of a minimised input) and generation is fully
//! deterministic per test name + case index, so failures reproduce across
//! runs without a persistence file.

use std::fmt;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case, seeded from the test name and
    /// case index so every case is distinct but reproducible.
    pub fn deterministic(case: u64, test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; the shim never rejects inputs.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// A property failure (or rejection) raised by `prop_assert*` or returned
/// manually from a property body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input should not count as a case (unused by this workspace but
    /// part of the API shape).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "property failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything a property-test file needs, star-importable.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property, failing the case (with shrink-free
/// reporting) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?} ({})",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?} ({})",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Picks one of several strategies, optionally with integer weights:
/// `prop_oneof![2 => a, 1 => b]` or `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __rng = $crate::TestRng::deterministic(case, stringify!($name));
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u16, u32),
        Del(u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            2 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Put(k, v)),
            1 => any::<u16>().prop_map(Op::Del),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 10_u64..20, y in 1_usize..4) {
            prop_assert!((10..20).contains(&x), "x = {}", x);
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_produces_both_variants(ops in crate::collection::vec(op_strategy(), 64..65)) {
            let puts = ops.iter().filter(|o| matches!(o, Op::Put(..))).count();
            prop_assert!(puts > 0 && puts < ops.len());
        }

        #[test]
        fn string_regex_subset_matches_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "s = {}", s);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = crate::collection::vec(any::<u32>(), 1..50);
        let a = s.generate(&mut crate::TestRng::deterministic(3, "t"));
        let b = s.generate(&mut crate::TestRng::deterministic(3, "t"));
        let c = s.generate(&mut crate::TestRng::deterministic(4, "t"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_set_reaches_requested_size() {
        let s = crate::collection::hash_set(any::<u32>(), 5..6);
        let set = s.generate(&mut crate::TestRng::deterministic(0, "t"));
        assert_eq!(set.len(), 5);
    }
}
