//! Collection strategies (`proptest::collection::{vec, hash_set}`).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        assert!(span > 0, "empty collection size range");
        let len = self.size.start + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` whose length is in `size` (half-open, like proptest).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let span = self.size.end - self.size.start;
        assert!(span > 0, "empty collection size range");
        let target = self.size.start + rng.below(span as u64) as usize;
        let mut set = HashSet::with_capacity(target);
        // Duplicates are retried a bounded number of times; tiny value
        // domains may produce a smaller set, exactly like real proptest's
        // best-effort set filling.
        let mut attempts = 0;
        while set.len() < target && attempts < 10 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates a `HashSet` whose size is in `size` (best-effort for small
/// value domains).
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size }
}
