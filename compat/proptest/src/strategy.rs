//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by [`crate::prop_oneof!`] to mix
    /// differently typed arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// A strategy that always produces a clone of its value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased strategies (built by
/// [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds a choice from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick below total weight")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with occasional wider code points, always valid.
        match rng.below(4) {
            0..=2 => (0x20 + rng.below(0x5F) as u32) as u8 as char,
            _ => char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('\u{FFFD}'),
        }
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);
impl_tuple_strategy!(A B C D E F);

/// `&str` literals act as regex strategies. The shim supports the character
/// class + repetition subset the workspace uses: `[class]{m,n}`, plain
/// literal strings, and concatenations of those.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
            let class = expand_class(&chars[i + 1..close], pattern);
            i = close + 1;
            let (min, max, next) = parse_repetition(&chars, i, pattern);
            i = next;
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        } else {
            // A literal character (optionally repeated).
            let c = chars[i];
            assert!(
                !"\\^$.|?*+(){".contains(c),
                "regex feature {c:?} not supported by the proptest shim (pattern {pattern:?})"
            );
            i += 1;
            let (min, max, next) = parse_repetition(&chars, i, pattern);
            i = next;
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(c);
            }
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty character class in {pattern:?}");
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

/// Parses an optional `{m,n}` / `{m}` suffix at `i`; returns
/// `(min, max, next_index)` with a default of exactly-once.
fn parse_repetition(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| i + p)
        .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (
            m.parse().expect("repetition lower bound"),
            n.parse().expect("repetition upper bound"),
        ),
        None => {
            let exact: usize = body.parse().expect("repetition count");
            (exact, exact)
        }
    };
    assert!(min <= max, "inverted repetition {{{body}}} in {pattern:?}");
    (min, max, close + 1)
}
