//! An in-tree, API-compatible subset of the `bytes` crate (see
//! `compat/parking_lot` for why these shims exist).
//!
//! [`Bytes`] is a cheaply clonable, immutable byte buffer backed by
//! `Arc<[u8]>` — reference-counted clones are what let the relativistic GET
//! fast path copy a cache value out of a read-side critical section without
//! copying the payload.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice (copies; the shim has no
    /// zero-copy static representation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7E => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Bytes::from("abc"), Bytes::copy_from_slice(b"abc"));
        assert_eq!(Bytes::from_static(b"xyz").len(), 3);
        assert_eq!(Bytes::from(vec![1, 2]).to_vec(), vec![1, 2]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from("payload");
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn slicing_and_compare() {
        let a = Bytes::from("hello");
        assert_eq!(&a[..2], b"he");
        assert!(a.starts_with(b"hel"));
        assert_eq!(a, b"hello"[..]);
    }

    #[test]
    fn debug_escapes_non_printables() {
        let s = format!("{:?}", Bytes::from_static(b"a\r\n\x01"));
        assert_eq!(s, "b\"a\\r\\n\\x01\"");
    }
}
