//! An in-tree, API-compatible subset of the `criterion` crate (see
//! `compat/parking_lot` for why these shims exist).
//!
//! Runs each benchmark closure in a timed loop and prints median
//! nanoseconds per iteration. No statistical analysis, HTML reports or
//! outlier detection — enough to compare implementations locally and to
//! keep `cargo bench` compiling and running offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so existing `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            measurement_time: Duration::from_millis(500),
            sample_size: 20,
        }
    }

    /// Sets the default measurement window (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the default sample count (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{id}"),
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets this group's measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets this group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.measurement_time,
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (report already printed incrementally).
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    measurement_time: Duration,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        budget_per_sample: measurement_time
            .checked_div(sample_size.max(1) as u32)
            .unwrap_or(Duration::from_millis(10)),
        target_samples: sample_size.max(1),
    };
    f(&mut bencher);
    bencher.samples.sort_unstable_by(f64::total_cmp);
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or(0.0);
    eprintln!(
        "  {label}: median {median:.1} ns/iter ({} samples)",
        bencher.samples.len()
    );
}

/// Timing helper handed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    budget_per_sample: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Measures `f` repeatedly, recording time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(5) {
            black_box(f());
            warmup_iters += 1;
        }
        let est_per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let iters_per_sample = ((self.budget_per_sample.as_secs_f64() / est_per_iter.max(1e-9))
            as u64)
            .clamp(1, 1_000_000);

        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let nanos = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(nanos);
        }
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut group = c.benchmark_group("shim");
        group
            .measurement_time(Duration::from_millis(10))
            .sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("id", 4), &4, |b, n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 1).to_string(), "a/1");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
