//! Cross-crate reclamation stress: values removed from relativistic data
//! structures must be dropped exactly once, and never while any reader could
//! still hold a reference to them.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use relativist::hash::{FnvBuildHasher, RpHashMap};
use relativist::list::RpList;
use relativist::rcu::{pin, RcuDomain};

/// A value that tracks how many times it has been dropped and poisons its
/// payload on drop, so a use-after-free shows up as a data mismatch.
struct Tracked {
    payload: u64,
    check: u64,
    drops: Arc<AtomicUsize>,
}

impl Tracked {
    fn new(payload: u64, drops: Arc<AtomicUsize>) -> Self {
        Tracked {
            payload,
            check: payload ^ 0xDEAD_BEEF_DEAD_BEEF,
            drops,
        }
    }

    fn verify(&self) {
        assert_eq!(
            self.check,
            self.payload ^ 0xDEAD_BEEF_DEAD_BEEF,
            "value observed after poisoning (use after free?)"
        );
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.verify();
        // Poison so that any later read through a dangling reference fails
        // the `verify` assertion above (in practice the allocator would also
        // likely scribble over it, but this makes the check deterministic).
        self.check = 0;
        self.payload = 1;
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// Waits (bounded) for a condition that may be completed by a reclamation
/// pass running in another test of this binary — the global RCU domain is
/// shared, so another test's `synchronize_and_reclaim` may be the one that
/// executes our deferred frees.
fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        RcuDomain::global().synchronize_and_reclaim();
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn map_values_dropped_exactly_once_and_never_early() {
    const KEYS: u64 = 512;
    const ROUNDS: u64 = 40;

    let drops = Arc::new(AtomicUsize::new(0));
    let map: Arc<RpHashMap<u64, Tracked, FnvBuildHasher>> =
        Arc::new(RpHashMap::with_buckets_and_hasher(64, FnvBuildHasher));

    for k in 0..KEYS {
        map.insert(k, Tracked::new(k, Arc::clone(&drops)));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|seed| {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = seed as u64;
                while !stop.load(Ordering::Relaxed) {
                    k = (k * 48271 + 1) % KEYS;
                    let guard = map.pin();
                    if let Some(t) = map.get(&k, &guard) {
                        t.verify();
                    }
                }
            })
        })
        .collect();

    // Writer: replace every key repeatedly (each replacement retires the old
    // node) and resize now and then.
    for round in 1..=ROUNDS {
        for k in 0..KEYS {
            map.insert(
                k,
                Tracked::new(k.wrapping_add(round << 32), Arc::clone(&drops)),
            );
        }
        if round % 8 == 0 {
            map.expand();
        } else if round % 8 == 4 {
            map.shrink();
        }
    }

    stop.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }

    // Flush all deferred frees, then drop the map itself.
    assert!(
        wait_until(|| drops.load(Ordering::SeqCst) as u64 == KEYS * ROUNDS),
        "every replaced value must be dropped exactly once after reclamation \
         (dropped {} of {})",
        drops.load(Ordering::SeqCst),
        KEYS * ROUNDS
    );
    drop(map);
    assert!(
        wait_until(|| drops.load(Ordering::SeqCst) as u64 == KEYS * (ROUNDS + 1)),
        "the final generation must be dropped by the map's Drop (dropped {} of {})",
        drops.load(Ordering::SeqCst),
        KEYS * (ROUNDS + 1)
    );
}

#[test]
fn list_reader_keeps_removed_node_alive_until_guard_drop() {
    let drops = Arc::new(AtomicUsize::new(0));
    let list: RpList<Tracked> = RpList::new();
    list.push_front(Tracked::new(7, Arc::clone(&drops)));

    let guard = pin();
    let node = list.find(&guard, |t| t.payload == 7).expect("present");
    assert!(list.remove_first(|t| t.payload == 7));

    // The node is retired but must not be reclaimed while `guard` lives,
    // even if another thread drives grace periods.
    let reclaimer = std::thread::spawn(|| {
        // This grace period must wait for the guard above to drop.
        RcuDomain::global().synchronize_and_reclaim();
    });
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        drops.load(Ordering::SeqCst),
        0,
        "freed while still referenced"
    );
    node.verify();

    drop(guard);
    reclaimer.join().unwrap();
    assert!(
        wait_until(|| drops.load(Ordering::SeqCst) == 1),
        "dropped exactly once"
    );
}

#[test]
fn domain_stats_reflect_reclamation_work() {
    let before = RcuDomain::global().stats();
    let map: RpHashMap<u64, u64, FnvBuildHasher> =
        RpHashMap::with_buckets_and_hasher(16, FnvBuildHasher);
    for k in 0..128 {
        map.insert(k, k);
    }
    for k in 0..128 {
        map.remove(&k);
    }
    assert!(
        wait_until(|| {
            let after = RcuDomain::global().stats();
            after.grace_periods > before.grace_periods
                && after.callbacks_executed >= before.callbacks_executed + 128
        }),
        "grace periods and callback executions must advance after 128 removals: {:?} -> {:?}",
        before,
        RcuDomain::global().stats()
    );
}
