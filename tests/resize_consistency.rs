//! The paper's central guarantee, tested end to end across crates: while the
//! table is being resized continuously and concurrently mutated, a reader
//! traversing a hash bucket always observes every element that belongs to
//! it — no lookup of a stable key ever misses.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use relativist::hash::{FnvBuildHasher, RpHashMap};
use relativist::rcu::RcuDomain;

const STABLE_KEYS: u64 = 4096;

fn stable_value(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

#[test]
fn lookups_never_miss_during_continuous_resizing() {
    let map: Arc<RpHashMap<u64, u64, FnvBuildHasher>> =
        Arc::new(RpHashMap::with_buckets_and_hasher(64, FnvBuildHasher));
    for key in 0..STABLE_KEYS {
        map.insert(key, stable_value(key));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let lookups_done = Arc::new(AtomicU64::new(0));
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let reader_threads = (cpus - 1).clamp(2, 6);

    let readers: Vec<_> = (0..reader_threads)
        .map(|seed| {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            let lookups_done = Arc::clone(&lookups_done);
            std::thread::spawn(move || {
                let mut key = seed as u64;
                let mut local = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    key = (key
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407))
                        % STABLE_KEYS;
                    let guard = map.pin();
                    let value = map.get(&key, &guard).copied();
                    assert_eq!(
                        value,
                        Some(stable_value(key)),
                        "lookup of stable key {key} failed during resizing"
                    );
                    local += 1;
                }
                lookups_done.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();

    // A resizer thread toggles the table between two sizes as fast as it
    // can, and a writer thread churns a disjoint range of volatile keys.
    let resizer = {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                map.resize_to(if rounds.is_multiple_of(2) { 2048 } else { 64 });
                rounds += 1;
            }
            rounds
        })
    };
    let writer = {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                let key = STABLE_KEYS + (i % 1024);
                map.insert(key, i);
                map.remove(&key);
                i += 1;
            }
        })
    };

    std::thread::sleep(Duration::from_millis(1500));
    stop.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }
    let resize_rounds = resizer.join().unwrap();
    writer.join().unwrap();

    assert!(
        resize_rounds >= 2,
        "the resizer should have completed at least one full toggle (did {resize_rounds})"
    );
    assert!(lookups_done.load(Ordering::Relaxed) > 10_000);

    // After the dust settles the table must be structurally sound and the
    // stable keys all present exactly once.
    map.check_invariants().expect("invariants after stress");
    assert_eq!(map.len() as u64, STABLE_KEYS);
    let guard = map.pin();
    assert_eq!(map.iter(&guard).count() as u64, STABLE_KEYS);
    drop(guard);
    RcuDomain::global().synchronize_and_reclaim();
}

#[test]
fn shrink_and_expand_interleaved_with_updates() {
    let map: RpHashMap<u64, String, FnvBuildHasher> =
        RpHashMap::with_buckets_and_hasher(1, FnvBuildHasher);
    for round in 0..6_u64 {
        for key in (round * 500)..((round + 1) * 500) {
            map.insert(key, format!("value-{key}"));
        }
        map.expand();
        for key in (round * 500)..(round * 500 + 250) {
            assert!(map.remove(&key));
        }
        if round % 2 == 0 {
            map.shrink();
        }
        map.check_invariants().expect("invariants each round");
    }
    assert_eq!(map.len(), 6 * 250);
    let guard = map.pin();
    for round in 0..6_u64 {
        for key in (round * 500 + 250)..((round + 1) * 500) {
            assert_eq!(
                map.get(&key, &guard).map(String::as_str),
                Some(format!("value-{key}").as_str())
            );
        }
    }
}
