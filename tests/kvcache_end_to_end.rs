//! End-to-end tests of the memcached-style cache: many TCP clients against
//! both engines, expiry behaviour, and the paper's qualitative claim that
//! the relativistic engine's GET path does not serialise readers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use relativist::kvcache::client::CacheClient;
use relativist::kvcache::server::CacheServer;
use relativist::kvcache::{CacheEngine, Item, LockEngine, RpEngine};

fn exercise_over_tcp(engine: Arc<dyn CacheEngine>) {
    let name = engine.name();
    let mut server = CacheServer::start(engine, 0).expect("bind server");
    let addr = server.addr();

    let clients = 6;
    let per_client_keys = 200;
    let hits = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let hits = Arc::clone(&hits);
            std::thread::spawn(move || {
                let mut client = CacheClient::connect(addr).expect("connect");
                for i in 0..per_client_keys {
                    let key = format!("c{c}-k{i}");
                    assert!(client
                        .set(&key, c, 0, format!("{c}:{i}").as_bytes())
                        .unwrap());
                }
                for i in 0..per_client_keys {
                    let key = format!("c{c}-k{i}");
                    let value = client.get(&key).unwrap().expect("own key present");
                    assert_eq!(value, format!("{c}:{i}").into_bytes());
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                // Cross-client visibility: client 0's keys are visible to all.
                if c != 0 {
                    assert!(client.get("c0-k0").unwrap().is_some());
                }
                client.quit().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        hits.load(Ordering::Relaxed),
        (clients * per_client_keys) as u64,
        "every client must read back every key it wrote ({name})"
    );

    assert_eq!(server.engine().len(), (clients * per_client_keys) as usize);
    server.shutdown();
}

#[test]
fn tcp_end_to_end_with_lock_engine() {
    exercise_over_tcp(Arc::new(LockEngine::new()));
}

#[test]
fn tcp_end_to_end_with_rp_engine() {
    exercise_over_tcp(Arc::new(RpEngine::new()));
}

#[test]
fn expired_entries_disappear_from_both_engines() {
    let engines: Vec<Arc<dyn CacheEngine>> =
        vec![Arc::new(LockEngine::new()), Arc::new(RpEngine::new())];
    for engine in engines {
        let mut soon = Item::new(0, "transient");
        soon.expires_at = Some(Instant::now() + Duration::from_millis(40));
        engine.set("transient", soon);
        engine.set("durable", Item::new(0, "stays"));

        assert!(engine.get("transient").is_some(), "{}", engine.name());
        std::thread::sleep(Duration::from_millis(60));
        assert!(engine.get("transient").is_none(), "{}", engine.name());
        assert!(engine.get("durable").is_some(), "{}", engine.name());
        assert_eq!(engine.purge_expired(), 0, "lazy expiry already removed it");
    }
}

/// Both engines must produce the same hit/miss behaviour for the same
/// operation sequence (the engines differ only in synchronisation).
#[test]
fn engines_agree_on_cache_semantics() {
    let lock = LockEngine::new();
    let rp = RpEngine::new();
    for i in 0..500_u32 {
        let key = format!("k{}", i % 100);
        match i % 5 {
            0 | 1 => {
                lock.set(&key, Item::new(i, format!("v{i}")));
                rp.set(&key, Item::new(i, format!("v{i}")));
            }
            2 => {
                assert_eq!(
                    lock.delete(&key),
                    rp.delete(&key),
                    "delete({key}) diverged at step {i}"
                );
            }
            _ => {
                let a = lock.get(&key).map(|item| (item.flags, item.data));
                let b = rp.get(&key).map(|item| (item.flags, item.data));
                assert_eq!(a, b, "get({key}) diverged at step {i}");
            }
        }
    }
    assert_eq!(lock.len(), rp.len());
}

/// Qualitative scaling check behind the memcached figure: with several
/// threads issuing GETs, the relativistic engine must not be slower than the
/// global-lock engine (on most hosts it is substantially faster). This is a
/// coarse guard against regressions in the fast path, not a benchmark.
#[test]
fn rp_gets_are_not_slower_than_global_lock_gets() {
    fn get_throughput(engine: Arc<dyn CacheEngine>, threads: usize) -> f64 {
        for i in 0..1024_u32 {
            engine.set(&format!("key{i}"), Item::new(0, "value"));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let ops = Arc::clone(&ops);
                std::thread::spawn(move || {
                    let mut k = t as u32;
                    let mut local = 0_u64;
                    while !stop.load(Ordering::Relaxed) {
                        k = (k.wrapping_mul(1103515245).wrapping_add(12345)) % 1024;
                        let _ = engine.get(&format!("key{k}"));
                        local += 1;
                    }
                    ops.fetch_add(local, Ordering::Relaxed);
                })
            })
            .collect();
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        ops.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads = cpus.clamp(2, 8);
    let rp = get_throughput(Arc::new(RpEngine::new()), threads);
    let lock = get_throughput(Arc::new(LockEngine::new()), threads);
    eprintln!("GET throughput with {threads} threads: rp={rp:.0}/s, global-lock={lock:.0}/s");
    if cpus < 4 {
        // With fewer than a handful of cores there is no reader parallelism
        // for the global lock to destroy, so the comparison is not
        // meaningful; the throughput numbers above are still recorded.
        return;
    }
    assert!(
        rp > lock * 0.8,
        "relativistic GETs ({rp:.0}/s) should not be slower than global-lock GETs ({lock:.0}/s) \
         with {threads} threads"
    );
}
