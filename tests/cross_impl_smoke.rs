//! Cross-implementation concurrent smoke test: every table implementation
//! must survive the same mixed concurrent workload with correct results for
//! a stable key set (the deterministic sequential equivalence is covered by
//! the proptest suites; this adds multi-threaded execution).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use relativist::baselines::{
    BucketLockTable, ConcurrentMap, DddsTable, MutexTable, RwLockTable, XuTable,
};
use relativist::hash::{FnvBuildHasher, RpHashMap};
use relativist::shard::ShardedRpMap;
use relativist::splitorder::SplitOrderMap;

const STABLE: u64 = 1024;

fn hammer(map: Arc<dyn ConcurrentMap<u64, u64>>) {
    let name = map.name();
    for k in 0..STABLE {
        map.insert(k, k + 1);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Readers check the stable keys.
    for seed in 0..3_u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut k = seed;
            while !stop.load(Ordering::Relaxed) {
                k = (k * 25214903917 + 11) % STABLE;
                assert_eq!(
                    map.lookup(&k),
                    Some(k + 1),
                    "{name}: stable key {k} missing"
                );
            }
        }));
    }

    // A writer churns volatile keys above the stable range.
    {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                let k = STABLE + (i % 256);
                map.insert(k, i);
                if i % 2 == 1 {
                    map.remove(&k);
                }
                i += 1;
            }
        }));
    }

    // A resizer toggles the table size if the implementation supports it.
    if map.supports_resize() {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut round = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                map.resize_to(if round.is_multiple_of(2) { 4096 } else { 256 });
                round += 1;
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }

    for k in 0..STABLE {
        assert_eq!(
            map.lookup(&k),
            Some(k + 1),
            "{name}: stable key {k} after stress"
        );
    }
    relativist::rcu::RcuDomain::global().synchronize_and_reclaim();
}

/// The relativistic maps again, with the reader population split across
/// both read-side flavors: EBR guards *and* QSBR handles verify the stable
/// keys while a writer churns and a resizer toggles the table — the
/// map-level counterpart of running the server matrix under both
/// `--read-side` flavors.
fn hammer_with_qsbr_readers<L, R>(lookup_ebr: L, lookup_qsbr: R, resize: impl Fn(u64) + Send + Sync)
where
    L: Fn(u64) -> Option<u64> + Send + Sync,
    R: Fn(u64, &relativist::hash::QsbrReadHandle) -> Option<u64> + Send + Sync,
{
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for seed in 0..2_u64 {
            let lookup = &lookup_ebr;
            let stop = &stop;
            s.spawn(move || {
                let mut k = seed;
                while !stop.load(Ordering::Relaxed) {
                    k = (k * 25214903917 + 11) % STABLE;
                    assert_eq!(lookup(k), Some(k + 1), "EBR: stable key {k} missing");
                }
            });
        }
        for seed in 0..2_u64 {
            let lookup = &lookup_qsbr;
            let stop = &stop;
            s.spawn(move || {
                let mut handle = relativist::hash::QsbrReadHandle::register();
                let mut k = seed.wrapping_mul(77);
                let mut ops = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    k = k
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407)
                        % STABLE;
                    assert_eq!(
                        lookup(k, &handle),
                        Some(k + 1),
                        "QSBR: stable key {k} missing"
                    );
                    ops += 1;
                    if ops.is_multiple_of(64) {
                        handle.quiescent_state();
                    }
                }
            });
        }
        {
            let resize = &resize;
            let stop = &stop;
            s.spawn(move || {
                let mut round = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    resize(round);
                    round += 1;
                }
            });
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::SeqCst);
    });
    relativist::rcu::GraceSync::global().synchronize_and_reclaim();
}

#[test]
fn rp_hash_map_qsbr_and_ebr_readers_survive_resizes() {
    let map = RpHashMap::<u64, u64, FnvBuildHasher>::with_buckets_and_hasher(256, FnvBuildHasher);
    for k in 0..STABLE {
        map.insert(k, k + 1);
    }
    hammer_with_qsbr_readers(
        |k| {
            let guard = map.pin();
            map.get(&k, &guard).copied()
        },
        |k, handle| map.get_qsbr(&k, handle).copied(),
        |round| map.resize_to(if round.is_multiple_of(2) { 4096 } else { 256 }),
    );
    map.check_invariants().unwrap();
}

#[test]
fn sharded_rp_map_qsbr_and_ebr_readers_survive_resizes() {
    let map = ShardedRpMap::<u64, u64>::with_shards(8);
    for k in 0..STABLE {
        map.insert(k, k + 1);
    }
    hammer_with_qsbr_readers(
        |k| map.get_cloned(&k),
        |k, handle| {
            // Exercise both the single-key and the batched QSBR paths.
            if k.is_multiple_of(7) {
                map.multi_get_qsbr(&[k], handle).remove(0)
            } else {
                map.get_qsbr(&k, handle).copied()
            }
        },
        |round| map.resize_total_to(if round.is_multiple_of(2) { 4096 } else { 256 }),
    );
    map.check_invariants().unwrap();
}

#[test]
fn split_order_map_qsbr_and_ebr_readers_survive_resizes() {
    let map = SplitOrderMap::<u64, u64>::with_buckets(256);
    for k in 0..STABLE {
        map.insert(k, k + 1);
    }
    hammer_with_qsbr_readers(
        |k| {
            let guard = map.pin();
            map.get(&k, &guard).copied()
        },
        |k, handle| map.get(&k, handle).copied(),
        |round| map.resize_to(if round.is_multiple_of(2) { 4096 } else { 256 }),
    );
    map.check_invariants().unwrap();
}

#[test]
fn rp_hash_map_survives_concurrent_mixed_workload() {
    hammer(Arc::new(
        RpHashMap::<u64, u64, FnvBuildHasher>::with_buckets_and_hasher(256, FnvBuildHasher),
    ));
}

#[test]
fn sharded_rp_map_survives_concurrent_mixed_workload() {
    hammer(Arc::new(ShardedRpMap::<u64, u64>::with_shards(8)));
}

#[test]
fn split_order_map_survives_concurrent_mixed_workload() {
    hammer(Arc::new(SplitOrderMap::<u64, u64>::with_buckets(256)));
}

#[test]
fn ddds_survives_concurrent_mixed_workload() {
    hammer(Arc::new(DddsTable::<u64, u64>::with_buckets(256)));
}

#[test]
fn rwlock_table_survives_concurrent_mixed_workload() {
    hammer(Arc::new(RwLockTable::<u64, u64>::with_buckets(256)));
}

#[test]
fn mutex_table_survives_concurrent_mixed_workload() {
    hammer(Arc::new(MutexTable::<u64, u64>::with_buckets(256)));
}

#[test]
fn bucket_lock_table_survives_concurrent_mixed_workload() {
    hammer(Arc::new(BucketLockTable::<u64, u64>::with_buckets(256)));
}

#[test]
fn xu_table_survives_concurrent_mixed_workload() {
    hammer(Arc::new(XuTable::<u64, u64>::with_buckets(256)));
}
