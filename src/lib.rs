//! # relativist
//!
//! A Rust reproduction of *Resizable, Scalable, Concurrent Hash Tables via
//! Relativistic Programming* (Triplett, McKenney & Walpole, USENIX ATC'11).
//!
//! This facade crate re-exports the workspace crates so applications can
//! depend on a single package:
//!
//! * [`rcu`] — userspace relativistic-programming (RCU) primitives:
//!   delimited readers, pointer publication, grace periods, deferred
//!   reclamation.
//! * [`list`] — a relativistic singly linked list.
//! * [`hash`] — the paper's contribution: [`hash::RpHashMap`], a hash table
//!   with wait-free lookups that can be grown and shrunk while readers run
//!   at full speed.
//! * [`shard`] — [`shard::ShardedRpMap`], a power-of-two array of
//!   independent relativistic tables: shard-local writer locks and resizes
//!   for parallel updates, plus batched `multi_get` / `multi_put` /
//!   `multi_remove` that amortise guard and lock acquisition per shard.
//! * [`maint`] — [`maint::MaintThread`], the background resize maintenance
//!   driver: with [`shard::ShardedRpMap::with_maintenance`], writers that
//!   hit a load-factor trigger only *request* a resize and a maintenance
//!   thread drives the incremental zip/unzip state machine, absorbing every
//!   grace-period wait off the writer path.
//! * [`splitorder`] — [`splitorder::SplitOrderMap`], the main *competing*
//!   resize philosophy: a lock-free split-ordered list (Shalev & Shavit)
//!   whose resizes move no data and never wait for a grace period, sharing
//!   the workspace's `ReadProtect` lookup witnesses and `GraceSync`
//!   reclamation funnel.
//! * [`baselines`] — the designs the paper compares against (DDDS,
//!   reader-writer locking, per-bucket locking, Herbert Xu's dual-chain
//!   tables).
//! * [`net`] — [`net::EventLoop`], a dependency-free epoll reactor:
//!   N worker threads, one shared listener (`EPOLLEXCLUSIVE` sharded
//!   accepts), per-connection read/write buffering with backpressure, and
//!   graceful drain — the kvcache server's event-loop front end.
//! * [`kvcache`] — a memcached-style key-value cache with a global-lock
//!   engine and a relativistic GET fast-path engine, served either
//!   thread-per-connection or via the `rp-net` event loop
//!   ([`kvcache::ServerConfig`]).
//! * [`workload`] — key-distribution generators and the multi-threaded
//!   measurement harness used by the benchmarks.
//!
//! # Quick start
//!
//! ```
//! use relativist::hash::RpHashMap;
//!
//! let map: RpHashMap<u64, String> = RpHashMap::new();
//! map.insert(1, "one".to_string());
//! map.insert(2, "two".to_string());
//!
//! // Readers pin a guard (enter a read-side critical section); lookups
//! // never block, even while another thread resizes the table.
//! {
//!     let guard = map.pin();
//!     assert_eq!(map.get(&1, &guard).map(String::as_str), Some("one"));
//! }
//!
//! // Resize; the data stays reachable for readers the whole time.
//! map.resize_to(1024);
//! let guard = map.pin();
//! assert_eq!(map.get(&2, &guard).map(String::as_str), Some("two"));
//! ```

pub use rp_baselines as baselines;
pub use rp_hash as hash;
pub use rp_kvcache as kvcache;
pub use rp_list as list;
pub use rp_maint as maint;
pub use rp_net as net;
pub use rp_rcu as rcu;
pub use rp_shard as shard;
pub use rp_splitorder as splitorder;
pub use rp_workload as workload;
