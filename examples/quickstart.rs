//! Quickstart: the resizable relativistic hash map in a dozen lines.
//!
//! Run with: `cargo run --release --example quickstart`

use relativist::hash::{ResizePolicy, RpHashMap};
use relativist::rcu::RcuDomain;

fn main() {
    // A map with automatic resizing, like the Linux kernel's rhashtable
    // (the descendant of the paper's algorithm).
    let map: RpHashMap<String, u64> = RpHashMap::with_buckets_hasher_and_policy(
        16,
        std::collections::hash_map::RandomState::new(),
        ResizePolicy::automatic(),
    );

    // Writers: plain method calls; they serialise on an internal mutex.
    for i in 0..10_000_u64 {
        map.insert(format!("key-{i}"), i);
    }
    println!(
        "inserted {} entries; the table grew to {} buckets on its own",
        map.len(),
        map.num_buckets()
    );

    // Readers: pin a guard (enter a read-side critical section), then look
    // things up with zero locking. References stay valid while the guard
    // lives, even if the entry is concurrently removed or the table resized.
    {
        let guard = map.pin();
        let v = map.get("key-4242", &guard).expect("present");
        println!("key-4242 -> {v}");
    }

    // Explicit resizing is also available; readers on other threads keep
    // running at full speed while this happens.
    map.resize_to(64);
    println!("resized down to {} buckets", map.num_buckets());
    map.resize_to(4096);
    println!("resized up to {} buckets", map.num_buckets());

    // All entries survived both resizes.
    let guard = map.pin();
    assert!((0..10_000_u64).all(|i| map.get(&format!("key-{i}"), &guard) == Some(&i)));
    println!("all {} entries still present after resizing", map.len());
    drop(guard);

    // Removals retire nodes through the RCU domain; a grace period later
    // they are actually freed.
    for i in 0..5_000_u64 {
        map.remove(&format!("key-{i}"));
    }
    RcuDomain::global().synchronize_and_reclaim();
    println!(
        "removed half the entries; {} remain, resize stats: {:?}",
        map.len(),
        map.stats()
    );
}
