//! The paper's headline scenario, live: reader threads hammer the table with
//! lookups while one thread grows and shrinks it continuously. Every lookup
//! of a stable key must succeed at every instant — that is the consistency
//! guarantee of the zip/unzip algorithms — and the run prints the observed
//! lookup throughput alongside the number of resizes that completed.
//!
//! Run with: `cargo run --release --example resize_under_load`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use relativist::hash::{FnvBuildHasher, RpHashMap};

const ENTRIES: u64 = 16_384;
const SMALL: usize = 1 << 10;
const LARGE: usize = 1 << 14;
const RUN_FOR: Duration = Duration::from_secs(3);

fn main() {
    let map: Arc<RpHashMap<u64, u64, FnvBuildHasher>> =
        Arc::new(RpHashMap::with_buckets_and_hasher(SMALL, FnvBuildHasher));
    for key in 0..ENTRIES {
        map.insert(key, key * 2 + 1);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let total_lookups = Arc::new(AtomicU64::new(0));
    let readers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        - 1;

    let mut handles = Vec::new();
    for reader in 0..readers.max(1) {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total_lookups);
        handles.push(std::thread::spawn(move || {
            let mut key = reader as u64;
            let mut local = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                key = (key.wrapping_mul(6364136223846793005).wrapping_add(1)) % ENTRIES;
                let guard = map.pin();
                match map.get(&key, &guard) {
                    Some(v) => assert_eq!(*v, key * 2 + 1),
                    None => panic!("key {key} disappeared during a resize — consistency violated"),
                }
                local += 1;
            }
            total.fetch_add(local, Ordering::Relaxed);
        }));
    }

    let resizer = {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut resizes = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                map.resize_to(if resizes.is_multiple_of(2) {
                    LARGE
                } else {
                    SMALL
                });
                resizes += 1;
            }
            resizes
        })
    };

    let start = Instant::now();
    std::thread::sleep(RUN_FOR);
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }
    let resizes = resizer.join().unwrap();
    let elapsed = start.elapsed();

    let lookups = total_lookups.load(Ordering::Relaxed);
    println!(
        "{} reader thread(s): {:.1} million lookups/s while the table resized {} times",
        readers.max(1),
        lookups as f64 / elapsed.as_secs_f64() / 1e6,
        resizes
    );
    println!(
        "final state: {} entries in {} buckets, stats: {:?}",
        map.len(),
        map.num_buckets(),
        map.stats()
    );
    println!("no lookup ever missed a stable key — the relativistic guarantee held");
}
