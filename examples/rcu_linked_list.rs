//! The relativistic linked list and the raw RCU primitives it is built on:
//! publication, wait-for-readers and deferred reclamation.
//!
//! Run with: `cargo run --release --example rcu_linked_list`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use relativist::list::RpList;
use relativist::rcu::{pin, RcuDomain};

fn main() {
    // --- The raw primitives -------------------------------------------------
    let domain = RcuDomain::global();
    println!(
        "grace periods completed so far: {}",
        domain.stats().grace_periods
    );

    // --- A relativistic linked list under concurrent churn ------------------
    let list: Arc<RpList<u64>> = Arc::new(RpList::new());
    // Ten "permanent" sentinel entries that must always be visible.
    for i in 0..10 {
        list.push_front(i * 100);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scans = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    let guard = pin();
                    let sentinels = list.iter(&guard).filter(|v| *v % 100 == 0).count();
                    assert_eq!(sentinels, 10, "a sentinel vanished mid-traversal");
                    scans += 1;
                }
                scans
            })
        })
        .collect();

    // A writer keeps inserting and removing transient entries while the
    // readers traverse.
    for round in 1..=200_u64 {
        for i in 1..50 {
            list.push_front(round * 1000 + i);
        }
        list.remove_all(|v| v % 100 != 0);
        if round % 20 == 0 {
            RcuDomain::global().synchronize_and_reclaim();
        }
    }
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::SeqCst);

    let total_scans: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    RcuDomain::global().synchronize_and_reclaim();

    println!("readers completed {total_scans} full traversals while the writer churned 200 rounds");
    println!(
        "list length is back to {} sentinels; domain stats: {:?}",
        list.len(),
        domain.stats()
    );
}
