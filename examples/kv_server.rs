//! End-to-end memcached-style demo: start the cache server with the
//! relativistic engine, talk to it over TCP with the bundled client, and
//! print the engine's statistics — the miniature version of the paper's
//! memcached experiment.
//!
//! Run with: `cargo run --release --example kv_server`

use std::sync::Arc;

use relativist::kvcache::client::CacheClient;
use relativist::kvcache::server::CacheServer;
use relativist::kvcache::{CacheEngine, RpEngine};

fn main() -> std::io::Result<()> {
    // The relativistic engine: GETs are wait-free lookups in an RpHashMap,
    // SETs go through the writer lock, the index resizes itself.
    let engine: Arc<RpEngine> = Arc::new(RpEngine::with_capacity(100_000));
    let engine_dyn: Arc<dyn CacheEngine> = engine.clone();
    let mut server = CacheServer::start(engine_dyn, 0)?;
    println!("cache server listening on {}", server.addr());

    // A few clients hammer the server concurrently.
    let addr = server.addr();
    let mut workers = Vec::new();
    for worker in 0..4 {
        workers.push(std::thread::spawn(move || -> std::io::Result<(u64, u64)> {
            let mut client = CacheClient::connect(addr)?;
            let mut sets = 0_u64;
            let mut hits = 0_u64;
            for i in 0..2_000_u64 {
                let key = format!("user:{worker}:{i}");
                if client.set(&key, 0, 0, format!("profile-data-{i}").as_bytes())? {
                    sets += 1;
                }
                if client.get(&key)?.is_some() {
                    hits += 1;
                }
            }
            Ok((sets, hits))
        }));
    }

    let mut total_sets = 0;
    let mut total_hits = 0;
    for w in workers {
        let (sets, hits) = w.join().expect("worker thread")?;
        total_sets += sets;
        total_hits += hits;
    }
    println!("clients performed {total_sets} SETs and got {total_hits} GET hits over TCP");

    // Inspect the server-side statistics through the protocol.
    let mut client = CacheClient::connect(addr)?;
    println!("server version: {}", client.version()?);
    for (name, value) in client.stats()? {
        println!("  STAT {name} {value}");
    }
    println!(
        "relativistic index grew to {} buckets for {} items",
        engine.index_buckets(),
        engine.len()
    );

    server.shutdown();
    Ok(())
}
