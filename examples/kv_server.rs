//! End-to-end memcached-style demo: start the cache server, talk to it over
//! TCP with the bundled client, and print the engine's statistics — the
//! miniature version of the paper's memcached experiment.
//!
//! Run with: `cargo run --release --example kv_server`
//!
//! Environment:
//!
//! * `RP_KV_ENGINE` — `rp` (default; single relativistic table), `rp-shard`
//!   (sharded relativistic index), or `lock` (global-lock baseline).
//! * `RP_KV_MODE` — `event-loop` (default; the rp-net epoll reactor) or
//!   `threaded` (one OS thread per connection).
//! * `RP_KV_PORT` — TCP port (default 0 = pick a free one).
//! * `RP_KV_STAY` — set to keep serving until the process is killed instead
//!   of exiting after the demo workload.
//!
//! For the full flag set (worker counts, `--maint-*` resize-maintenance
//! tuning, …) use the real daemon: `cargo run -p rp-kvcache --bin kvcached
//! -- --help`.

use std::sync::Arc;

use relativist::kvcache::client::CacheClient;
use relativist::kvcache::server::{start_server, ServerConfig, ServerMode};
use relativist::kvcache::{CacheEngine, LockEngine, RpEngine, ShardedRpEngine};

fn main() -> std::io::Result<()> {
    let engine_name = std::env::var("RP_KV_ENGINE").unwrap_or_else(|_| "rp".to_string());
    let engine: Arc<dyn CacheEngine> = match engine_name.as_str() {
        // GETs are wait-free lookups in an RpHashMap, SETs go through the
        // single writer lock, the index resizes itself.
        "rp" => Arc::new(RpEngine::with_capacity(100_000)),
        // Same read side, but the index is sharded: SETs and resizes only
        // contend within one shard and multi-key GETs batch per shard.
        "rp-shard" => Arc::new(ShardedRpEngine::with_shards_and_capacity(16, 100_000)),
        "lock" => Arc::new(LockEngine::with_capacity(100_000)),
        other => {
            eprintln!("unknown RP_KV_ENGINE {other:?} (expected rp | rp-shard | lock)");
            std::process::exit(2);
        }
    };
    let port = std::env::var("RP_KV_PORT")
        .ok()
        .and_then(|p| p.parse().ok())
        .unwrap_or(0_u16);
    let mode = match std::env::var("RP_KV_MODE").as_deref() {
        Ok("threaded") => ServerMode::Threaded,
        _ => ServerMode::EventLoop,
    };
    let config = ServerConfig {
        port,
        mode,
        ..ServerConfig::default()
    };
    let mut server = start_server(Arc::clone(&engine), &config)?;
    println!(
        "cache server ({}, {} mode) listening on {}",
        engine.name(),
        match server.mode() {
            ServerMode::Threaded => "threaded",
            ServerMode::EventLoop => "event-loop",
        },
        server.addr()
    );

    // A few clients hammer the server concurrently.
    let addr = server.addr();
    let mut workers = Vec::new();
    for worker in 0..4 {
        workers.push(std::thread::spawn(
            move || -> std::io::Result<(u64, u64)> {
                let mut client = CacheClient::connect(addr)?;
                let mut sets = 0_u64;
                let mut hits = 0_u64;
                for i in 0..2_000_u64 {
                    let key = format!("user:{worker}:{i}");
                    if client.set(&key, 0, 0, format!("profile-data-{i}").as_bytes())? {
                        sets += 1;
                    }
                    if client.get(&key)?.is_some() {
                        hits += 1;
                    }
                }
                Ok((sets, hits))
            },
        ));
    }

    let mut total_sets = 0;
    let mut total_hits = 0;
    for w in workers {
        let (sets, hits) = w.join().expect("worker thread")?;
        total_sets += sets;
        total_hits += hits;
    }
    println!("clients performed {total_sets} SETs and got {total_hits} GET hits over TCP");

    // Inspect the server-side statistics through the protocol.
    let mut client = CacheClient::connect(addr)?;
    println!("server version: {}", client.version()?);
    for (name, value) in client.stats()? {
        println!("  STAT {name} {value}");
    }
    println!("engine holds {} items", engine.len());

    if std::env::var("RP_KV_STAY").is_ok() {
        println!("RP_KV_STAY set: serving until killed");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    server.shutdown();
    Ok(())
}
