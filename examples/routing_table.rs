//! A kernel-flavoured scenario: a connection-tracking table (the kind of
//! workload that motivated resizable RCU hash tables in the Linux kernel).
//!
//! Flows are keyed by a 5-tuple; the fast path looks flows up on every
//! "packet" without taking any lock, new flows are inserted and old flows
//! expire concurrently, NAT rewrites *rename* a flow key atomically, and the
//! table resizes itself as the flow count grows and shrinks.
//!
//! Run with: `cargo run --release --example routing_table`

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use relativist::hash::{FnvBuildHasher, ResizePolicy, RpHashMap};

/// A flow key: the classic 5-tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FlowKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    proto: u8,
}

impl FlowKey {
    fn new(i: u64) -> Self {
        FlowKey {
            src: Ipv4Addr::from(0x0a00_0000 | (i as u32 & 0xffff)),
            dst: Ipv4Addr::from(0xc0a8_0000 | ((i >> 4) as u32 & 0xffff)),
            src_port: 1024 + (i % 50_000) as u16,
            dst_port: 443,
            proto: 6,
        }
    }
}

/// Per-flow state the fast path reads.
#[derive(Debug, Clone)]
struct FlowState {
    #[allow(dead_code)] // Carried to give entries realistic size; the demo only reads `action`.
    packets: u64,
    action: &'static str,
}

fn main() {
    let table: Arc<RpHashMap<FlowKey, FlowState, FnvBuildHasher>> = Arc::new(
        RpHashMap::with_buckets_hasher_and_policy(256, FnvBuildHasher, ResizePolicy::automatic()),
    );

    // Seed some long-lived flows.
    for i in 0..20_000_u64 {
        table.insert(
            FlowKey::new(i),
            FlowState {
                packets: 0,
                action: if i % 7 == 0 { "drop" } else { "accept" },
            },
        );
    }
    println!(
        "seeded {} flows; table auto-expanded to {} buckets",
        table.len(),
        table.num_buckets()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let lookups = Arc::new(AtomicU64::new(0));
    let drops = Arc::new(AtomicU64::new(0));

    // Packet-processing threads: pure lookups on the fast path.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers: Vec<_> = (0..cpus.max(2) - 1)
        .map(|w| {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            let lookups = Arc::clone(&lookups);
            let drops = Arc::clone(&drops);
            std::thread::spawn(move || {
                let mut i = w as u64;
                let mut local_lookups = 0_u64;
                let mut local_drops = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    i = (i.wrapping_mul(48271)) % 20_000;
                    let key = FlowKey::new(i);
                    let guard = table.pin();
                    if let Some(state) = table.get(&key, &guard) {
                        if state.action == "drop" {
                            local_drops += 1;
                        }
                    }
                    local_lookups += 1;
                }
                lookups.fetch_add(local_lookups, Ordering::Relaxed);
                drops.fetch_add(local_drops, Ordering::Relaxed);
            })
        })
        .collect();

    // Control-plane thread: expire old flows, add new ones, and NAT-rename a
    // few existing flows (the atomic move operation).
    let control = {
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut renames = 0_u64;
            let mut next_flow = 20_000_u64;
            while !stop.load(Ordering::Relaxed) {
                // Expire a slice of old flows and admit new ones.
                for i in 0..200 {
                    table.remove(&FlowKey::new((next_flow - 20_000 + i) % 20_000));
                    table.insert(
                        FlowKey::new(next_flow + i),
                        FlowState {
                            packets: 0,
                            action: "accept",
                        },
                    );
                }
                next_flow += 200;
                // NAT rewrite: the flow keeps its state but changes key.
                let old = FlowKey::new(next_flow - 100);
                let mut new = old.clone();
                new.src_port = new.src_port.wrapping_add(1);
                if table.rename(&old, new) {
                    renames += 1;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            renames
        })
    };

    std::thread::sleep(Duration::from_secs(2));
    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().unwrap();
    }
    let renames = control.join().unwrap();

    println!(
        "fast path processed {:.1} million packets/s ({} drops) while the control plane churned flows",
        lookups.load(Ordering::Relaxed) as f64 / 2.0 / 1e6,
        drops.load(Ordering::Relaxed)
    );
    println!(
        "control plane performed {renames} NAT renames; final table: {} flows in {} buckets, stats {:?}",
        table.len(),
        table.num_buckets(),
        table.stats()
    );
}
