//! The scaling claim behind the event loop: 1000 concurrent connections
//! served by a fixed worker pool, with the process thread count staying
//! flat (≤ workers + 2 threads for the whole server) — the property a
//! thread-per-connection server cannot have.
//!
//! This test lives in its own integration-test binary so the `/proc`
//! thread-count measurement is not disturbed by sibling tests' threads.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rp_kvcache::server::{start_server, ServerConfig, ServerHandle, ServerMode};
use rp_kvcache::{RpEngine, ShardedRpEngine};

const CONNECTIONS: usize = 1000;
const WORKERS: usize = 2;

/// Serialises the two tests: both measure `/proc/self/status` thread
/// counts, which would race if the harness ran them concurrently.
static THREAD_COUNT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn a_thousand_connections_on_a_fixed_worker_pool() {
    let _guard = THREAD_COUNT_LOCK.lock().unwrap();
    let engine = Arc::new(ShardedRpEngine::with_shards_and_capacity(16, 1 << 20));
    let config = ServerConfig {
        mode: ServerMode::EventLoop,
        workers: WORKERS,
        drain_timeout: Duration::from_secs(10),
        port: 0,
        ..ServerConfig::default()
    };
    let mut server = start_server(engine, &config).expect("start event-loop server");
    match &server {
        ServerHandle::EventLoop(s) => assert_eq!(s.worker_count(), WORKERS),
        ServerHandle::Threaded(_) => panic!("expected event loop"),
    }

    // Baseline AFTER the server is up: its entire thread budget is already
    // spent (the engine's maintenance thread included).
    let threads_before = process_threads();

    let mut clients: Vec<BufReader<TcpStream>> = Vec::with_capacity(CONNECTIONS);
    for i in 0..CONNECTIONS {
        let mut stream = TcpStream::connect(server.addr())
            .unwrap_or_else(|e| panic!("connect #{i} failed: {e}"));
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        // Every connection stores its own key immediately, so all 1000 are
        // live protocol sessions, not just idle sockets.
        let payload = format!("n{i}");
        stream
            .write_all(format!("set conn:{i} 0 0 {}\r\n{payload}\r\n", payload.len()).as_bytes())
            .unwrap();
        clients.push(BufReader::new(stream));
    }

    // All sockets open and written: the server must not have grown a thread
    // per connection. Allow a little slack for runtime/test helper threads.
    let threads_during = process_threads();
    assert!(
        threads_during <= threads_before + 2,
        "thread count grew with connections: {threads_before} -> {threads_during} \
         for {CONNECTIONS} connections (event loop must stay at {WORKERS} workers)"
    );

    // Every connection gets its answer...
    for (i, client) in clients.iter_mut().enumerate() {
        let mut line = String::new();
        client.read_line(&mut line).unwrap();
        assert_eq!(line, "STORED\r\n", "connection {i}");
    }
    // ...and can read back through any other connection's shard.
    for step in [0_usize, 1, 499, 999] {
        let stream = clients[step].get_mut();
        stream
            .write_all(format!("get conn:{step}\r\n").as_bytes())
            .unwrap();
        let mut line = String::new();
        clients[step].read_line(&mut line).unwrap();
        assert!(
            line.starts_with(&format!("VALUE conn:{step} 0 ")),
            "{line:?}"
        );
        let mut rest = String::new();
        clients[step].read_line(&mut rest).unwrap(); // payload
        rest.clear();
        clients[step].read_line(&mut rest).unwrap(); // END
        assert_eq!(rest, "END\r\n");
    }

    assert_eq!(server.engine().len(), CONNECTIONS);

    // Half the clients stay connected through shutdown; their pending
    // requests (sent but unread) must still be answered.
    let mut parting: Vec<BufReader<TcpStream>> = clients.drain(..500).collect();
    for (i, client) in parting.iter_mut().enumerate() {
        client
            .get_mut()
            .write_all(format!("get conn:{i}\r\n").as_bytes())
            .unwrap();
    }
    server.shutdown();
    for (i, client) in parting.iter_mut().enumerate() {
        let mut line = String::new();
        client.read_line(&mut line).unwrap();
        assert!(
            line.starts_with(&format!("VALUE conn:{i} 0 ")),
            "request shed on shutdown for connection {i}: {line:?}"
        );
    }
}

#[test]
fn threaded_baseline_grows_a_thread_per_connection() {
    // The control experiment: the thread-per-connection server's thread
    // count tracks the connection count — the cost rp-net removes.
    let _guard = THREAD_COUNT_LOCK.lock().unwrap();
    let mut server = start_server(Arc::new(RpEngine::new()), &ServerConfig::threaded()).unwrap();
    let before = process_threads();
    let conns: Vec<TcpStream> = (0..50)
        .map(|_| {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.write_all(b"version\r\n").unwrap();
            s
        })
        .collect();
    // Give the accept loop a moment to spawn all handlers.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if process_threads() >= before + 45 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        process_threads() >= before + 45,
        "expected ~50 new threads, got {} -> {}",
        before,
        process_threads()
    );
    drop(conns);
    server.shutdown();
}
