//! Equivalence proptests between the two protocol representations: the
//! borrowed zero-allocation decoder ([`RefDecoder`] / [`RequestRef`]) and
//! the legacy owned decoder ([`RequestDecoder`] / [`Command`]) must agree
//! on every byte stream, at every chunking — and the responses each path
//! serialises must match **byte for byte**.

use bytes::Bytes;
use proptest::prelude::*;

use rp_kvcache::protocol::{
    Command, Decoded, DecodedRequest, RefDecoder, RequestDecoder, Response,
};
use rp_kvcache::server::{execute, execute_ref};
use rp_kvcache::{CacheEngine, EngineReadCtx, LockEngine};

fn key_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9:_-]{1,32}"
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

/// Renders a command back into wire format (the inverse of the parser).
fn encode(cmd: &Command) -> Vec<u8> {
    match cmd {
        Command::Get(keys) => format!("get {}\r\n", keys.join(" ")).into_bytes(),
        Command::Set {
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            let mut out = format!(
                "set {key} {flags} {exptime} {}{}\r\n",
                data.len(),
                if *noreply { " noreply" } else { "" }
            )
            .into_bytes();
            out.extend_from_slice(data);
            out.extend_from_slice(b"\r\n");
            out
        }
        Command::Delete { key, noreply } => {
            format!("delete {key}{}\r\n", if *noreply { " noreply" } else { "" }).into_bytes()
        }
        Command::Stats => b"stats\r\n".to_vec(),
        Command::Version => b"version\r\n".to_vec(),
        Command::Quit => b"quit\r\n".to_vec(),
    }
}

/// Commands without `quit` (which ends a session and would truncate the
/// comparison streams asymmetrically mid-test; quit parity is covered by
/// the e2e suite).
fn command_strategy() -> impl Strategy<Value = Command> {
    prop_oneof![
        proptest::collection::vec(key_strategy(), 1..4).prop_map(Command::Get),
        (
            key_strategy(),
            any::<u32>(),
            0_u64..100_000,
            value_strategy(),
            any::<bool>()
        )
            .prop_map(|(key, flags, exptime, data, noreply)| Command::Set {
                key,
                flags,
                exptime,
                data: Bytes::from(data),
                noreply,
            }),
        (key_strategy(), any::<bool>()).prop_map(|(key, noreply)| Command::Delete { key, noreply }),
        Just(Command::Stats),
        Just(Command::Version),
    ]
}

/// A line that parses as Invalid (never Incomplete), to exercise the error
/// paths of both decoders identically.
fn junk_line_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        Just(b"bogus nonsense\r\n".to_vec()),
        Just(b"get\r\n".to_vec()),
        Just(b"delete\r\n".to_vec()),
        Just(b"set k x 0 5\r\n".to_vec()),
        Just(b"set missing fields\r\n".to_vec()),
        Just(b"\r\n".to_vec()),
    ]
}

/// One element of a test stream: a valid command or a malformed line.
fn stream_element() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        3 => command_strategy().prop_map(|cmd| encode(&cmd)),
        1 => junk_line_strategy(),
    ]
}

/// Runs the borrowed decoder over `stream` delivered in `chunks`, the way
/// the event server does: decode in place, handle, drain. Returns the
/// decoded sequence in owned form plus the serialised responses produced
/// through `execute_ref` against `engine`.
fn drive_borrowed(chunks: &[&[u8]], engine: &dyn CacheEngine) -> (Vec<DecodedRequest>, Vec<u8>) {
    let mut decoder = RefDecoder::new();
    let mut input: Vec<u8> = Vec::new();
    let mut decoded = Vec::new();
    let mut replies: Vec<u8> = Vec::new();
    let mut ctx = EngineReadCtx::ebr();
    for chunk in chunks {
        input.extend_from_slice(chunk);
        let mut offset = 0;
        loop {
            let (used, step) = decoder.step(&input[offset..]);
            offset += used;
            match step {
                Decoded::Request(request) => {
                    decoded.push(DecodedRequest::Command(request.to_owned()));
                    execute_ref(engine, &request, &mut ctx, &mut replies);
                }
                Decoded::Bad(error) => {
                    decoded.push(DecodedRequest::Invalid {
                        reason: error.message().to_string(),
                    });
                    error.write_wire(&mut replies);
                }
                Decoded::NeedMore => break,
            }
        }
        input.drain(..offset);
    }
    (decoded, replies)
}

/// The owned reference pipeline: [`RequestDecoder`] + [`execute`] +
/// [`Response::to_bytes`], exactly as the threaded server serves it.
fn drive_owned(chunks: &[&[u8]], engine: &dyn CacheEngine) -> (Vec<DecodedRequest>, Vec<u8>) {
    let mut decoder = RequestDecoder::new();
    let mut decoded = Vec::new();
    let mut replies: Vec<u8> = Vec::new();
    for chunk in chunks {
        decoder.feed(chunk);
        for request in decoder.by_ref() {
            decoded.push(request.clone());
            match request {
                DecodedRequest::Command(command) => {
                    if let Some(reply) = execute(engine, command) {
                        replies.extend_from_slice(&reply.to_bytes());
                    }
                }
                DecodedRequest::Invalid { reason } => {
                    replies.extend_from_slice(&Response::ClientError(reason).to_bytes());
                }
            }
        }
    }
    (decoded, replies)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn borrowed_and_owned_decoders_agree_at_every_split(
        elements in proptest::collection::vec(stream_element(), 1..5)
    ) {
        let stream: Vec<u8> = elements.concat();
        // Every two-chunk split: mid-verb, mid-CRLF, mid-data-block, …
        for split in 0..=stream.len() {
            let chunks = [&stream[..split], &stream[split..]];
            let engine_a = LockEngine::new();
            let engine_b = LockEngine::new();
            let (owned, owned_bytes) = drive_owned(&chunks, &engine_a);
            let (borrowed, borrowed_bytes) = drive_borrowed(&chunks, &engine_b);
            prop_assert_eq!(&owned, &borrowed, "split at byte {}", split);
            prop_assert_eq!(
                &owned_bytes,
                &borrowed_bytes,
                "response bytes diverged at split {}",
                split
            );
        }
    }

    #[test]
    fn borrowed_and_owned_decoders_agree_at_arbitrary_chunkings(
        elements in proptest::collection::vec(stream_element(), 1..8),
        split in 1_usize..64
    ) {
        let stream: Vec<u8> = elements.concat();
        let chunks: Vec<&[u8]> = stream.chunks(split).collect();
        let engine_a = LockEngine::new();
        let engine_b = LockEngine::new();
        let (owned, owned_bytes) = drive_owned(&chunks, &engine_a);
        let (borrowed, borrowed_bytes) = drive_borrowed(&chunks, &engine_b);
        prop_assert_eq!(&owned, &borrowed);
        prop_assert_eq!(&owned_bytes, &borrowed_bytes);
    }

    #[test]
    fn arbitrary_junk_never_diverges_or_panics(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..12)
    ) {
        let refs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
        let engine_a = LockEngine::new();
        let engine_b = LockEngine::new();
        let (owned, owned_bytes) = drive_owned(&refs, &engine_a);
        let (borrowed, borrowed_bytes) = drive_borrowed(&refs, &engine_b);
        prop_assert_eq!(&owned, &borrowed);
        prop_assert_eq!(&owned_bytes, &borrowed_bytes);
    }
}
