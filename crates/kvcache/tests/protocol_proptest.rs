//! Property-based tests for the memcached text protocol: serialised
//! commands parse back to themselves regardless of how the byte stream is
//! chunked, and arbitrary junk never panics the parser.

use bytes::Bytes;
use proptest::prelude::*;

use rp_kvcache::protocol::{parse_command, Command, ParseOutcome};

fn key_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9:_-]{1,32}"
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

/// Renders a command back into wire format (the inverse of the parser).
fn encode(cmd: &Command) -> Vec<u8> {
    match cmd {
        Command::Get(keys) => format!("get {}\r\n", keys.join(" ")).into_bytes(),
        Command::Set {
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            let mut out = format!(
                "set {key} {flags} {exptime} {}{}\r\n",
                data.len(),
                if *noreply { " noreply" } else { "" }
            )
            .into_bytes();
            out.extend_from_slice(data);
            out.extend_from_slice(b"\r\n");
            out
        }
        Command::Delete { key, noreply } => {
            format!("delete {key}{}\r\n", if *noreply { " noreply" } else { "" }).into_bytes()
        }
        Command::Stats => b"stats\r\n".to_vec(),
        Command::Version => b"version\r\n".to_vec(),
        Command::Quit => b"quit\r\n".to_vec(),
    }
}

fn command_strategy() -> impl Strategy<Value = Command> {
    prop_oneof![
        proptest::collection::vec(key_strategy(), 1..4).prop_map(Command::Get),
        (
            key_strategy(),
            any::<u32>(),
            0_u64..100_000,
            value_strategy(),
            any::<bool>()
        )
            .prop_map(|(key, flags, exptime, data, noreply)| Command::Set {
                key,
                flags,
                exptime,
                data: Bytes::from(data),
                noreply,
            }),
        (key_strategy(), any::<bool>()).prop_map(|(key, noreply)| Command::Delete { key, noreply }),
        Just(Command::Stats),
        Just(Command::Version),
        Just(Command::Quit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn encode_parse_round_trip(cmd in command_strategy()) {
        let wire = encode(&cmd);
        match parse_command(&wire) {
            ParseOutcome::Complete { command, consumed } => {
                prop_assert_eq!(command, cmd);
                prop_assert_eq!(consumed, wire.len());
            }
            other => prop_assert!(false, "expected Complete, got {:?}", other),
        }
    }

    #[test]
    fn parsing_is_chunking_independent(cmds in proptest::collection::vec(command_strategy(), 1..8), split in 1_usize..64) {
        // Concatenate several commands, feed the bytes in arbitrary chunk
        // sizes, and check the same command sequence comes out.
        let mut stream = Vec::new();
        for cmd in &cmds {
            stream.extend_from_slice(&encode(cmd));
        }

        let mut parsed = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        for chunk in stream.chunks(split) {
            buf.extend_from_slice(chunk);
            loop {
                match parse_command(&buf) {
                    ParseOutcome::Complete { command, consumed } => {
                        buf.drain(..consumed);
                        parsed.push(command);
                    }
                    ParseOutcome::Incomplete => break,
                    ParseOutcome::Invalid { reason, .. } => {
                        prop_assert!(false, "valid stream parsed as invalid: {}", reason);
                    }
                }
            }
        }
        prop_assert_eq!(parsed, cmds);
        prop_assert!(buf.is_empty(), "unconsumed trailing bytes");
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Whatever happens, the parser must not panic and must not claim to
        // have consumed more bytes than it was given.
        match parse_command(&junk) {
            ParseOutcome::Complete { consumed, .. } | ParseOutcome::Invalid { consumed, .. } => {
                prop_assert!(consumed <= junk.len());
            }
            ParseOutcome::Incomplete => {}
        }
    }
}
