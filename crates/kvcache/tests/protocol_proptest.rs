//! Property-based tests for the memcached text protocol: serialised
//! commands parse back to themselves regardless of how the byte stream is
//! chunked, and arbitrary junk never panics the parser.

use bytes::Bytes;
use proptest::prelude::*;

use rp_kvcache::protocol::{
    parse_command, Command, DecodedRequest, ParseOutcome, RequestDecoder, StatsSub,
};

fn key_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9:_-]{1,32}"
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

/// Renders a command back into wire format (the inverse of the parser).
fn encode(cmd: &Command) -> Vec<u8> {
    match cmd {
        Command::Get(keys) => format!("get {}\r\n", keys.join(" ")).into_bytes(),
        Command::Set {
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            let mut out = format!(
                "set {key} {flags} {exptime} {}{}\r\n",
                data.len(),
                if *noreply { " noreply" } else { "" }
            )
            .into_bytes();
            out.extend_from_slice(data);
            out.extend_from_slice(b"\r\n");
            out
        }
        Command::Delete { key, noreply } => {
            format!("delete {key}{}\r\n", if *noreply { " noreply" } else { "" }).into_bytes()
        }
        Command::Stats => b"stats\r\n".to_vec(),
        Command::StatsProm(StatsSub::Render) => b"STATS\r\n".to_vec(),
        Command::StatsProm(StatsSub::Reset) => b"STATS RESET\r\n".to_vec(),
        Command::StatsProm(StatsSub::Trace(None)) => b"STATS TRACE\r\n".to_vec(),
        Command::StatsProm(StatsSub::Trace(Some(n))) => format!("STATS TRACE {n}\r\n").into_bytes(),
        Command::StatsProm(StatsSub::Slow) => b"STATS SLOW\r\n".to_vec(),
        Command::StatsProm(StatsSub::Json) => b"STATS JSON\r\n".to_vec(),
        Command::StatsProm(StatsSub::Worker(n)) => format!("STATS WORKER {n}\r\n").into_bytes(),
        Command::Version => b"version\r\n".to_vec(),
        Command::Quit => b"quit\r\n".to_vec(),
    }
}

fn command_strategy() -> impl Strategy<Value = Command> {
    prop_oneof![
        proptest::collection::vec(key_strategy(), 1..4).prop_map(Command::Get),
        (
            key_strategy(),
            any::<u32>(),
            0_u64..100_000,
            value_strategy(),
            any::<bool>()
        )
            .prop_map(|(key, flags, exptime, data, noreply)| Command::Set {
                key,
                flags,
                exptime,
                data: Bytes::from(data),
                noreply,
            }),
        (key_strategy(), any::<bool>()).prop_map(|(key, noreply)| Command::Delete { key, noreply }),
        Just(Command::Stats),
        Just(Command::StatsProm(StatsSub::Render)),
        Just(Command::StatsProm(StatsSub::Reset)),
        Just(Command::StatsProm(StatsSub::Trace(None))),
        any::<usize>().prop_map(|n| Command::StatsProm(StatsSub::Trace(Some(n)))),
        Just(Command::StatsProm(StatsSub::Slow)),
        Just(Command::StatsProm(StatsSub::Json)),
        any::<usize>().prop_map(|n| Command::StatsProm(StatsSub::Worker(n))),
        Just(Command::Version),
        Just(Command::Quit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn encode_parse_round_trip(cmd in command_strategy()) {
        let wire = encode(&cmd);
        match parse_command(&wire) {
            ParseOutcome::Complete { command, consumed } => {
                prop_assert_eq!(command, cmd);
                prop_assert_eq!(consumed, wire.len());
            }
            other => prop_assert!(false, "expected Complete, got {:?}", other),
        }
    }

    #[test]
    fn parsing_is_chunking_independent(cmds in proptest::collection::vec(command_strategy(), 1..8), split in 1_usize..64) {
        // Concatenate several commands, feed the bytes in arbitrary chunk
        // sizes, and check the same command sequence comes out.
        let mut stream = Vec::new();
        for cmd in &cmds {
            stream.extend_from_slice(&encode(cmd));
        }

        let mut parsed = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        for chunk in stream.chunks(split) {
            buf.extend_from_slice(chunk);
            loop {
                match parse_command(&buf) {
                    ParseOutcome::Complete { command, consumed } => {
                        buf.drain(..consumed);
                        parsed.push(command);
                    }
                    ParseOutcome::Incomplete => break,
                    ParseOutcome::Invalid { reason, .. } => {
                        prop_assert!(false, "valid stream parsed as invalid: {}", reason);
                    }
                }
            }
        }
        prop_assert_eq!(parsed, cmds);
        prop_assert!(buf.is_empty(), "unconsumed trailing bytes");
    }

    #[test]
    fn decoder_handles_one_byte_at_a_time(cmds in proptest::collection::vec(command_strategy(), 1..6)) {
        // The strictest chunking there is: every read(2) delivers a single
        // byte. The decoder must produce the identical command sequence and
        // never report a valid stream as invalid.
        let mut stream = Vec::new();
        for cmd in &cmds {
            stream.extend_from_slice(&encode(cmd));
        }
        let mut decoder = RequestDecoder::new();
        let mut decoded = Vec::new();
        for &b in &stream {
            decoder.feed(&[b]);
            for req in decoder.by_ref() {
                match req {
                    DecodedRequest::Command(cmd) => decoded.push(cmd),
                    DecodedRequest::Invalid { reason } => {
                        prop_assert!(false, "valid stream decoded as invalid: {}", reason);
                    }
                }
            }
        }
        prop_assert_eq!(decoded, cmds);
        prop_assert_eq!(decoder.buffered(), 0, "unconsumed trailing bytes");
    }

    #[test]
    fn decoder_handles_a_split_at_every_boundary(cmds in proptest::collection::vec(command_strategy(), 1..4)) {
        // For a stream of N bytes, try all N+1 two-chunk splits — including
        // splits inside a verb, inside a length field, between '\r' and
        // '\n', and inside a set data block.
        let mut stream = Vec::new();
        for cmd in &cmds {
            stream.extend_from_slice(&encode(cmd));
        }
        for split in 0..=stream.len() {
            let mut decoder = RequestDecoder::new();
            let mut decoded = Vec::new();
            for chunk in [&stream[..split], &stream[split..]] {
                decoder.feed(chunk);
                for req in decoder.by_ref() {
                    match req {
                        DecodedRequest::Command(cmd) => decoded.push(cmd),
                        DecodedRequest::Invalid { reason } => {
                            prop_assert!(false, "split at {}: decoded as invalid: {}", split, reason);
                        }
                    }
                }
            }
            prop_assert_eq!(&decoded, &cmds, "split at byte {}", split);
            prop_assert_eq!(decoder.buffered(), 0);
        }
    }

    #[test]
    fn arbitrary_chunks_never_panic_the_decoder(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..16)
    ) {
        // Junk streams may produce Invalid requests, but the decoder must
        // neither panic nor grow without bound.
        let mut decoder = RequestDecoder::new();
        let mut total = 0_usize;
        for chunk in &chunks {
            total += chunk.len();
            decoder.feed(chunk);
            while decoder.next().is_some() {}
            prop_assert!(decoder.buffered() <= total);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Whatever happens, the parser must not panic and must not claim to
        // have consumed more bytes than it was given.
        match parse_command(&junk) {
            ParseOutcome::Complete { consumed, .. } | ParseOutcome::Invalid { consumed, .. } => {
                prop_assert!(consumed <= junk.len());
            }
            ParseOutcome::Incomplete => {}
        }
    }
}
