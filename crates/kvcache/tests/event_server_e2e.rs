//! End-to-end tests for the event-loop server: protocol parity with the
//! threaded baseline, pipelining, incremental framing, and graceful
//! shutdown that sheds no requests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rp_kvcache::client::CacheClient;
use rp_kvcache::server::{start_server, ServerConfig, ServerHandle, ServerMode};
use rp_kvcache::{CacheEngine, LockEngine, ReadSide, RpEngine, ShardedRpEngine, SplitOrderEngine};

fn event_loop_config(workers: usize) -> ServerConfig {
    ServerConfig {
        mode: ServerMode::EventLoop,
        workers,
        drain_timeout: Duration::from_secs(5),
        port: 0,
        ..ServerConfig::default()
    }
}

/// The same session the threaded server's tests exercise, against either
/// mode: miss, set, hit, delete, double delete, version, stats, quit.
fn full_session(server: &ServerHandle) {
    let mut client = CacheClient::connect(server.addr()).expect("connect");
    assert!(client.get("missing").unwrap().is_none());
    assert!(client.set("key", 5, 0, b"payload").unwrap());
    assert_eq!(client.get("key").unwrap().as_deref(), Some(&b"payload"[..]));
    let hits = client.get_many(&["key", "nope", "key"]).unwrap();
    assert_eq!(hits.len(), 2);
    assert!(hits.iter().all(|(k, v)| k == "key" && v == b"payload"));
    assert!(client.delete("key").unwrap());
    assert!(!client.delete("key").unwrap());
    assert!(client.version().unwrap().contains("relativist"));
    let stats = client.stats().unwrap();
    assert!(stats.iter().any(|(k, _)| k == "get_hits"));
    client.quit().unwrap();
}

#[test]
fn event_loop_matches_threaded_for_every_engine_and_read_side() {
    // The full parity matrix: every engine, under the threaded baseline and
    // under the event loop with each read-side flavor. Engines without a
    // QSBR read path (LockEngine) fall back to their ordinary lookups, so
    // the protocol-visible behaviour must be identical everywhere.
    let engines: Vec<Arc<dyn CacheEngine>> = vec![
        Arc::new(LockEngine::new()),
        Arc::new(RpEngine::new()),
        Arc::new(ShardedRpEngine::new()),
        Arc::new(SplitOrderEngine::new()),
    ];
    for engine in engines {
        for config in [
            ServerConfig::threaded(),
            event_loop_config(2).with_read_side(ReadSide::Ebr),
            event_loop_config(2).with_read_side(ReadSide::Qsbr),
        ] {
            let mut server = start_server(Arc::clone(&engine), &config).expect("start");
            full_session(&server);
            server.shutdown();
        }
    }
}

#[test]
fn explicit_read_side_flavors_serve_expiry_and_batches() {
    // The expiry slow path (a write from the serving worker) and the
    // multi-GET batch path, explicitly under each flavor — for the sharded
    // engine (writer locks + background maintenance) and the split-ordered
    // engine (lock-free writers, expiry removal is a CAS).
    let engines: [fn() -> Arc<dyn CacheEngine>; 2] = [
        || Arc::new(ShardedRpEngine::new()),
        || Arc::new(SplitOrderEngine::new()),
    ];
    for make_engine in engines {
        for read_side in [ReadSide::Ebr, ReadSide::Qsbr] {
            let config = event_loop_config(2).with_read_side(read_side);
            let mut server = start_server(make_engine(), &config).expect("start");
            let mut client = CacheClient::connect(server.addr()).unwrap();
            assert!(client.set("ttl", 0, 1, b"fleeting").unwrap());
            for i in 0..32 {
                assert!(client.set(&format!("b{i}"), 0, 0, b"v").unwrap());
            }
            let hits = client.get_many(&["b0", "b31", "missing", "b7"]).unwrap();
            assert_eq!(hits.len(), 3, "{read_side:?}");
            std::thread::sleep(Duration::from_millis(1100));
            assert!(
                client.get("ttl").unwrap().is_none(),
                "{read_side:?}: item must expire through the worker's slow path"
            );
            client.quit().unwrap();
            server.shutdown();
        }
    }
}

#[test]
fn stats_worker_serves_one_shard_over_the_wire() {
    let mut server = start_server(Arc::new(RpEngine::new()), &event_loop_config(2)).unwrap();
    let mut client = CacheClient::connect(server.addr()).unwrap();
    assert!(client.set("k", 0, 0, b"v").unwrap());
    assert!(client.get("k").unwrap().is_some());

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"STATS WORKER 0\r\nquit\r\n").unwrap();
    let mut got = Vec::new();
    BufReader::new(stream).read_to_end(&mut got).unwrap();
    let text = String::from_utf8(got).unwrap();
    assert!(text.contains("kv_worker 0\n"), "{text}");
    assert!(text.contains("kv_worker_requests_total"), "{text}");
    assert!(text.contains("net_worker_batch_size_count"), "{text}");
    assert!(text.ends_with("END\r\n"), "{text}");
    // The per-worker view must stay distinct from the merged scrape: no
    // aggregated families leak in.
    assert!(!text.contains("kv_requests_total"), "{text}");

    // A malformed ordinal is rejected like any other unknown command.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"STATS WORKER nope\r\nquit\r\n").unwrap();
    let mut got = Vec::new();
    BufReader::new(stream).read_to_end(&mut got).unwrap();
    assert!(String::from_utf8(got).unwrap().starts_with("CLIENT_ERROR"));
    server.shutdown();
}

#[test]
fn stats_telemetry_views_serve_over_the_wire() {
    // STATS TRACE <n>, STATS SLOW and STATS JSON round-trip end to end:
    // headers document the rings, frames close with END, and the JSON view
    // is one parsable object carrying the engine and registry sections.
    let mut server = start_server(Arc::new(RpEngine::new()), &event_loop_config(2)).unwrap();
    let mut client = CacheClient::connect(server.addr()).unwrap();
    assert!(client.set("k", 0, 0, b"v").unwrap());
    for _ in 0..40 {
        assert!(client.get("k").unwrap().is_some());
    }

    let trace = client.stats_text("TRACE 3").unwrap();
    let mut lines = trace.lines();
    let header = lines.next().unwrap();
    assert!(
        header.starts_with("TRACE-RING capacity=") && header.contains(" recorded="),
        "{header}"
    );
    assert!(
        lines.filter(|l| l.starts_with("TRACE ")).count() <= 3,
        "{trace}"
    );

    let slow = client.stats_text("SLOW").unwrap();
    assert!(
        slow.lines()
            .next()
            .unwrap()
            .starts_with("SLOW-LOG capacity="),
        "{slow}"
    );

    let json = client.stats_text("JSON").unwrap();
    let line = json.lines().next().unwrap();
    assert!(line.starts_with("{\"engine\":{\"engine_items\":"), "{json}");
    assert!(line.ends_with("}}"), "{json}");
    for section in [
        "\"kv\":",
        "\"net\":",
        "\"maint\":",
        "\"resize\":",
        "\"rcu\":",
    ] {
        assert!(line.contains(section), "missing {section} in {json}");
    }
    assert!(line.contains("\"rcu_grace_stalls_total\":"), "{json}");
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn pipelined_requests_get_ordered_responses() {
    let mut server = start_server(Arc::new(RpEngine::new()), &event_loop_config(1)).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // Many commands in a single write; responses must come back complete
    // and in order.
    let mut batch = Vec::new();
    for i in 0..50 {
        batch.extend_from_slice(format!("set k{i} 0 0 4\r\nv{i:03}\r\n").as_bytes());
    }
    for i in 0..50 {
        batch.extend_from_slice(format!("get k{i}\r\n").as_bytes());
    }
    stream.write_all(&batch).unwrap();

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for _ in 0..50 {
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "STORED\r\n");
    }
    for i in 0..50 {
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, format!("VALUE k{i} 0 4\r\n"));
        let mut value = [0_u8; 6];
        reader.read_exact(&mut value).unwrap();
        assert_eq!(&value, format!("v{i:03}\r\n").as_bytes());
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "END\r\n");
    }
    server.shutdown();
}

#[test]
fn frames_arriving_one_byte_at_a_time_are_served() {
    let mut server = start_server(Arc::new(RpEngine::new()), &event_loop_config(2)).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    for &b in b"set trickle 0 0 5\r\ndrip!\r\n" {
        stream.write_all(&[b]).unwrap();
        stream.flush().unwrap();
    }
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "STORED\r\n");

    for &b in b"get trickle\r\n" {
        stream.write_all(&[b]).unwrap();
    }
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "VALUE trickle 0 5\r\n");
    server.shutdown();
}

#[test]
fn malformed_lines_get_client_error_and_the_stream_recovers() {
    let mut server = start_server(Arc::new(RpEngine::new()), &event_loop_config(1)).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"bogus nonsense\r\nversion\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("CLIENT_ERROR"), "got {line:?}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("VERSION"), "got {line:?}");
    server.shutdown();
}

#[test]
fn expiry_works_through_the_event_loop() {
    let mut server = start_server(Arc::new(ShardedRpEngine::new()), &event_loop_config(2)).unwrap();
    let mut client = CacheClient::connect(server.addr()).unwrap();
    assert!(client.set("ttl", 0, 1, b"fleeting").unwrap());
    assert!(client.get("ttl").unwrap().is_some());
    std::thread::sleep(Duration::from_millis(1100));
    assert!(client.get("ttl").unwrap().is_none(), "item must expire");
    server.shutdown();
}

#[test]
fn binary_values_survive_the_event_loop() {
    let mut server = start_server(Arc::new(RpEngine::new()), &event_loop_config(2)).unwrap();
    let mut client = CacheClient::connect(server.addr()).unwrap();
    let payload: Vec<u8> = (0_u32..100_000).map(|b| (b % 251) as u8).collect();
    assert!(client.set("big-binary", 0, 0, &payload).unwrap());
    assert_eq!(client.get("big-binary").unwrap().unwrap(), payload);
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_every_received_request() {
    let mut server = start_server(Arc::new(RpEngine::new()), &event_loop_config(2)).unwrap();
    {
        let mut seed = CacheClient::connect(server.addr()).unwrap();
        assert!(seed.set("drain-key", 0, 0, b"present").unwrap());
    }

    // 32 clients send a GET each; none reads its response before the
    // server is told to shut down. Every response must still arrive.
    let mut clients: Vec<TcpStream> = (0..32)
        .map(|_| TcpStream::connect(server.addr()).unwrap())
        .collect();
    for c in &mut clients {
        c.write_all(b"get drain-key\r\n").unwrap();
    }
    server.shutdown();

    for (i, c) in clients.into_iter().enumerate() {
        let mut got = Vec::new();
        let mut reader = BufReader::new(c);
        reader.read_to_end(&mut got).unwrap();
        let text = String::from_utf8_lossy(&got);
        assert!(
            text.contains("VALUE drain-key 0 7\r\npresent\r\nEND\r\n"),
            "client {i} was shed: {text:?}"
        );
    }
}

#[test]
fn idle_connections_are_reaped_while_live_ones_are_served() {
    let config = ServerConfig {
        // Generous timeout-to-ping ratio (16:1) so a scheduler stall on a
        // loaded CI runner cannot reap the live connection and flake the
        // test.
        idle_timeout: Some(Duration::from_millis(800)),
        ..event_loop_config(2)
    };
    let mut server = start_server(Arc::new(RpEngine::new()), &config).unwrap();

    let mut idle = TcpStream::connect(server.addr()).unwrap();
    let mut live = CacheClient::connect(server.addr()).unwrap();
    assert!(live.set("k", 0, 0, b"v").unwrap());

    // The live client keeps issuing GETs well past the idle timeout; the
    // idle connection never sends a byte.
    for _ in 0..30 {
        assert!(live.get("k").unwrap().is_some());
        std::thread::sleep(Duration::from_millis(50));
    }

    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut got = Vec::new();
    match idle.read_to_end(&mut got) {
        Ok(_) => assert!(got.is_empty(), "idle connection received data: {got:?}"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }
    assert!(live.get("k").unwrap().is_some(), "live connection survives");
    server.shutdown();
}

#[test]
fn request_budget_answers_exactly_n_then_closes() {
    let config = ServerConfig {
        max_requests_per_conn: Some(3),
        ..event_loop_config(1)
    };
    let mut server = start_server(Arc::new(RpEngine::new()), &config).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Five pipelined requests; the budget allows three responses, already
    // answered requests still flush, then the server closes.
    stream
        .write_all(b"version\r\nversion\r\nversion\r\nversion\r\nversion\r\n")
        .unwrap();
    let mut got = Vec::new();
    let mut reader = BufReader::new(stream);
    reader.read_to_end(&mut got).unwrap();
    let text = String::from_utf8(got).unwrap();
    assert_eq!(
        text.matches("VERSION").count(),
        3,
        "exactly the budget is served: {text:?}"
    );
    // A fresh connection gets a fresh budget.
    let mut fresh = CacheClient::connect(server.addr()).unwrap();
    assert!(fresh.version().unwrap().contains("relativist"));
    server.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_drop_is_safe() {
    let engine: Arc<dyn CacheEngine> = Arc::new(RpEngine::new());
    let mut server = start_server(Arc::clone(&engine), &event_loop_config(2)).unwrap();
    full_session(&server);
    server.shutdown();
    server.shutdown();
    drop(server);
    // A fresh server on the same engine still works.
    let mut server = start_server(engine, &event_loop_config(1)).unwrap();
    full_session(&server);
    server.shutdown();
}
