//! Command-line / environment configuration for the `kvcached` binary.
//!
//! Kept in the library (rather than the binary) so the flag and env-var
//! handling is unit-testable. Flags win over environment variables, which
//! win over defaults:
//!
//! | Flag | Env | Default |
//! |---|---|---|
//! | `--engine rp\|rp-shard\|splitorder\|lock` | `RP_KV_ENGINE` | `rp-shard` |
//! | `--port N` | `RP_KV_PORT` | `11211` |
//! | `--mode threaded\|event-loop` | `RP_KV_MODE` | `event-loop` |
//! | `--workers N` | `RP_KV_WORKERS` | `2` |
//! | `--read-side qsbr\|ebr` | `RP_KV_READ_SIDE` | `qsbr` |
//! | `--shards N` | `RP_KV_SHARDS` | `16` |
//! | `--capacity N` | `RP_KV_CAPACITY` | `1048576` |
//! | `--maint on\|off` | `RP_KV_MAINT` | `on` |
//! | `--maint-workers N` | `RP_KV_MAINT_WORKERS` | [`MaintConfig`] default |
//! | `--maint-fairness-slice N` | `RP_KV_MAINT_FAIRNESS_SLICE` | [`MaintConfig`] default |
//! | `--maint-reclaim-threshold N` | `RP_KV_MAINT_RECLAIM_THRESHOLD` | [`MaintConfig`] default |
//! | `--maint-idle-wakeup-ms N` | `RP_KV_MAINT_IDLE_WAKEUP_MS` | [`MaintConfig`] default |
//! | `--drain-timeout-ms N` | `RP_KV_DRAIN_TIMEOUT_MS` | `5000` |
//! | `--idle-timeout-ms N` (0 = off) | `RP_KV_IDLE_TIMEOUT_MS` | `0` |
//! | `--max-requests-per-conn N` (0 = off) | `RP_KV_MAX_REQUESTS_PER_CONN` | `0` |
//! | `--max-conns N` (0 = off) | `RP_KV_MAX_CONNS` | `0` |
//! | `--max-bytes N` (0 = off) | `RP_KV_MAX_BYTES` | `0` |
//! | `--stats on\|off` | `RP_KV_STATS` | `on` |
//!
//! `--read-side` selects the RCU flavor serving event-loop GETs: `qsbr`
//! (the default — barrier-free lookups, quiescent states announced per
//! event batch) or `ebr` (per-lookup guards; what the threaded server
//! always uses). The `--maint-*` family tunes the background resize
//! maintenance thread
//! (`rp-maint`) behind the `rp-shard` engine; `--maint off` reverts to
//! inline resizing (writers absorb the grace-period waits themselves).

use std::sync::Arc;
use std::time::Duration;

use rp_maint::MaintConfig;

use crate::engine::{CacheEngine, ReadSide};
use crate::server::{ServerConfig, ServerMode};
use crate::{LockEngine, RpEngine, ShardedRpEngine, SplitOrderEngine};

/// Which storage engine to serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Single relativistic table ([`RpEngine`]).
    Rp,
    /// Sharded relativistic index ([`ShardedRpEngine`]).
    RpShard,
    /// Lock-free split-ordered index ([`SplitOrderEngine`]).
    SplitOrder,
    /// Global-lock baseline ([`LockEngine`]).
    Lock,
}

/// Parsed server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Storage engine.
    pub engine: EngineKind,
    /// TCP port (`0` picks a free one).
    pub port: u16,
    /// Connection-handling architecture.
    pub mode: ServerMode,
    /// Event-loop worker threads.
    pub workers: usize,
    /// Read-side RCU flavor for event-loop GETs (the threaded server
    /// always uses EBR).
    pub read_side: ReadSide,
    /// Index shards (rp-shard engine only).
    pub shards: usize,
    /// Item capacity.
    pub capacity: usize,
    /// Maintenance-thread tuning, or `None` for inline resizes (rp-shard
    /// engine only).
    pub maint: Option<MaintConfig>,
    /// Graceful-shutdown drain budget (event-loop mode).
    pub drain_timeout: Duration,
    /// Idle-connection reap timeout (event-loop mode; `None` = off).
    pub idle_timeout: Option<Duration>,
    /// Per-connection served-request budget (event-loop mode; `None` =
    /// unlimited).
    pub max_requests_per_conn: Option<u64>,
    /// Admission wall: concurrent-connection cap (event-loop mode;
    /// `usize::MAX` = unlimited). Peers over it get `SERVER_ERROR busy`.
    pub max_connections: usize,
    /// Global byte budget: total bytes buffered across all connections
    /// (event-loop mode; `usize::MAX` = unlimited).
    pub max_total_bytes: usize,
    /// `rp-obs` telemetry timers (`--stats off` drops the two `Instant`
    /// reads per request; untimed counters stay on either way).
    pub stats: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            engine: EngineKind::RpShard,
            port: 11211,
            mode: ServerMode::EventLoop,
            workers: 2,
            read_side: ReadSide::Qsbr,
            shards: 16,
            capacity: 1 << 20,
            maint: Some(MaintConfig::default()),
            drain_timeout: Duration::from_secs(5),
            idle_timeout: None,
            max_requests_per_conn: None,
            max_connections: usize::MAX,
            max_total_bytes: usize::MAX,
            stats: true,
        }
    }
}

/// Usage text for `kvcached --help`.
pub const USAGE: &str = "\
kvcached — the relativist cache server

USAGE:
    kvcached [FLAGS]

FLAGS (each falls back to the env var in brackets, then to the default):
    --engine rp|rp-shard|splitorder|lock
                                  storage engine                [RP_KV_ENGINE, rp-shard]
    --port N                      TCP port, 0 = pick free       [RP_KV_PORT, 11211]
    --mode threaded|event-loop    connection architecture       [RP_KV_MODE, event-loop]
    --workers N                   event-loop worker threads     [RP_KV_WORKERS, 2]
    --read-side qsbr|ebr          GET read-side RCU flavor      [RP_KV_READ_SIDE, qsbr]
    --shards N                    index shards (rp-shard)       [RP_KV_SHARDS, 16]
    --capacity N                  max items                     [RP_KV_CAPACITY, 1048576]
    --maint on|off                background index resizes      [RP_KV_MAINT, on]
    --maint-workers N             maintenance worker threads    [RP_KV_MAINT_WORKERS]
    --maint-fairness-slice N      resize steps per shard turn   [RP_KV_MAINT_FAIRNESS_SLICE]
    --maint-reclaim-threshold N   deferred-free batch trigger   [RP_KV_MAINT_RECLAIM_THRESHOLD]
    --maint-idle-wakeup-ms N      idle reclamation heartbeat    [RP_KV_MAINT_IDLE_WAKEUP_MS]
    --drain-timeout-ms N          graceful shutdown budget      [RP_KV_DRAIN_TIMEOUT_MS, 5000]
    --idle-timeout-ms N           reap idle connections, 0=off  [RP_KV_IDLE_TIMEOUT_MS, 0]
    --max-requests-per-conn N     per-connection budget, 0=off  [RP_KV_MAX_REQUESTS_PER_CONN, 0]
    --max-conns N                 connection admission wall, 0=off  [RP_KV_MAX_CONNS, 0]
    --max-bytes N                 global buffered-byte budget, 0=off  [RP_KV_MAX_BYTES, 0]
    --stats on|off                telemetry latency timers      [RP_KV_STATS, on]
    --help                        print this text
";

impl ServerOptions {
    /// Parses `args` (without the program name), falling back to `env` for
    /// unset flags. `env` is injected so tests need not mutate the process
    /// environment.
    pub fn parse(
        args: &[String],
        env: &dyn Fn(&str) -> Option<String>,
    ) -> Result<ServerOptions, String> {
        let mut opts = ServerOptions::default();

        // Environment layer first, flags override below.
        let mut engine = env("RP_KV_ENGINE");
        let mut port = env("RP_KV_PORT");
        let mut mode = env("RP_KV_MODE");
        let mut workers = env("RP_KV_WORKERS");
        let mut read_side = env("RP_KV_READ_SIDE");
        let mut shards = env("RP_KV_SHARDS");
        let mut capacity = env("RP_KV_CAPACITY");
        let mut maint = env("RP_KV_MAINT");
        let mut maint_workers = env("RP_KV_MAINT_WORKERS");
        let mut fairness = env("RP_KV_MAINT_FAIRNESS_SLICE");
        let mut reclaim = env("RP_KV_MAINT_RECLAIM_THRESHOLD");
        let mut idle_ms = env("RP_KV_MAINT_IDLE_WAKEUP_MS");
        let mut drain_ms = env("RP_KV_DRAIN_TIMEOUT_MS");
        let mut idle_timeout_ms = env("RP_KV_IDLE_TIMEOUT_MS");
        let mut max_requests = env("RP_KV_MAX_REQUESTS_PER_CONN");
        let mut max_conns = env("RP_KV_MAX_CONNS");
        let mut max_bytes = env("RP_KV_MAX_BYTES");
        let mut stats = env("RP_KV_STATS");

        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            if flag == "--help" || flag == "-h" {
                return Err(USAGE.to_string());
            }
            let slot = match flag.as_str() {
                "--engine" => &mut engine,
                "--port" => &mut port,
                "--mode" => &mut mode,
                "--workers" => &mut workers,
                "--read-side" => &mut read_side,
                "--shards" => &mut shards,
                "--capacity" => &mut capacity,
                "--maint" => &mut maint,
                "--maint-workers" => &mut maint_workers,
                "--maint-fairness-slice" => &mut fairness,
                "--maint-reclaim-threshold" => &mut reclaim,
                "--maint-idle-wakeup-ms" => &mut idle_ms,
                "--drain-timeout-ms" => &mut drain_ms,
                "--idle-timeout-ms" => &mut idle_timeout_ms,
                "--max-requests-per-conn" => &mut max_requests,
                "--max-conns" => &mut max_conns,
                "--max-bytes" => &mut max_bytes,
                "--stats" => &mut stats,
                other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
            };
            let Some(value) = iter.next() else {
                return Err(format!("flag {flag} requires a value"));
            };
            *slot = Some(value.clone());
        }

        if let Some(v) = engine {
            opts.engine = match v.as_str() {
                "rp" => EngineKind::Rp,
                "rp-shard" => EngineKind::RpShard,
                "splitorder" => EngineKind::SplitOrder,
                "lock" => EngineKind::Lock,
                other => {
                    return Err(format!(
                        "bad engine {other:?} (rp | rp-shard | splitorder | lock)"
                    ))
                }
            };
        }
        if let Some(v) = port {
            opts.port = parse_num(&v, "--port")?;
        }
        if let Some(v) = mode {
            opts.mode = match v.as_str() {
                "threaded" => ServerMode::Threaded,
                "event-loop" => ServerMode::EventLoop,
                other => return Err(format!("bad mode {other:?} (threaded | event-loop)")),
            };
        }
        if let Some(v) = workers {
            opts.workers = parse_num::<usize>(&v, "--workers")?.max(1);
        }
        if let Some(v) = read_side {
            opts.read_side = ReadSide::parse(&v)?;
        }
        if let Some(v) = shards {
            opts.shards = parse_num::<usize>(&v, "--shards")?.max(1);
        }
        if let Some(v) = capacity {
            opts.capacity = parse_num::<usize>(&v, "--capacity")?.max(1);
        }
        if let Some(v) = maint {
            let on = !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "no"
            );
            opts.maint = on.then(MaintConfig::default);
        }
        if let Some(config) = opts.maint.as_mut() {
            if let Some(v) = maint_workers {
                config.workers = parse_num::<usize>(&v, "--maint-workers")?.max(1);
            }
            if let Some(v) = fairness {
                config.fairness_slice = parse_num::<usize>(&v, "--maint-fairness-slice")?.max(1);
            }
            if let Some(v) = reclaim {
                config.reclaim_threshold = parse_num(&v, "--maint-reclaim-threshold")?;
            }
            if let Some(v) = idle_ms {
                config.idle_wakeup =
                    Duration::from_millis(parse_num(&v, "--maint-idle-wakeup-ms")?);
            }
        }
        if let Some(v) = drain_ms {
            opts.drain_timeout = Duration::from_millis(parse_num(&v, "--drain-timeout-ms")?);
        }
        if let Some(v) = idle_timeout_ms {
            let ms: u64 = parse_num(&v, "--idle-timeout-ms")?;
            opts.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(v) = max_requests {
            let n: u64 = parse_num(&v, "--max-requests-per-conn")?;
            opts.max_requests_per_conn = (n > 0).then_some(n);
        }
        if let Some(v) = max_conns {
            let n: usize = parse_num(&v, "--max-conns")?;
            opts.max_connections = if n > 0 { n } else { usize::MAX };
        }
        if let Some(v) = max_bytes {
            let n: usize = parse_num(&v, "--max-bytes")?;
            opts.max_total_bytes = if n > 0 { n } else { usize::MAX };
        }
        if let Some(v) = stats {
            opts.stats = !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "no"
            );
        }
        Ok(opts)
    }

    /// Builds the configured engine. The `--maint-*` options only affect
    /// the `rp-shard` engine (the others have no maintenance thread).
    pub fn build_engine(&self) -> Arc<dyn CacheEngine> {
        match self.engine {
            EngineKind::Rp => Arc::new(RpEngine::with_capacity(self.capacity)),
            EngineKind::RpShard => Arc::new(ShardedRpEngine::with_options(
                self.shards,
                self.capacity,
                self.maint.clone(),
            )),
            EngineKind::SplitOrder => Arc::new(SplitOrderEngine::with_capacity(self.capacity)),
            EngineKind::Lock => Arc::new(LockEngine::with_capacity(self.capacity)),
        }
    }

    /// The [`ServerConfig`] these options describe.
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            port: self.port,
            mode: self.mode,
            workers: self.workers,
            read_side: self.read_side,
            drain_timeout: self.drain_timeout,
            idle_timeout: self.idle_timeout,
            max_requests_per_conn: self.max_requests_per_conn,
            max_connections: self.max_connections,
            max_total_bytes: self.max_total_bytes,
        }
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .trim()
        .parse()
        .map_err(|_| format!("bad numeric value {value:?} for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_when_nothing_is_given() {
        let opts = ServerOptions::parse(&[], &no_env).unwrap();
        assert_eq!(opts.engine, EngineKind::RpShard);
        assert_eq!(opts.mode, ServerMode::EventLoop);
        assert_eq!(opts.port, 11211);
        assert!(opts.maint.is_some());
    }

    #[test]
    fn flags_parse_and_tune_maintenance() {
        let opts = ServerOptions::parse(
            &strings(&[
                "--engine",
                "rp-shard",
                "--mode",
                "event-loop",
                "--workers",
                "4",
                "--port",
                "0",
                "--maint-fairness-slice",
                "32",
                "--maint-reclaim-threshold",
                "1024",
                "--maint-idle-wakeup-ms",
                "10",
                "--drain-timeout-ms",
                "250",
            ]),
            &no_env,
        )
        .unwrap();
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.port, 0);
        let maint = opts.maint.as_ref().expect("maintenance on");
        assert_eq!(maint.fairness_slice, 32);
        assert_eq!(maint.reclaim_threshold, 1024);
        assert_eq!(maint.idle_wakeup, Duration::from_millis(10));
        assert_eq!(opts.drain_timeout, Duration::from_millis(250));
    }

    #[test]
    fn env_fills_in_and_flags_override() {
        let env = |name: &str| match name {
            "RP_KV_ENGINE" => Some("lock".to_string()),
            "RP_KV_WORKERS" => Some("8".to_string()),
            "RP_KV_MAINT_FAIRNESS_SLICE" => Some("64".to_string()),
            _ => None,
        };
        let opts = ServerOptions::parse(&strings(&["--engine", "rp"]), &env).unwrap();
        assert_eq!(opts.engine, EngineKind::Rp, "flag beats env");
        assert_eq!(opts.workers, 8, "env beats default");
        // Engine rp has no maintenance thread, but the tuning still parses.
        let opts = ServerOptions::parse(&[], &env).unwrap();
        assert_eq!(opts.maint.as_ref().unwrap().fairness_slice, 64);
    }

    #[test]
    fn maint_off_discards_tuning() {
        let opts = ServerOptions::parse(
            &strings(&["--maint", "off", "--maint-fairness-slice", "32"]),
            &no_env,
        )
        .unwrap();
        assert!(opts.maint.is_none());
    }

    #[test]
    fn read_side_parses_from_flag_and_env() {
        let opts = ServerOptions::parse(&[], &no_env).unwrap();
        assert_eq!(opts.read_side, ReadSide::Qsbr, "qsbr is the default");
        let opts = ServerOptions::parse(&strings(&["--read-side", "ebr"]), &no_env).unwrap();
        assert_eq!(opts.read_side, ReadSide::Ebr);
        assert_eq!(opts.server_config().read_side, ReadSide::Ebr);
        let env = |name: &str| match name {
            "RP_KV_READ_SIDE" => Some("ebr".to_string()),
            _ => None,
        };
        let opts = ServerOptions::parse(&[], &env).unwrap();
        assert_eq!(opts.read_side, ReadSide::Ebr, "env beats default");
        let opts = ServerOptions::parse(&strings(&["--read-side", "QSBR"]), &env).unwrap();
        assert_eq!(opts.read_side, ReadSide::Qsbr, "flag beats env");
        assert!(ServerOptions::parse(&strings(&["--read-side", "hazard"]), &no_env).is_err());
    }

    #[test]
    fn defensive_limits_parse_with_zero_meaning_off() {
        let opts = ServerOptions::parse(&[], &no_env).unwrap();
        assert_eq!(opts.idle_timeout, None);
        assert_eq!(opts.max_requests_per_conn, None);
        let opts = ServerOptions::parse(
            &strings(&[
                "--idle-timeout-ms",
                "1500",
                "--max-requests-per-conn",
                "10000",
            ]),
            &no_env,
        )
        .unwrap();
        assert_eq!(opts.idle_timeout, Some(Duration::from_millis(1500)));
        assert_eq!(opts.max_requests_per_conn, Some(10_000));
        let config = opts.server_config();
        assert_eq!(config.idle_timeout, Some(Duration::from_millis(1500)));
        assert_eq!(config.max_requests_per_conn, Some(10_000));
        let env = |name: &str| match name {
            "RP_KV_IDLE_TIMEOUT_MS" => Some("0".to_string()),
            "RP_KV_MAX_REQUESTS_PER_CONN" => Some("7".to_string()),
            _ => None,
        };
        let opts = ServerOptions::parse(&[], &env).unwrap();
        assert_eq!(opts.idle_timeout, None, "0 disables");
        assert_eq!(opts.max_requests_per_conn, Some(7));
    }

    #[test]
    fn admission_limits_parse_with_zero_meaning_off() {
        let opts = ServerOptions::parse(&[], &no_env).unwrap();
        assert_eq!(opts.max_connections, usize::MAX);
        assert_eq!(opts.max_total_bytes, usize::MAX);
        let opts = ServerOptions::parse(
            &strings(&["--max-conns", "10000", "--max-bytes", "67108864"]),
            &no_env,
        )
        .unwrap();
        assert_eq!(opts.max_connections, 10_000);
        assert_eq!(opts.max_total_bytes, 64 << 20);
        let config = opts.server_config();
        assert_eq!(config.max_connections, 10_000);
        assert_eq!(config.max_total_bytes, 64 << 20);
        let env = |name: &str| match name {
            "RP_KV_MAX_CONNS" => Some("0".to_string()),
            "RP_KV_MAX_BYTES" => Some("1024".to_string()),
            _ => None,
        };
        let opts = ServerOptions::parse(&[], &env).unwrap();
        assert_eq!(opts.max_connections, usize::MAX, "0 disables the wall");
        assert_eq!(opts.max_total_bytes, 1024, "env beats default");
    }

    #[test]
    fn maint_workers_flag_scales_the_pool() {
        let opts = ServerOptions::parse(&[], &no_env).unwrap();
        assert_eq!(opts.maint.as_ref().unwrap().workers, 1, "default pool");
        let opts = ServerOptions::parse(&strings(&["--maint-workers", "3"]), &no_env).unwrap();
        assert_eq!(opts.maint.as_ref().unwrap().workers, 3);
        let env = |name: &str| match name {
            "RP_KV_MAINT_WORKERS" => Some("2".to_string()),
            _ => None,
        };
        let opts = ServerOptions::parse(&[], &env).unwrap();
        assert_eq!(opts.maint.as_ref().unwrap().workers, 2, "env beats default");
        // Tuning without a maintainer is silently dropped, like the rest
        // of the --maint-* family.
        let opts = ServerOptions::parse(&strings(&["--maint", "off"]), &env).unwrap();
        assert!(opts.maint.is_none());
    }

    #[test]
    fn stats_toggle_parses_from_flag_and_env() {
        let opts = ServerOptions::parse(&[], &no_env).unwrap();
        assert!(opts.stats, "telemetry defaults on");
        let opts = ServerOptions::parse(&strings(&["--stats", "off"]), &no_env).unwrap();
        assert!(!opts.stats);
        let env = |name: &str| match name {
            "RP_KV_STATS" => Some("0".to_string()),
            _ => None,
        };
        let opts = ServerOptions::parse(&[], &env).unwrap();
        assert!(!opts.stats, "env beats default");
        let opts = ServerOptions::parse(&strings(&["--stats", "on"]), &env).unwrap();
        assert!(opts.stats, "flag beats env");
    }

    #[test]
    fn bad_values_report_errors() {
        assert!(ServerOptions::parse(&strings(&["--engine", "redis"]), &no_env).is_err());
        assert!(ServerOptions::parse(&strings(&["--port", "eleven"]), &no_env).is_err());
        assert!(ServerOptions::parse(&strings(&["--mode", "forked"]), &no_env).is_err());
        assert!(ServerOptions::parse(&strings(&["--port"]), &no_env).is_err());
        assert!(ServerOptions::parse(&strings(&["--bogus", "1"]), &no_env).is_err());
        let usage = ServerOptions::parse(&strings(&["--help"]), &no_env).unwrap_err();
        assert!(usage.contains("--maint-fairness-slice"));
    }

    #[test]
    fn built_engines_match_the_request() {
        let opts = ServerOptions::parse(
            &strings(&["--engine", "rp-shard", "--shards", "4", "--maint", "off"]),
            &no_env,
        )
        .unwrap();
        let engine = opts.build_engine();
        assert_eq!(engine.name(), "rp-shard");
        let opts = ServerOptions::parse(&strings(&["--engine", "splitorder"]), &no_env).unwrap();
        assert_eq!(opts.engine, EngineKind::SplitOrder);
        assert_eq!(opts.build_engine().name(), "splitorder");
        let opts = ServerOptions::parse(&strings(&["--engine", "lock"]), &no_env).unwrap();
        assert_eq!(opts.build_engine().name(), "default");
    }
}
