//! The relativistic engine: wait-free GETs over an [`RpHashMap`] index.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rp_hash::{FnvBuildHasher, ResizePolicy, RpHashMap};

use crate::engine::{CacheEngine, CacheStats, EngineReadCtx, StoreOutcome};
use crate::item::Item;
use crate::lock_engine::EngineConfig;

/// Hashes raw key bytes exactly as the engines' `String`-keyed indexes
/// hash their keys (std's `str` hashing feeds the bytes then a `0xff`
/// terminator into the hasher), so a `&[u8]` borrowed from a connection's
/// read buffer can probe the index through the raw
/// `get_matching_prehashed` lookups: hash once, compare bytes, allocate
/// nothing. A unit test pins this against `FnvBuildHasher`'s `str` output
/// in case std's `str` hashing scheme ever changes.
pub(crate) fn str_bytes_hash(bytes: &[u8]) -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut hasher = FnvBuildHasher.build_hasher();
    hasher.write(bytes);
    hasher.write_u8(0xff);
    hasher.finish()
}

/// What a raw (byte-keyed) index probe found, with the LRU stamp already
/// applied to a live hit — the shared classification behind both engines'
/// [`CacheEngine::get_ref`](crate::CacheEngine::get_ref) paths, so the
/// hit/expired/miss accounting lives in exactly one place.
pub(crate) enum RawProbe {
    /// A live item, copied out inside the read-side window.
    Live(Item),
    /// Present but expired: the caller removes it on the writer-side slow
    /// path.
    Expired,
    /// Not present.
    Miss,
}

/// Classifies a probe result and stamps a live hit's access time.
pub(crate) fn classify_probe(
    stored: Option<&Arc<StoredItem>>,
    now: Instant,
    stamp: u64,
) -> RawProbe {
    match stored {
        Some(stored) if !stored.item.is_expired(now) => {
            stored.last_access.store(stamp, Ordering::Relaxed);
            RawProbe::Live(stored.item.clone())
        }
        Some(_) => RawProbe::Expired,
        None => RawProbe::Miss,
    }
}

/// An index that can be probed by a raw hash + borrowed key bytes under
/// either read-side witness — the seam that lets both engines share one
/// [`CacheEngine::get_ref`](crate::CacheEngine::get_ref) body
/// ([`probe_ref`] + [`settle_probe`]) instead of copy-pasting the
/// dispatch and accounting.
pub(crate) trait ByteKeyIndex {
    /// Raw lookup: `hash` must be [`str_bytes_hash`] of `key`.
    fn probe<'g, P: rp_hash::ReadProtect>(
        &'g self,
        hash: u64,
        key: &[u8],
        protect: &'g P,
    ) -> Option<&'g Arc<StoredItem>>;

    /// Pins an EBR guard for the fallback flavor.
    fn pin_guard(&self) -> rp_rcu::RcuGuard<'static>;
}

impl ByteKeyIndex for RpHashMap<String, Arc<StoredItem>, FnvBuildHasher> {
    fn probe<'g, P: rp_hash::ReadProtect>(
        &'g self,
        hash: u64,
        key: &[u8],
        protect: &'g P,
    ) -> Option<&'g Arc<StoredItem>> {
        self.get_matching_prehashed(hash, |k| k.as_bytes() == key, protect)
    }

    fn pin_guard(&self) -> rp_rcu::RcuGuard<'static> {
        self.pin()
    }
}

/// Probes `index` for `key` through the context's read-side flavor — the
/// barrier-free QSBR handle when the worker has one, a pinned EBR guard
/// otherwise — and classifies the result (stamping a live hit's access
/// time).
pub(crate) fn probe_ref(
    index: &impl ByteKeyIndex,
    ctx: &EngineReadCtx,
    hash: u64,
    key: &[u8],
    now: Instant,
    stamp: u64,
) -> RawProbe {
    match ctx.qsbr_handle() {
        Some(handle) => classify_probe(index.probe(hash, key, handle), now, stamp),
        None => {
            let guard = index.pin_guard();
            classify_probe(index.probe(hash, key, &guard), now, stamp)
        }
    }
}

/// Applies the shared hit/miss/expired accounting for a raw probe.
/// `remove_expired` is the engine-specific writer-side removal (cold
/// path); it returns whether the expired entry was actually removed.
pub(crate) fn settle_probe(
    stats: &CacheStats,
    probe: RawProbe,
    remove_expired: impl FnOnce() -> bool,
) -> Option<Item> {
    match probe {
        RawProbe::Live(item) => {
            stats.bump(&stats.get_hits);
            Some(item)
        }
        RawProbe::Miss => {
            stats.bump(&stats.get_misses);
            None
        }
        RawProbe::Expired => {
            if remove_expired() {
                stats.bump(&stats.expirations);
            }
            stats.bump(&stats.get_misses);
            None
        }
    }
}

/// The bookkeeping both relativistic engines share — the capacity
/// configuration, the approximate-LRU clock, and the operation counters —
/// plus the stats/expiry/LRU logic over them, written once. An engine
/// contributes its index type and the handful of index calls; everything
/// that used to be copy-pasted between [`RpEngine`](crate::RpEngine) and
/// [`ShardedRpEngine`](crate::ShardedRpEngine) lives here.
pub(crate) struct EngineCore {
    pub(crate) config: EngineConfig,
    pub(crate) clock: AtomicU64,
    pub(crate) stats: CacheStats,
}

impl EngineCore {
    pub(crate) fn with_capacity(capacity: usize) -> EngineCore {
        EngineCore {
            config: EngineConfig {
                capacity: capacity.max(1),
                ..EngineConfig::default()
            },
            clock: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// Next approximate-LRU access stamp.
    pub(crate) fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Wraps `item` for storage, or `None` if it exceeds the per-item size
    /// limit (the shared SET admission check).
    pub(crate) fn admit(&self, item: Item) -> Option<Arc<StoredItem>> {
        if item.len() > self.config.max_item_size {
            return None;
        }
        Some(Arc::new(StoredItem {
            item,
            last_access: AtomicU64::new(self.stamp()),
        }))
    }

    pub(crate) fn note_set(&self) {
        self.stats.bump(&self.stats.sets);
    }

    pub(crate) fn note_delete(&self, removed: bool) -> bool {
        if removed {
            self.stats.bump(&self.stats.deletes);
        }
        removed
    }

    /// Applies the shared hit/expired/miss accounting ([`settle_probe`]).
    pub(crate) fn settle(
        &self,
        probe: RawProbe,
        remove_expired: impl FnOnce() -> bool,
    ) -> Option<Item> {
        settle_probe(&self.stats, probe, remove_expired)
    }

    /// Approximate LRU: collect `(key, stamp)` pairs, evict the stalest
    /// entries until the cache is back under capacity. Runs on the writer
    /// (SET) path only.
    pub(crate) fn evict_if_needed(
        &self,
        len: impl Fn() -> usize,
        candidates: impl Fn() -> Vec<(String, u64)>,
        remove: impl Fn(&str) -> bool,
    ) {
        while len() > self.config.capacity {
            let over = len() - self.config.capacity;
            let mut candidates = candidates();
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by_key(|(_, stamp)| *stamp);
            for (key, _) in candidates.into_iter().take(over.max(1)) {
                if remove(&key) {
                    self.stats.bump(&self.stats.evictions);
                }
            }
        }
    }

    /// Accounting for an eager purge sweep; returns `purged` back.
    pub(crate) fn note_purged(&self, purged: usize) -> usize {
        for _ in 0..purged {
            self.stats.bump(&self.stats.expirations);
        }
        purged
    }
}

/// A stored item plus its approximate-LRU access stamp.
///
/// The payload is immutable after publication; only the access stamp is
/// updated by readers, with a relaxed store (the relativistic equivalent of
/// memcached's "don't bump the LRU on every GET" optimisation — readers
/// never take a lock or move list nodes).
pub(crate) struct StoredItem {
    pub(crate) item: Item,
    pub(crate) last_access: AtomicU64,
}

/// The relativistic engine, mirroring the paper's memcached patch:
///
/// * **GET** pins an RCU guard, looks the key up in the relativistic hash
///   table, checks expiry and copies the (reference-counted) value out — all
///   without taking any lock. Expired entries fall back to the slow path
///   (`delete`) exactly as the patch "falls back to the slow path for
///   expiry, eviction".
/// * **SET / DELETE** go through the hash table's writer side (a mutex) and
///   retire replaced items through the RCU domain.
/// * **Eviction** is approximate LRU: when the cache exceeds its capacity,
///   the writer samples the table and evicts the stalest entries it saw.
pub struct RpEngine {
    index: RpHashMap<String, Arc<StoredItem>, FnvBuildHasher>,
    core: EngineCore,
}

impl Default for RpEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl RpEngine {
    /// Creates an engine with a large default capacity.
    pub fn new() -> Self {
        Self::with_capacity(1 << 20)
    }

    /// Creates an engine that holds at most `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity.max(16)).next_power_of_two().min(1 << 16);
        RpEngine {
            index: RpHashMap::with_buckets_hasher_and_policy(
                buckets.min(1024),
                FnvBuildHasher,
                ResizePolicy {
                    auto_expand: true,
                    auto_shrink: true,
                    max_load_factor: 2.0,
                    min_load_factor: 0.125,
                    min_buckets: 16,
                    ..ResizePolicy::default()
                },
            ),
            core: EngineCore::with_capacity(capacity),
        }
    }

    /// Number of buckets currently used by the index (exposed so the
    /// benchmark can confirm the table resizes itself under load).
    pub fn index_buckets(&self) -> usize {
        self.index.num_buckets()
    }

    fn evict_if_needed(&self) {
        self.core.evict_if_needed(
            || self.index.len(),
            || {
                let guard = self.index.pin();
                self.index
                    .iter(&guard)
                    .map(|(k, v)| (k.clone(), v.last_access.load(Ordering::Relaxed)))
                    .collect()
            },
            |key| self.index.remove(key),
        );
    }
}

impl CacheEngine for RpEngine {
    fn name(&self) -> &'static str {
        "rp"
    }

    fn get(&self, key: &str) -> Option<Item> {
        let now = Instant::now();
        let stamp = self.core.stamp();
        // Fast path: a relativistic lookup. No locks, no waiting; the value
        // is copied (cheaply — the payload is reference counted) while still
        // inside the read-side critical section. An expired entry falls back
        // to the writer-side slow path inside `settle`.
        let probe = {
            let guard = self.index.pin();
            classify_probe(self.index.get(key, &guard), now, stamp)
        };
        self.core.settle(probe, || self.index.remove(key))
    }

    fn get_via(&self, key: &str, ctx: &mut EngineReadCtx) -> Option<Item> {
        // Flavor check first: the EBR fallback computes its own timestamp
        // and clock stamp inside `get`, so doing it here too would double
        // that hot-path work.
        let Some(handle) = ctx.qsbr_handle() else {
            return self.get(key);
        };
        let now = Instant::now();
        let stamp = self.core.stamp();
        // The QSBR fast path: no guard, no fence — the lookup is free. The
        // value is copied out while the context borrow (the quiescent
        // window) is still open, exactly like the guard-scoped EBR path.
        // Grace-period work a removal triggers is postponed while this
        // thread is a QSBR reader — the background maintainer or reclaimer
        // absorbs it.
        let probe = classify_probe(self.index.get_qsbr(key, handle), now, stamp);
        self.core.settle(probe, || self.index.remove(key))
    }

    fn get_ref(&self, key: &[u8], ctx: &mut EngineReadCtx) -> Option<Item> {
        // One hashing pass over the borrowed key bytes serves the whole
        // lookup; the key is never copied and never re-validated.
        let hash = str_bytes_hash(key);
        let now = Instant::now();
        let stamp = self.core.stamp();
        let probe = probe_ref(&self.index, ctx, hash, key, now, stamp);
        self.core.settle(probe, || {
            // Expired: remove through the writer side (cold path; the
            // UTF-8 view is free — stored keys are always valid UTF-8).
            std::str::from_utf8(key)
                .map(|key| self.index.remove_prehashed(hash, key))
                .unwrap_or(false)
        })
    }

    fn set(&self, key: &str, item: Item) -> StoreOutcome {
        let Some(stored) = self.core.admit(item) else {
            return StoreOutcome::NotStored;
        };
        self.index.insert(key.to_string(), stored);
        self.evict_if_needed();
        self.core.note_set();
        StoreOutcome::Stored
    }

    fn delete(&self, key: &str) -> bool {
        self.core.note_delete(self.index.remove(key))
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn housekeeping(&self) {
        // Catch up on index resizes the writer paths postponed (QSBR
        // workers cannot wait for readers mid-batch). Cheap when the load
        // factor is inside bounds.
        self.index.maintain();
    }

    fn stats(&self) -> &CacheStats {
        &self.core.stats
    }

    fn purge_expired(&self) -> usize {
        let now = Instant::now();
        let before = self.index.len();
        self.index.retain(|_, stored| !stored.item.is_expired(now));
        self.core
            .note_purged(before.saturating_sub(self.index.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn str_bytes_hash_matches_the_index_hasher() {
        use std::hash::BuildHasher;
        // The byte-keyed hot path relies on hashing raw bytes exactly as
        // the String-keyed index hashes its keys. If std's str hashing
        // scheme ever changes, this test fails before any lookup can miss.
        for key in ["", "k", "memtier-12345", "a:b:c_d-e", "日本語"] {
            assert_eq!(
                str_bytes_hash(key.as_bytes()),
                FnvBuildHasher.hash_one(key),
                "{key:?}"
            );
        }
    }

    #[test]
    fn get_ref_matches_get_for_both_read_sides() {
        use crate::engine::{EngineReadCtx, ReadSide};
        std::thread::spawn(|| {
            let engine = RpEngine::new();
            engine.set("present", Item::new(9, "val"));
            let mut stale = Item::new(0, "old");
            stale.expires_at = Some(Instant::now() - Duration::from_millis(1));
            engine.set("stale", stale);

            for read_side in [ReadSide::Ebr, ReadSide::Qsbr] {
                let mut ctx = EngineReadCtx::new(read_side);
                let hit = engine.get_ref(b"present", &mut ctx).unwrap();
                assert_eq!(hit.flags, 9);
                assert_eq!(&hit.data[..], b"val");
                assert_eq!(engine.get_ref(b"missing", &mut ctx), None);
                assert_eq!(engine.get_ref(b"\xff\xfe not utf8", &mut ctx), None);
                ctx.quiescent();
            }
            // The expired entry fell back to the slow path and was removed.
            assert_eq!(engine.get_ref(b"stale", &mut EngineReadCtx::ebr()), None);
            assert_eq!(engine.len(), 1);
            assert!(engine.stats().expirations.load(Ordering::Relaxed) >= 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn get_set_delete_round_trip() {
        let engine = RpEngine::new();
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.set("k", Item::new(3, "value")), StoreOutcome::Stored);
        let item = engine.get("k").unwrap();
        assert_eq!(item.flags, 3);
        assert_eq!(&item.data[..], b"value");
        assert!(engine.delete("k"));
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.stats().hits(), 1);
        assert_eq!(engine.stats().misses(), 2);
    }

    #[test]
    fn expired_items_fall_back_to_the_slow_path() {
        let engine = RpEngine::new();
        let mut item = Item::new(0, "stale");
        item.expires_at = Some(Instant::now() - Duration::from_millis(1));
        engine.set("k", item);
        assert_eq!(engine.len(), 1);
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.len(), 0, "expired item must be removed lazily");
        assert_eq!(engine.stats().expirations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn capacity_is_enforced_with_approximate_lru() {
        let engine = RpEngine::with_capacity(4);
        for i in 0..4 {
            engine.set(&format!("k{i}"), Item::new(0, "x"));
        }
        // Touch k0..k2 so k3 is the coldest.
        for i in 0..3 {
            engine.get(&format!("k{i}"));
        }
        engine.set("k4", Item::new(0, "x"));
        assert_eq!(engine.len(), 4);
        assert!(engine.stats().evicted() >= 1);
        assert!(
            engine.get("k4").is_some(),
            "newly inserted key must survive"
        );
    }

    #[test]
    fn purge_expired_removes_only_stale_items() {
        let engine = RpEngine::new();
        for i in 0..6 {
            let mut item = Item::new(0, "x");
            if i % 2 == 0 {
                item.expires_at = Some(Instant::now() - Duration::from_millis(1));
            }
            engine.set(&format!("k{i}"), item);
        }
        assert_eq!(engine.purge_expired(), 3);
        assert_eq!(engine.len(), 3);
    }

    #[test]
    fn index_resizes_itself_under_insert_load() {
        let engine = RpEngine::with_capacity(100_000);
        let before = engine.index_buckets();
        for i in 0..8192 {
            engine.set(&format!("key-{i}"), Item::new(0, "v"));
        }
        assert!(
            engine.index_buckets() > before,
            "expected the relativistic index to auto-expand ({} -> {})",
            before,
            engine.index_buckets()
        );
        assert_eq!(engine.len(), 8192);
    }

    #[test]
    fn qsbr_worker_housekeeping_grows_the_index() {
        use crate::engine::{EngineReadCtx, ReadSide};
        // Simulates an event-loop worker: QSBR-online while serving, so
        // SETs postpone auto-resizing; `housekeeping` from the offline
        // window between batches must catch up — without it the index
        // would never grow when every writer is a QSBR worker.
        std::thread::spawn(|| {
            let engine = RpEngine::with_capacity(100_000);
            let mut ctx = EngineReadCtx::new(ReadSide::Qsbr);
            let before = engine.index_buckets();
            for i in 0..8192 {
                engine.set(&format!("key-{i}"), Item::new(0, "v"));
            }
            assert_eq!(
                engine.index_buckets(),
                before,
                "resizes must be postponed while the worker is QSBR-online"
            );
            ctx.quiescent();
            ctx.with_offline(|| engine.housekeeping());
            assert!(
                engine.index_buckets() > before,
                "housekeeping must grow the postponed index ({} -> {})",
                before,
                engine.index_buckets()
            );
            assert!(engine.get_via("key-7", &mut ctx).is_some());
            // Multi-key GETs flow through get_via per key by default, so
            // they use the QSBR path too.
            let hits = engine.get_many_via(&["key-1", "missing", "key-2"], &mut ctx);
            assert_eq!(hits.iter().filter(|h| h.is_some()).count(), 2);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn concurrent_gets_and_sets() {
        use std::sync::atomic::AtomicBool;
        let engine = Arc::new(RpEngine::new());
        for i in 0..256 {
            engine.set(&format!("k{i}"), Item::new(0, format!("v{i}")));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|seed| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut k = seed;
                    while !stop.load(Ordering::Relaxed) {
                        k = (k * 13 + 1) % 256;
                        let item = engine.get(&format!("k{k}")).expect("stable key present");
                        assert!(item.data.starts_with(b"v"));
                    }
                })
            })
            .collect();
        for round in 0..2000_u32 {
            let k = round % 256;
            engine.set(&format!("k{k}"), Item::new(round, format!("v{k}-{round}")));
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
    }
}
