//! A subset of the memcached text protocol.
//!
//! Supported commands:
//!
//! ```text
//! get <key> [<key>...]\r\n
//! set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! delete <key> [noreply]\r\n
//! stats\r\n
//! version\r\n
//! quit\r\n
//! ```
//!
//! Responses follow the memcached conventions (`VALUE`, `END`, `STORED`,
//! `DELETED`, `NOT_FOUND`, `ERROR`, ...). The parser is incremental: it
//! consumes complete commands from the front of a byte buffer and reports
//! how many bytes it used, so the server can read from a socket in chunks.

use std::time::Duration;

use bytes::Bytes;

use crate::item::Item;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get` with one or more keys.
    Get(Vec<String>),
    /// `set <key> <flags> <exptime> <bytes>` plus the data block.
    Set {
        /// Item key.
        key: String,
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (0 = never).
        exptime: u64,
        /// Payload bytes.
        data: Bytes,
        /// Suppress the reply if set.
        noreply: bool,
    },
    /// `delete <key>`.
    Delete {
        /// Item key.
        key: String,
        /// Suppress the reply if set.
        noreply: bool,
    },
    /// `stats`.
    Stats,
    /// `version`.
    Version,
    /// `quit` (close the connection).
    Quit,
}

impl Command {
    /// Builds the [`Item`] described by a `set` command.
    pub fn to_item(&self) -> Option<Item> {
        match self {
            Command::Set {
                flags,
                exptime,
                data,
                ..
            } => Some(Item::with_ttl(
                *flags,
                data.clone(),
                Duration::from_secs(*exptime),
            )),
            _ => None,
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// One `VALUE` block per hit followed by `END`.
    Values(Vec<(String, u32, Bytes)>),
    /// `STORED`.
    Stored,
    /// `NOT_STORED`.
    NotStored,
    /// `DELETED`.
    Deleted,
    /// `NOT_FOUND`.
    NotFound,
    /// `STAT` lines followed by `END`.
    Stats(Vec<(String, String)>),
    /// `VERSION <x>`.
    Version(String),
    /// `ERROR` (unknown command).
    Error,
    /// `CLIENT_ERROR <msg>`.
    ClientError(String),
}

impl Response {
    /// Serialises the response into protocol bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Values(values) => {
                for (key, flags, data) in values {
                    out.extend_from_slice(
                        format!("VALUE {key} {flags} {}\r\n", data.len()).as_bytes(),
                    );
                    out.extend_from_slice(data);
                    out.extend_from_slice(b"\r\n");
                }
                out.extend_from_slice(b"END\r\n");
            }
            Response::Stored => out.extend_from_slice(b"STORED\r\n"),
            Response::NotStored => out.extend_from_slice(b"NOT_STORED\r\n"),
            Response::Deleted => out.extend_from_slice(b"DELETED\r\n"),
            Response::NotFound => out.extend_from_slice(b"NOT_FOUND\r\n"),
            Response::Stats(stats) => {
                for (name, value) in stats {
                    out.extend_from_slice(format!("STAT {name} {value}\r\n").as_bytes());
                }
                out.extend_from_slice(b"END\r\n");
            }
            Response::Version(v) => out.extend_from_slice(format!("VERSION {v}\r\n").as_bytes()),
            Response::Error => out.extend_from_slice(b"ERROR\r\n"),
            Response::ClientError(msg) => {
                out.extend_from_slice(format!("CLIENT_ERROR {msg}\r\n").as_bytes())
            }
        }
        out
    }
}

/// The result of attempting to parse one command from the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A complete command was parsed; `consumed` bytes should be drained.
    Complete {
        /// The parsed command.
        command: Command,
        /// Number of bytes consumed from the front of the buffer.
        consumed: usize,
    },
    /// More bytes are needed before a command can be parsed.
    Incomplete,
    /// The buffer starts with a malformed command; `consumed` bytes (up to
    /// and including the offending line) should be drained and the message
    /// reported to the client.
    Invalid {
        /// Number of bytes to drain.
        consumed: usize,
        /// Human-readable reason.
        reason: String,
    },
}

/// Attempts to parse one command from the front of `buf`.
pub fn parse_command(buf: &[u8]) -> ParseOutcome {
    let Some(line_end) = find_crlf(buf) else {
        return ParseOutcome::Incomplete;
    };
    let line = &buf[..line_end];
    let after_line = line_end + 2;
    let Ok(line) = std::str::from_utf8(line) else {
        return ParseOutcome::Invalid {
            consumed: after_line,
            reason: "command line is not valid UTF-8".to_string(),
        };
    };
    let mut parts = line.split_ascii_whitespace();
    let Some(verb) = parts.next() else {
        // Empty line: just skip it.
        return ParseOutcome::Invalid {
            consumed: after_line,
            reason: "empty command".to_string(),
        };
    };

    match verb {
        "get" | "gets" => {
            let keys: Vec<String> = parts.map(str::to_string).collect();
            if keys.is_empty() {
                ParseOutcome::Invalid {
                    consumed: after_line,
                    reason: "get requires at least one key".to_string(),
                }
            } else {
                ParseOutcome::Complete {
                    command: Command::Get(keys),
                    consumed: after_line,
                }
            }
        }
        "set" => {
            let (Some(key), Some(flags), Some(exptime), Some(bytes)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return ParseOutcome::Invalid {
                    consumed: after_line,
                    reason: "set requires <key> <flags> <exptime> <bytes>".to_string(),
                };
            };
            let noreply = matches!(parts.next(), Some("noreply"));
            let (Ok(flags), Ok(exptime), Ok(nbytes)) = (
                flags.parse::<u32>(),
                exptime.parse::<u64>(),
                bytes.parse::<usize>(),
            ) else {
                return ParseOutcome::Invalid {
                    consumed: after_line,
                    reason: "bad numeric field in set".to_string(),
                };
            };
            // The data block is <bytes> bytes followed by \r\n. A byte
            // count near usize::MAX would overflow the frame arithmetic;
            // nothing legitimate comes within orders of magnitude of it.
            let Some(needed) = after_line
                .checked_add(nbytes)
                .and_then(|n| n.checked_add(2))
            else {
                return ParseOutcome::Invalid {
                    consumed: after_line,
                    reason: "set byte count is absurdly large".to_string(),
                };
            };
            if buf.len() < needed {
                return ParseOutcome::Incomplete;
            }
            let data = &buf[after_line..after_line + nbytes];
            if &buf[after_line + nbytes..needed] != b"\r\n" {
                return ParseOutcome::Invalid {
                    consumed: needed,
                    reason: "data block not terminated by CRLF".to_string(),
                };
            }
            ParseOutcome::Complete {
                command: Command::Set {
                    key: key.to_string(),
                    flags,
                    exptime,
                    data: Bytes::copy_from_slice(data),
                    noreply,
                },
                consumed: needed,
            }
        }
        "delete" => {
            let Some(key) = parts.next() else {
                return ParseOutcome::Invalid {
                    consumed: after_line,
                    reason: "delete requires a key".to_string(),
                };
            };
            let noreply = matches!(parts.next(), Some("noreply"));
            ParseOutcome::Complete {
                command: Command::Delete {
                    key: key.to_string(),
                    noreply,
                },
                consumed: after_line,
            }
        }
        "stats" => ParseOutcome::Complete {
            command: Command::Stats,
            consumed: after_line,
        },
        "version" => ParseOutcome::Complete {
            command: Command::Version,
            consumed: after_line,
        },
        "quit" => ParseOutcome::Complete {
            command: Command::Quit,
            consumed: after_line,
        },
        other => ParseOutcome::Invalid {
            consumed: after_line,
            reason: format!("unknown command {other:?}"),
        },
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// Longest command line the decoder accepts before declaring the stream
/// malformed (memcached applies the same defence).
pub const MAX_LINE: usize = 8 * 1024;

/// Largest complete frame (command line + data block) the decoder buffers.
/// A `set` declaring more is rejected and its payload swallowed as it
/// arrives, without ever holding it in memory.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// One request produced by [`RequestDecoder::next`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedRequest {
    /// A well-formed command.
    Command(Command),
    /// A malformed command; the offending bytes have been discarded and
    /// `reason` should be reported to the client as `CLIENT_ERROR`.
    Invalid {
        /// Human-readable reason.
        reason: String,
    },
}

/// A stateful, fully incremental protocol decoder.
///
/// [`parse_command`] is stateless: callers re-present the whole buffer
/// until a frame completes. `RequestDecoder` owns the buffer between
/// reads — bytes can arrive one at a time, split anywhere (mid-verb,
/// mid-CRLF, mid-data-block), across any number of [`RequestDecoder::feed`]
/// calls — and adds the defensive limits a network-facing server needs:
///
/// * command lines longer than [`MAX_LINE`] produce one `Invalid` and the
///   rest of the line is discarded as it streams in;
/// * `set` frames declaring more than [`MAX_FRAME`] payload bytes produce
///   one `Invalid` and the payload is swallowed without being buffered.
///
/// ```
/// use rp_kvcache::protocol::{Command, DecodedRequest, RequestDecoder};
///
/// let mut decoder = RequestDecoder::new();
/// // A pipelined stream, fed one byte at a time.
/// for &b in b"version\r\nget k\r\n" {
///     decoder.feed(&[b]);
/// }
/// assert_eq!(decoder.next(), Some(DecodedRequest::Command(Command::Version)));
/// assert_eq!(
///     decoder.next(),
///     Some(DecodedRequest::Command(Command::Get(vec!["k".into()])))
/// );
/// assert_eq!(decoder.next(), None); // needs more bytes
/// ```
#[derive(Debug, Default)]
pub struct RequestDecoder {
    buf: Vec<u8>,
    /// Bytes of an abandoned oversized frame still to swallow.
    skip: usize,
    /// When set, discard until the next CRLF (oversized command line).
    skip_line: bool,
}

impl RequestDecoder {
    /// Creates an empty decoder.
    pub fn new() -> RequestDecoder {
        RequestDecoder::default()
    }

    /// Appends raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// [`RequestDecoder::feed`] that takes ownership of `input`'s contents
    /// (leaving it empty), avoiding a copy when the decoder's own buffer is
    /// empty — the common case for a well-behaved client.
    pub fn absorb(&mut self, input: &mut Vec<u8>) {
        if self.buf.is_empty() {
            std::mem::swap(&mut self.buf, input);
        } else {
            self.buf.extend_from_slice(input);
            input.clear();
        }
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// [`Iterator::next`] extracts the next complete request, or `None` if
/// more bytes are needed — the iterator is *resumable*: after another
/// [`RequestDecoder::feed`] it may yield again. Typical use drains every
/// pipelined request that has fully arrived after each socket read:
///
/// ```
/// # use rp_kvcache::protocol::{DecodedRequest, RequestDecoder};
/// # fn handle(_r: DecodedRequest) {}
/// # let mut decoder = RequestDecoder::new();
/// decoder.feed(b"stats\r\nversion\r\nqu");
/// for request in &mut decoder {
///     handle(request); // Stats, then Version; "qu" stays buffered
/// }
/// # assert_eq!(decoder.buffered(), 2);
/// ```
impl Iterator for RequestDecoder {
    type Item = DecodedRequest;

    fn next(&mut self) -> Option<DecodedRequest> {
        // Swallow the remainder of an abandoned oversized frame.
        if self.skip > 0 {
            let n = self.skip.min(self.buf.len());
            self.buf.drain(..n);
            self.skip -= n;
            if self.skip > 0 {
                return None;
            }
        }
        // Discard an overlong line up to its (eventual) CRLF.
        if self.skip_line {
            match find_crlf(&self.buf) {
                Some(pos) => {
                    self.buf.drain(..pos + 2);
                    self.skip_line = false;
                }
                None => {
                    // Keep a trailing '\r': its '\n' may be next.
                    let keep = usize::from(self.buf.last() == Some(&b'\r'));
                    let len = self.buf.len();
                    self.buf.drain(..len - keep);
                    return None;
                }
            }
        }
        match parse_command(&self.buf) {
            ParseOutcome::Complete { command, consumed } => {
                self.buf.drain(..consumed);
                Some(DecodedRequest::Command(command))
            }
            ParseOutcome::Invalid { consumed, reason } => {
                self.buf.drain(..consumed);
                Some(DecodedRequest::Invalid { reason })
            }
            ParseOutcome::Incomplete => match find_crlf(&self.buf) {
                None if self.buf.len() > MAX_LINE => {
                    self.skip_line = true;
                    Some(DecodedRequest::Invalid {
                        reason: format!("command line exceeds {MAX_LINE} bytes"),
                    })
                }
                Some(line_end) => {
                    // A complete line that still parses Incomplete is a
                    // `set` waiting for its data block; bound what we are
                    // willing to buffer for it.
                    match set_frame_len(&self.buf[..line_end], line_end) {
                        Some(total) if total > MAX_FRAME => {
                            self.skip = total;
                            Some(DecodedRequest::Invalid {
                                reason: format!("object larger than {MAX_FRAME} bytes"),
                            })
                        }
                        _ => None,
                    }
                }
                None => None,
            },
        }
    }
}

/// For a complete `set` command line, the total frame length (line + CRLF +
/// data block + CRLF). `None` for any other line, or on overflow (which
/// [`parse_command`] has already rejected as `Invalid` by then).
fn set_frame_len(line: &[u8], line_end: usize) -> Option<usize> {
    let line = std::str::from_utf8(line).ok()?;
    let mut parts = line.split_ascii_whitespace();
    if parts.next() != Some("set") {
        return None;
    }
    let nbytes: usize = parts.nth(3)?.parse().ok()?;
    line_end.checked_add(2)?.checked_add(nbytes)?.checked_add(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Command, usize) {
        match parse_command(buf) {
            ParseOutcome::Complete { command, consumed } => (command, consumed),
            other => panic!("expected complete command, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_multiple_keys() {
        let (cmd, consumed) = complete(b"get a bb ccc\r\n");
        assert_eq!(
            cmd,
            Command::Get(vec!["a".into(), "bb".into(), "ccc".into()])
        );
        assert_eq!(consumed, 14);
    }

    #[test]
    fn parses_set_with_data_block() {
        let (cmd, consumed) = complete(b"set key 7 0 5\r\nhello\r\nget x\r\n");
        match cmd {
            Command::Set {
                key,
                flags,
                exptime,
                data,
                noreply,
            } => {
                assert_eq!(key, "key");
                assert_eq!(flags, 7);
                assert_eq!(exptime, 0);
                assert_eq!(&data[..], b"hello");
                assert!(!noreply);
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert_eq!(consumed, b"set key 7 0 5\r\nhello\r\n".len());
    }

    #[test]
    fn set_with_binary_payload_and_noreply() {
        let mut buf = b"set k 0 0 3 noreply\r\n".to_vec();
        buf.extend_from_slice(&[0, 255, 10]);
        buf.extend_from_slice(b"\r\n");
        let (cmd, _) = complete(&buf);
        match cmd {
            Command::Set { data, noreply, .. } => {
                assert_eq!(&data[..], &[0, 255, 10]);
                assert!(noreply);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn incomplete_inputs_ask_for_more() {
        assert_eq!(parse_command(b"get a"), ParseOutcome::Incomplete);
        assert_eq!(
            parse_command(b"set k 0 0 5\r\nhel"),
            ParseOutcome::Incomplete
        );
        assert_eq!(parse_command(b""), ParseOutcome::Incomplete);
    }

    #[test]
    fn malformed_commands_are_rejected_with_reason() {
        match parse_command(b"set k x 0 5\r\n") {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("numeric")),
            other => panic!("unexpected {other:?}"),
        }
        match parse_command(b"bogus\r\n") {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("unknown")),
            other => panic!("unexpected {other:?}"),
        }
        match parse_command(b"get\r\n") {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("at least one key")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_stats_version_quit_parse() {
        assert_eq!(
            complete(b"delete k noreply\r\n").0,
            Command::Delete {
                key: "k".into(),
                noreply: true
            }
        );
        assert_eq!(complete(b"stats\r\n").0, Command::Stats);
        assert_eq!(complete(b"version\r\n").0, Command::Version);
        assert_eq!(complete(b"quit\r\n").0, Command::Quit);
    }

    #[test]
    fn responses_serialize_to_protocol_text() {
        let values = Response::Values(vec![("k".into(), 5, Bytes::from_static(b"abc"))]);
        assert_eq!(values.to_bytes(), b"VALUE k 5 3\r\nabc\r\nEND\r\n");
        assert_eq!(Response::Stored.to_bytes(), b"STORED\r\n");
        assert_eq!(Response::NotFound.to_bytes(), b"NOT_FOUND\r\n");
        assert_eq!(
            Response::Version("0.1".into()).to_bytes(),
            b"VERSION 0.1\r\n"
        );
        let stats = Response::Stats(vec![("get_hits".into(), "3".into())]);
        assert_eq!(stats.to_bytes(), b"STAT get_hits 3\r\nEND\r\n");
        assert_eq!(
            Response::ClientError("oops".into()).to_bytes(),
            b"CLIENT_ERROR oops\r\n"
        );
    }

    fn decode_all(decoder: &mut RequestDecoder) -> Vec<DecodedRequest> {
        let mut out = Vec::new();
        for req in decoder.by_ref() {
            out.push(req);
        }
        out
    }

    #[test]
    fn decoder_handles_byte_at_a_time_streams() {
        let stream = b"set k 1 0 5\r\nhello\r\nget k missing\r\ndelete k\r\nquit\r\n";
        let mut decoder = RequestDecoder::new();
        let mut decoded = Vec::new();
        for &b in stream.iter() {
            decoder.feed(&[b]);
            decoded.extend(decode_all(&mut decoder));
        }
        assert_eq!(decoded.len(), 4);
        assert!(matches!(
            &decoded[0],
            DecodedRequest::Command(Command::Set { key, .. }) if key == "k"
        ));
        assert_eq!(
            decoded[1],
            DecodedRequest::Command(Command::Get(vec!["k".into(), "missing".into()]))
        );
        assert!(matches!(
            &decoded[2],
            DecodedRequest::Command(Command::Delete { key, .. }) if key == "k"
        ));
        assert_eq!(decoded[3], DecodedRequest::Command(Command::Quit));
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn decoder_absorb_moves_bytes_out_of_the_input() {
        let mut decoder = RequestDecoder::new();
        let mut input = b"version\r\nver".to_vec();
        decoder.absorb(&mut input);
        assert!(input.is_empty());
        assert_eq!(
            decoder.next(),
            Some(DecodedRequest::Command(Command::Version))
        );
        assert_eq!(decoder.next(), None);
        let mut rest = b"sion\r\n".to_vec();
        decoder.absorb(&mut rest);
        assert_eq!(
            decoder.next(),
            Some(DecodedRequest::Command(Command::Version))
        );
    }

    #[test]
    fn decoder_rejects_and_skips_overlong_lines() {
        let mut decoder = RequestDecoder::new();
        // An endless line, fed in chunks: exactly one Invalid, bounded memory.
        let chunk = vec![b'a'; 4096];
        let mut invalids = 0;
        for _ in 0..16 {
            decoder.feed(&chunk);
            for req in decode_all(&mut decoder) {
                match req {
                    DecodedRequest::Invalid { reason } => {
                        invalids += 1;
                        assert!(reason.contains("exceeds"));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert!(decoder.buffered() <= MAX_LINE + chunk.len() + 2);
        }
        assert_eq!(invalids, 1);
        // The stream recovers at the next CRLF.
        decoder.feed(b"\r\nstats\r\n");
        assert_eq!(
            decode_all(&mut decoder),
            vec![DecodedRequest::Command(Command::Stats)]
        );
    }

    #[test]
    fn decoder_swallows_oversized_set_payloads_without_buffering() {
        let huge = MAX_FRAME + 100;
        let mut decoder = RequestDecoder::new();
        decoder.feed(format!("set big 0 0 {huge}\r\n").as_bytes());
        match decoder.next() {
            Some(DecodedRequest::Invalid { reason }) => assert!(reason.contains("larger")),
            other => panic!("unexpected {other:?}"),
        }
        // Stream the payload through; the decoder must not accumulate it.
        let chunk = vec![b'x'; 1 << 20];
        let mut sent = 0;
        while sent < huge {
            let n = chunk.len().min(huge - sent);
            decoder.feed(&chunk[..n]);
            assert_eq!(decoder.next(), None);
            assert!(decoder.buffered() < 2 * chunk.len());
            sent += n;
        }
        decoder.feed(b"\r\nversion\r\n");
        assert_eq!(
            decode_all(&mut decoder),
            vec![DecodedRequest::Command(Command::Version)]
        );
    }

    #[test]
    fn absurd_set_byte_counts_are_rejected_without_panicking() {
        // A byte count near usize::MAX would overflow the frame arithmetic
        // (`after_line + nbytes + 2`) and panic the worker thread.
        let line = format!("set k 0 0 {}\r\n", usize::MAX - 2);
        match parse_command(line.as_bytes()) {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("absurdly")),
            other => panic!("unexpected {other:?}"),
        }
        let mut decoder = RequestDecoder::new();
        decoder.feed(line.as_bytes());
        assert!(matches!(
            decoder.next(),
            Some(DecodedRequest::Invalid { .. })
        ));
        // The stream recovers at the next command.
        decoder.feed(b"version\r\n");
        assert_eq!(
            decoder.next(),
            Some(DecodedRequest::Command(Command::Version))
        );
    }

    #[test]
    fn decoder_split_crlf_while_skipping_line() {
        let mut decoder = RequestDecoder::new();
        let mut junk = vec![b'j'; MAX_LINE + 1];
        decoder.feed(&junk);
        assert!(matches!(
            decoder.next(),
            Some(DecodedRequest::Invalid { .. })
        ));
        // CRLF split across feeds while in skip-line mode.
        junk.clear();
        decoder.feed(b"more junk\r");
        assert_eq!(decoder.next(), None);
        decoder.feed(b"\nquit\r\n");
        assert_eq!(
            decode_all(&mut decoder),
            vec![DecodedRequest::Command(Command::Quit)]
        );
    }

    #[test]
    fn set_command_builds_an_item() {
        let (cmd, _) = complete(b"set k 9 60 2\r\nhi\r\n");
        let item = cmd.to_item().unwrap();
        assert_eq!(item.flags, 9);
        assert!(item.expires_at.is_some());
        assert_eq!(&item.data[..], b"hi");
        assert!(Command::Quit.to_item().is_none());
    }
}
