//! A subset of the memcached text protocol.
//!
//! Supported commands:
//!
//! ```text
//! get <key> [<key>...]\r\n
//! set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! delete <key> [noreply]\r\n
//! stats\r\n
//! version\r\n
//! quit\r\n
//! ```
//!
//! Responses follow the memcached conventions (`VALUE`, `END`, `STORED`,
//! `DELETED`, `NOT_FOUND`, `ERROR`, ...). The parser is incremental: it
//! consumes complete commands from the front of a byte buffer and reports
//! how many bytes it used, so the server can read from a socket in chunks.

use std::time::Duration;

use bytes::Bytes;

use crate::item::Item;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get` with one or more keys.
    Get(Vec<String>),
    /// `set <key> <flags> <exptime> <bytes>` plus the data block.
    Set {
        /// Item key.
        key: String,
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (0 = never).
        exptime: u64,
        /// Payload bytes.
        data: Bytes,
        /// Suppress the reply if set.
        noreply: bool,
    },
    /// `delete <key>`.
    Delete {
        /// Item key.
        key: String,
        /// Suppress the reply if set.
        noreply: bool,
    },
    /// `stats`.
    Stats,
    /// `version`.
    Version,
    /// `quit` (close the connection).
    Quit,
}

impl Command {
    /// Builds the [`Item`] described by a `set` command.
    pub fn to_item(&self) -> Option<Item> {
        match self {
            Command::Set {
                flags,
                exptime,
                data,
                ..
            } => Some(Item::with_ttl(
                *flags,
                data.clone(),
                Duration::from_secs(*exptime),
            )),
            _ => None,
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// One `VALUE` block per hit followed by `END`.
    Values(Vec<(String, u32, Bytes)>),
    /// `STORED`.
    Stored,
    /// `NOT_STORED`.
    NotStored,
    /// `DELETED`.
    Deleted,
    /// `NOT_FOUND`.
    NotFound,
    /// `STAT` lines followed by `END`.
    Stats(Vec<(String, String)>),
    /// `VERSION <x>`.
    Version(String),
    /// `ERROR` (unknown command).
    Error,
    /// `CLIENT_ERROR <msg>`.
    ClientError(String),
}

impl Response {
    /// Serialises the response into protocol bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Values(values) => {
                for (key, flags, data) in values {
                    out.extend_from_slice(
                        format!("VALUE {key} {flags} {}\r\n", data.len()).as_bytes(),
                    );
                    out.extend_from_slice(data);
                    out.extend_from_slice(b"\r\n");
                }
                out.extend_from_slice(b"END\r\n");
            }
            Response::Stored => out.extend_from_slice(b"STORED\r\n"),
            Response::NotStored => out.extend_from_slice(b"NOT_STORED\r\n"),
            Response::Deleted => out.extend_from_slice(b"DELETED\r\n"),
            Response::NotFound => out.extend_from_slice(b"NOT_FOUND\r\n"),
            Response::Stats(stats) => {
                for (name, value) in stats {
                    out.extend_from_slice(format!("STAT {name} {value}\r\n").as_bytes());
                }
                out.extend_from_slice(b"END\r\n");
            }
            Response::Version(v) => out.extend_from_slice(format!("VERSION {v}\r\n").as_bytes()),
            Response::Error => out.extend_from_slice(b"ERROR\r\n"),
            Response::ClientError(msg) => {
                out.extend_from_slice(format!("CLIENT_ERROR {msg}\r\n").as_bytes())
            }
        }
        out
    }
}

/// The result of attempting to parse one command from the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A complete command was parsed; `consumed` bytes should be drained.
    Complete {
        /// The parsed command.
        command: Command,
        /// Number of bytes consumed from the front of the buffer.
        consumed: usize,
    },
    /// More bytes are needed before a command can be parsed.
    Incomplete,
    /// The buffer starts with a malformed command; `consumed` bytes (up to
    /// and including the offending line) should be drained and the message
    /// reported to the client.
    Invalid {
        /// Number of bytes to drain.
        consumed: usize,
        /// Human-readable reason.
        reason: String,
    },
}

/// Attempts to parse one command from the front of `buf`.
pub fn parse_command(buf: &[u8]) -> ParseOutcome {
    let Some(line_end) = find_crlf(buf) else {
        return ParseOutcome::Incomplete;
    };
    let line = &buf[..line_end];
    let after_line = line_end + 2;
    let Ok(line) = std::str::from_utf8(line) else {
        return ParseOutcome::Invalid {
            consumed: after_line,
            reason: "command line is not valid UTF-8".to_string(),
        };
    };
    let mut parts = line.split_ascii_whitespace();
    let Some(verb) = parts.next() else {
        // Empty line: just skip it.
        return ParseOutcome::Invalid {
            consumed: after_line,
            reason: "empty command".to_string(),
        };
    };

    match verb {
        "get" | "gets" => {
            let keys: Vec<String> = parts.map(str::to_string).collect();
            if keys.is_empty() {
                ParseOutcome::Invalid {
                    consumed: after_line,
                    reason: "get requires at least one key".to_string(),
                }
            } else {
                ParseOutcome::Complete {
                    command: Command::Get(keys),
                    consumed: after_line,
                }
            }
        }
        "set" => {
            let (Some(key), Some(flags), Some(exptime), Some(bytes)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return ParseOutcome::Invalid {
                    consumed: after_line,
                    reason: "set requires <key> <flags> <exptime> <bytes>".to_string(),
                };
            };
            let noreply = matches!(parts.next(), Some("noreply"));
            let (Ok(flags), Ok(exptime), Ok(nbytes)) = (
                flags.parse::<u32>(),
                exptime.parse::<u64>(),
                bytes.parse::<usize>(),
            ) else {
                return ParseOutcome::Invalid {
                    consumed: after_line,
                    reason: "bad numeric field in set".to_string(),
                };
            };
            // The data block is <bytes> bytes followed by \r\n.
            let needed = after_line + nbytes + 2;
            if buf.len() < needed {
                return ParseOutcome::Incomplete;
            }
            let data = &buf[after_line..after_line + nbytes];
            if &buf[after_line + nbytes..needed] != b"\r\n" {
                return ParseOutcome::Invalid {
                    consumed: needed,
                    reason: "data block not terminated by CRLF".to_string(),
                };
            }
            ParseOutcome::Complete {
                command: Command::Set {
                    key: key.to_string(),
                    flags,
                    exptime,
                    data: Bytes::copy_from_slice(data),
                    noreply,
                },
                consumed: needed,
            }
        }
        "delete" => {
            let Some(key) = parts.next() else {
                return ParseOutcome::Invalid {
                    consumed: after_line,
                    reason: "delete requires a key".to_string(),
                };
            };
            let noreply = matches!(parts.next(), Some("noreply"));
            ParseOutcome::Complete {
                command: Command::Delete {
                    key: key.to_string(),
                    noreply,
                },
                consumed: after_line,
            }
        }
        "stats" => ParseOutcome::Complete {
            command: Command::Stats,
            consumed: after_line,
        },
        "version" => ParseOutcome::Complete {
            command: Command::Version,
            consumed: after_line,
        },
        "quit" => ParseOutcome::Complete {
            command: Command::Quit,
            consumed: after_line,
        },
        other => ParseOutcome::Invalid {
            consumed: after_line,
            reason: format!("unknown command {other:?}"),
        },
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Command, usize) {
        match parse_command(buf) {
            ParseOutcome::Complete { command, consumed } => (command, consumed),
            other => panic!("expected complete command, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_multiple_keys() {
        let (cmd, consumed) = complete(b"get a bb ccc\r\n");
        assert_eq!(
            cmd,
            Command::Get(vec!["a".into(), "bb".into(), "ccc".into()])
        );
        assert_eq!(consumed, 14);
    }

    #[test]
    fn parses_set_with_data_block() {
        let (cmd, consumed) = complete(b"set key 7 0 5\r\nhello\r\nget x\r\n");
        match cmd {
            Command::Set {
                key,
                flags,
                exptime,
                data,
                noreply,
            } => {
                assert_eq!(key, "key");
                assert_eq!(flags, 7);
                assert_eq!(exptime, 0);
                assert_eq!(&data[..], b"hello");
                assert!(!noreply);
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert_eq!(consumed, b"set key 7 0 5\r\nhello\r\n".len());
    }

    #[test]
    fn set_with_binary_payload_and_noreply() {
        let mut buf = b"set k 0 0 3 noreply\r\n".to_vec();
        buf.extend_from_slice(&[0, 255, 10]);
        buf.extend_from_slice(b"\r\n");
        let (cmd, _) = complete(&buf);
        match cmd {
            Command::Set { data, noreply, .. } => {
                assert_eq!(&data[..], &[0, 255, 10]);
                assert!(noreply);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn incomplete_inputs_ask_for_more() {
        assert_eq!(parse_command(b"get a"), ParseOutcome::Incomplete);
        assert_eq!(
            parse_command(b"set k 0 0 5\r\nhel"),
            ParseOutcome::Incomplete
        );
        assert_eq!(parse_command(b""), ParseOutcome::Incomplete);
    }

    #[test]
    fn malformed_commands_are_rejected_with_reason() {
        match parse_command(b"set k x 0 5\r\n") {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("numeric")),
            other => panic!("unexpected {other:?}"),
        }
        match parse_command(b"bogus\r\n") {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("unknown")),
            other => panic!("unexpected {other:?}"),
        }
        match parse_command(b"get\r\n") {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("at least one key")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_stats_version_quit_parse() {
        assert_eq!(
            complete(b"delete k noreply\r\n").0,
            Command::Delete {
                key: "k".into(),
                noreply: true
            }
        );
        assert_eq!(complete(b"stats\r\n").0, Command::Stats);
        assert_eq!(complete(b"version\r\n").0, Command::Version);
        assert_eq!(complete(b"quit\r\n").0, Command::Quit);
    }

    #[test]
    fn responses_serialize_to_protocol_text() {
        let values = Response::Values(vec![("k".into(), 5, Bytes::from_static(b"abc"))]);
        assert_eq!(values.to_bytes(), b"VALUE k 5 3\r\nabc\r\nEND\r\n");
        assert_eq!(Response::Stored.to_bytes(), b"STORED\r\n");
        assert_eq!(Response::NotFound.to_bytes(), b"NOT_FOUND\r\n");
        assert_eq!(
            Response::Version("0.1".into()).to_bytes(),
            b"VERSION 0.1\r\n"
        );
        let stats = Response::Stats(vec![("get_hits".into(), "3".into())]);
        assert_eq!(stats.to_bytes(), b"STAT get_hits 3\r\nEND\r\n");
        assert_eq!(
            Response::ClientError("oops".into()).to_bytes(),
            b"CLIENT_ERROR oops\r\n"
        );
    }

    #[test]
    fn set_command_builds_an_item() {
        let (cmd, _) = complete(b"set k 9 60 2\r\nhi\r\n");
        let item = cmd.to_item().unwrap();
        assert_eq!(item.flags, 9);
        assert!(item.expires_at.is_some());
        assert_eq!(&item.data[..], b"hi");
        assert!(Command::Quit.to_item().is_none());
    }
}
