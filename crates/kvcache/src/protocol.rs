//! A subset of the memcached text protocol.
//!
//! Supported commands:
//!
//! ```text
//! get <key> [<key>...]\r\n
//! set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//! delete <key> [noreply]\r\n
//! stats\r\n
//! version\r\n
//! quit\r\n
//! ```
//!
//! Responses follow the memcached conventions (`VALUE`, `END`, `STORED`,
//! `DELETED`, `NOT_FOUND`, `ERROR`, ...).
//!
//! Two request representations share one grammar:
//!
//! * [`RequestRef`] — the **borrowed** form the event-loop server's hot
//!   path uses: keys and `set` payloads are `&[u8]` slices into the
//!   connection's read buffer, parsing allocates nothing, and malformed
//!   input is reported as a [`BadRequest`] code whose message renders
//!   lazily (only if it actually reaches the wire). Produced by
//!   [`parse_request_ref`] / [`RefDecoder`].
//! * [`Command`] — the **owned** form (`String` keys, [`Bytes`] payloads)
//!   used by the threaded server, the client-visible API and the tests.
//!   Produced by [`parse_command`] / [`RequestDecoder`], both of which are
//!   thin owning wrappers over the borrowed parser, so the two forms cannot
//!   drift. [`RequestRef::to_owned`] bridges explicitly.
//!
//! Serialisation is symmetric: [`Response::write_to`] streams a response
//! directly into any [`BufWrite`] sink (the event loop passes the
//! connection's pooled output queue — no intermediate `Vec<u8>` per
//! reply), and [`Response::to_bytes`] is the owned convenience built on
//! top of it.

use std::time::Duration;

use bytes::Bytes;
use rp_net::BufWrite;

use crate::item::Item;

/// Which `STATS` telemetry view the client asked for.
///
/// The uppercase `STATS` verb is this server's live-telemetry endpoint
/// (Prometheus-style text from the `rp-obs` subsystem); the lowercase
/// memcached `stats` command keeps its classic `STAT <name> <value>`
/// reply, byte for byte. The verbs are distinct on the wire, so the two
/// never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsSub {
    /// `STATS` — render every metric as Prometheus exposition text.
    Render,
    /// `STATS RESET` — zero the counters and histograms (level gauges keep
    /// their value) and mark the trace ring.
    Reset,
    /// `STATS TRACE` / `STATS TRACE <n>` — dump the timestamped event
    /// ring (bare form: everything retained; with a count: only the most
    /// recent `n` events). The reply header documents the ring capacity.
    Trace(Option<usize>),
    /// `STATS SLOW` — dump the slow-request log: sampled request spans
    /// over the slow threshold, with their per-phase breakdown
    /// (decode/index/serialize).
    Slow,
    /// `STATS JSON` — render the whole registry (plus the engine metrics)
    /// as a single JSON object, same data as the Prometheus text form.
    Json,
    /// `STATS WORKER <n>` — render one worker's per-shard metrics verbatim
    /// (requests, decode errors, latency and batch-size summaries), so
    /// accept-shard imbalance is directly observable instead of being
    /// averaged away by the merged `STATS` scrape. Ordinals beyond the
    /// shard count wrap, exactly as recording does.
    Worker(usize),
}

/// A parsed client command (owned form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get` with one or more keys.
    Get(Vec<String>),
    /// `set <key> <flags> <exptime> <bytes>` plus the data block.
    Set {
        /// Item key.
        key: String,
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (0 = never).
        exptime: u64,
        /// Payload bytes.
        data: Bytes,
        /// Suppress the reply if set.
        noreply: bool,
    },
    /// `delete <key>`.
    Delete {
        /// Item key.
        key: String,
        /// Suppress the reply if set.
        noreply: bool,
    },
    /// `stats`.
    Stats,
    /// Uppercase `STATS` (live telemetry; see [`StatsSub`]).
    StatsProm(StatsSub),
    /// `version`.
    Version,
    /// `quit` (close the connection).
    Quit,
}

impl Command {
    /// Builds the [`Item`] described by a `set` command.
    pub fn to_item(&self) -> Option<Item> {
        match self {
            Command::Set {
                flags,
                exptime,
                data,
                ..
            } => Some(Item::with_ttl(
                *flags,
                data.clone(),
                Duration::from_secs(*exptime),
            )),
            _ => None,
        }
    }
}

/// Why a request was rejected.
///
/// The hot path constructs these freely — they are a plain `Copy` code, so
/// rejection costs nothing until the error is actually serialised by
/// [`BadRequest::write_wire`] (and even then the message is a static
/// string: error rendering never allocates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BadRequest {
    /// The command line contained invalid UTF-8.
    NotUtf8,
    /// The line held no command at all.
    Empty,
    /// `get` with no keys.
    GetNeedsKey,
    /// `set` missing one of `<key> <flags> <exptime> <bytes>`.
    SetNeedsFields,
    /// A numeric field of `set` did not parse.
    BadNumber,
    /// A `set` byte count so large the frame arithmetic would overflow.
    AbsurdByteCount,
    /// The `set` data block was not terminated by CRLF.
    DataUnterminated,
    /// `delete` with no key.
    DeleteNeedsKey,
    /// Unrecognised verb.
    UnknownCommand,
    /// A command line longer than [`MAX_LINE`].
    LineTooLong,
    /// A `set` frame declaring more than [`MAX_FRAME`] payload bytes.
    FrameTooLarge,
}

impl BadRequest {
    /// The human-readable reason, as a static string.
    pub fn message(self) -> &'static str {
        match self {
            BadRequest::NotUtf8 => "command line is not valid UTF-8",
            BadRequest::Empty => "empty command",
            BadRequest::GetNeedsKey => "get requires at least one key",
            BadRequest::SetNeedsFields => "set requires <key> <flags> <exptime> <bytes>",
            BadRequest::BadNumber => "bad numeric field in set",
            BadRequest::AbsurdByteCount => "set byte count is absurdly large",
            BadRequest::DataUnterminated => "data block not terminated by CRLF",
            BadRequest::DeleteNeedsKey => "delete requires a key",
            BadRequest::UnknownCommand => "unknown command",
            BadRequest::LineTooLong => "command line exceeds the 8 KiB line limit",
            BadRequest::FrameTooLarge => "object larger than the 16 MiB frame limit",
        }
    }

    /// Writes the exact `CLIENT_ERROR <msg>\r\n` wire bytes, with no
    /// intermediate allocation.
    pub fn write_wire(self, out: &mut impl BufWrite) {
        out.put(b"CLIENT_ERROR ");
        out.put(self.message().as_bytes());
        out.put(b"\r\n");
    }
}

/// The keys of a multi-key `get`, borrowed from the command line.
///
/// Iteration re-tokenises the stored line tail lazily, so a multi-key GET
/// never materialises a `Vec` of keys. Keys are yielded as byte slices but
/// are guaranteed valid UTF-8 (they are sub-slices of a validated line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetKeys<'a> {
    rest: &'a str,
}

impl<'a> GetKeys<'a> {
    /// Iterates the keys in request order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [u8]> + 'a {
        self.rest.split_ascii_whitespace().map(str::as_bytes)
    }

    /// Number of keys (re-tokenises; cheap for protocol-sized lines).
    pub fn count(&self) -> usize {
        self.rest.split_ascii_whitespace().count()
    }
}

/// A parsed request **borrowing** from the read buffer: keys and payloads
/// are slices into the bytes the connection received, so steady-state
/// parsing performs zero heap allocations.
///
/// All key slices (and the line-derived fields of every variant) are
/// guaranteed valid UTF-8 — the whole command line is validated before
/// tokenisation. `set` payloads are arbitrary bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestRef<'a> {
    /// Single-key `get`/`gets` — the dominant request, kept `Vec`-free.
    Get {
        /// The key, borrowed from the read buffer.
        key: &'a [u8],
    },
    /// Multi-key `get`/`gets`.
    GetMulti(GetKeys<'a>),
    /// `set` plus its data block.
    Set {
        /// Item key, borrowed from the read buffer.
        key: &'a [u8],
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (0 = never).
        exptime: u64,
        /// Payload bytes, borrowed from the read buffer.
        data: &'a [u8],
        /// Suppress the reply if set.
        noreply: bool,
    },
    /// `delete <key>`.
    Delete {
        /// Item key, borrowed from the read buffer.
        key: &'a [u8],
        /// Suppress the reply if set.
        noreply: bool,
    },
    /// `stats`.
    Stats,
    /// Uppercase `STATS` (live telemetry; see [`StatsSub`]).
    StatsProm(StatsSub),
    /// `version`.
    Version,
    /// `quit`.
    Quit,
}

impl RequestRef<'_> {
    /// Copies the borrowed request into the owned [`Command`] form.
    pub fn to_owned(&self) -> Command {
        let owned_key = |key: &[u8]| String::from_utf8_lossy(key).into_owned();
        match self {
            RequestRef::Get { key } => Command::Get(vec![owned_key(key)]),
            RequestRef::GetMulti(keys) => Command::Get(keys.iter().map(&owned_key).collect()),
            RequestRef::Set {
                key,
                flags,
                exptime,
                data,
                noreply,
            } => Command::Set {
                key: owned_key(key),
                flags: *flags,
                exptime: *exptime,
                data: Bytes::copy_from_slice(data),
                noreply: *noreply,
            },
            RequestRef::Delete { key, noreply } => Command::Delete {
                key: owned_key(key),
                noreply: *noreply,
            },
            RequestRef::Stats => Command::Stats,
            RequestRef::StatsProm(sub) => Command::StatsProm(*sub),
            RequestRef::Version => Command::Version,
            RequestRef::Quit => Command::Quit,
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// One `VALUE` block per hit followed by `END`.
    Values(Vec<(String, u32, Bytes)>),
    /// `STORED`.
    Stored,
    /// `NOT_STORED`.
    NotStored,
    /// `DELETED`.
    Deleted,
    /// `NOT_FOUND`.
    NotFound,
    /// `STAT` lines followed by `END`.
    Stats(Vec<(String, String)>),
    /// Pre-rendered reply bytes, written verbatim (the owned-path carrier
    /// for `STATS` telemetry text, which is rendered rather than built
    /// from variants).
    Raw(Bytes),
    /// `VERSION <x>`.
    Version(String),
    /// `ERROR` (unknown command).
    Error,
    /// `CLIENT_ERROR <msg>`.
    ClientError(String),
}

/// Writes `n` in decimal with no formatting machinery (a 20-byte stack
/// buffer covers `u64::MAX`).
fn put_decimal(out: &mut impl BufWrite, mut n: u64) {
    let mut tmp = [0_u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.put(&tmp[i..]);
}

/// Writes a `VALUE <key> <flags> <bytes>\r\n` header straight into `out`
/// with no intermediate buffer — the hot-path GET reply header.
pub fn write_value_header(out: &mut impl BufWrite, key: &[u8], flags: u32, len: usize) {
    out.put(b"VALUE ");
    out.put(key);
    out.put(b" ");
    put_decimal(out, u64::from(flags));
    out.put(b" ");
    put_decimal(out, len as u64);
    out.put(b"\r\n");
}

impl Response {
    /// Serialises the response directly into `out`, with no intermediate
    /// per-response buffer. Payloads queue as shared [`Bytes`] segments
    /// when large (see [`BufWrite::put_shared`]), so a big cached value is
    /// never copied on its way to the socket.
    pub fn write_to(&self, out: &mut impl BufWrite) {
        match self {
            Response::Values(values) => {
                for (key, flags, data) in values {
                    write_value_header(out, key.as_bytes(), *flags, data.len());
                    out.put_shared(data.clone());
                    out.put(b"\r\n");
                }
                out.put(b"END\r\n");
            }
            Response::Stored => out.put(b"STORED\r\n"),
            Response::NotStored => out.put(b"NOT_STORED\r\n"),
            Response::Deleted => out.put(b"DELETED\r\n"),
            Response::NotFound => out.put(b"NOT_FOUND\r\n"),
            Response::Stats(stats) => {
                for (name, value) in stats {
                    out.put(b"STAT ");
                    out.put(name.as_bytes());
                    out.put(b" ");
                    out.put(value.as_bytes());
                    out.put(b"\r\n");
                }
                out.put(b"END\r\n");
            }
            Response::Raw(bytes) => out.put_shared(bytes.clone()),
            Response::Version(v) => {
                out.put(b"VERSION ");
                out.put(v.as_bytes());
                out.put(b"\r\n");
            }
            Response::Error => out.put(b"ERROR\r\n"),
            Response::ClientError(msg) => {
                out.put(b"CLIENT_ERROR ");
                out.put(msg.as_bytes());
                out.put(b"\r\n");
            }
        }
    }

    /// Serialises the response into a fresh buffer ([`Response::write_to`]
    /// is the allocation-free primitive this wraps).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out);
        out
    }
}

/// The outcome of attempting to parse one borrowed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefOutcome<'a> {
    /// A complete request was parsed; `consumed` bytes should be drained.
    Complete {
        /// The parsed request, borrowing from the input buffer.
        request: RequestRef<'a>,
        /// Number of bytes consumed from the front of the buffer.
        consumed: usize,
    },
    /// More bytes are needed before a request can be parsed.
    Incomplete,
    /// The buffer starts with a malformed command; `consumed` bytes (up to
    /// and including the offending line) should be drained and the error
    /// reported to the client.
    Invalid {
        /// Number of bytes to drain.
        consumed: usize,
        /// Rejection reason (rendered lazily; see [`BadRequest`]).
        error: BadRequest,
    },
}

/// Attempts to parse one request from the front of `buf`, borrowing keys
/// and payloads from it. This is the single grammar implementation — the
/// owned [`parse_command`] wraps it.
pub fn parse_request_ref(buf: &[u8]) -> RefOutcome<'_> {
    let Some(line_end) = find_crlf(buf) else {
        return RefOutcome::Incomplete;
    };
    let after_line = line_end + 2;
    let Ok(line) = std::str::from_utf8(&buf[..line_end]) else {
        return RefOutcome::Invalid {
            consumed: after_line,
            error: BadRequest::NotUtf8,
        };
    };
    let trimmed = line.trim_start_matches(|c: char| c.is_ascii_whitespace());
    if trimmed.is_empty() {
        return RefOutcome::Invalid {
            consumed: after_line,
            error: BadRequest::Empty,
        };
    }
    let verb_end = trimmed
        .find(|c: char| c.is_ascii_whitespace())
        .unwrap_or(trimmed.len());
    let (verb, rest) = trimmed.split_at(verb_end);

    match verb {
        "get" | "gets" => {
            let mut keys = rest.split_ascii_whitespace();
            let Some(first) = keys.next() else {
                return RefOutcome::Invalid {
                    consumed: after_line,
                    error: BadRequest::GetNeedsKey,
                };
            };
            let request = if keys.next().is_none() {
                RequestRef::Get {
                    key: first.as_bytes(),
                }
            } else {
                RequestRef::GetMulti(GetKeys { rest })
            };
            RefOutcome::Complete {
                request,
                consumed: after_line,
            }
        }
        "set" => {
            let mut parts = rest.split_ascii_whitespace();
            let (Some(key), Some(flags), Some(exptime), Some(bytes)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return RefOutcome::Invalid {
                    consumed: after_line,
                    error: BadRequest::SetNeedsFields,
                };
            };
            let noreply = matches!(parts.next(), Some("noreply"));
            let (Ok(flags), Ok(exptime), Ok(nbytes)) = (
                flags.parse::<u32>(),
                exptime.parse::<u64>(),
                bytes.parse::<usize>(),
            ) else {
                return RefOutcome::Invalid {
                    consumed: after_line,
                    error: BadRequest::BadNumber,
                };
            };
            // The data block is <bytes> bytes followed by \r\n. A byte
            // count near usize::MAX would overflow the frame arithmetic;
            // nothing legitimate comes within orders of magnitude of it.
            let Some(needed) = after_line
                .checked_add(nbytes)
                .and_then(|n| n.checked_add(2))
            else {
                return RefOutcome::Invalid {
                    consumed: after_line,
                    error: BadRequest::AbsurdByteCount,
                };
            };
            if buf.len() < needed {
                return RefOutcome::Incomplete;
            }
            if &buf[after_line + nbytes..needed] != b"\r\n" {
                return RefOutcome::Invalid {
                    consumed: needed,
                    error: BadRequest::DataUnterminated,
                };
            }
            RefOutcome::Complete {
                request: RequestRef::Set {
                    key: key.as_bytes(),
                    flags,
                    exptime,
                    data: &buf[after_line..after_line + nbytes],
                    noreply,
                },
                consumed: needed,
            }
        }
        "delete" => {
            let mut parts = rest.split_ascii_whitespace();
            let Some(key) = parts.next() else {
                return RefOutcome::Invalid {
                    consumed: after_line,
                    error: BadRequest::DeleteNeedsKey,
                };
            };
            let noreply = matches!(parts.next(), Some("noreply"));
            RefOutcome::Complete {
                request: RequestRef::Delete {
                    key: key.as_bytes(),
                    noreply,
                },
                consumed: after_line,
            }
        }
        "stats" => RefOutcome::Complete {
            request: RequestRef::Stats,
            consumed: after_line,
        },
        "STATS" => {
            let mut parts = rest.split_ascii_whitespace();
            let sub = match (parts.next(), parts.next(), parts.next()) {
                (None, _, _) => Some(StatsSub::Render),
                (Some("RESET"), None, _) => Some(StatsSub::Reset),
                (Some("TRACE"), None, _) => Some(StatsSub::Trace(None)),
                (Some("TRACE"), Some(n), None) => n.parse().ok().map(|n| StatsSub::Trace(Some(n))),
                (Some("SLOW"), None, _) => Some(StatsSub::Slow),
                (Some("JSON"), None, _) => Some(StatsSub::Json),
                (Some("WORKER"), Some(n), None) => n.parse().ok().map(StatsSub::Worker),
                _ => None,
            };
            match sub {
                Some(sub) => RefOutcome::Complete {
                    request: RequestRef::StatsProm(sub),
                    consumed: after_line,
                },
                None => RefOutcome::Invalid {
                    consumed: after_line,
                    error: BadRequest::UnknownCommand,
                },
            }
        }
        "version" => RefOutcome::Complete {
            request: RequestRef::Version,
            consumed: after_line,
        },
        "quit" => RefOutcome::Complete {
            request: RequestRef::Quit,
            consumed: after_line,
        },
        _ => RefOutcome::Invalid {
            consumed: after_line,
            error: BadRequest::UnknownCommand,
        },
    }
}

/// The result of attempting to parse one command from the buffer (owned
/// form; see [`parse_request_ref`] for the underlying grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A complete command was parsed; `consumed` bytes should be drained.
    Complete {
        /// The parsed command.
        command: Command,
        /// Number of bytes consumed from the front of the buffer.
        consumed: usize,
    },
    /// More bytes are needed before a command can be parsed.
    Incomplete,
    /// The buffer starts with a malformed command; `consumed` bytes (up to
    /// and including the offending line) should be drained and the message
    /// reported to the client.
    Invalid {
        /// Number of bytes to drain.
        consumed: usize,
        /// Human-readable reason.
        reason: String,
    },
}

/// Attempts to parse one command from the front of `buf`, copying it into
/// the owned [`Command`] form.
pub fn parse_command(buf: &[u8]) -> ParseOutcome {
    match parse_request_ref(buf) {
        RefOutcome::Complete { request, consumed } => ParseOutcome::Complete {
            command: request.to_owned(),
            consumed,
        },
        RefOutcome::Incomplete => ParseOutcome::Incomplete,
        RefOutcome::Invalid { consumed, error } => ParseOutcome::Invalid {
            consumed,
            reason: error.message().to_string(),
        },
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// Longest command line the decoder accepts before declaring the stream
/// malformed (memcached applies the same defence).
pub const MAX_LINE: usize = 8 * 1024;

/// Largest complete frame (command line + data block) the decoder buffers.
/// A `set` declaring more is rejected and its payload swallowed as it
/// arrives, without ever holding it in memory.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// One step of [`RefDecoder::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A complete request, borrowing from the presented buffer.
    Request(RequestRef<'a>),
    /// Malformed input; report the error and keep stepping (the offending
    /// bytes are accounted for in the step's `consumed`).
    Bad(BadRequest),
    /// No complete request available — feed more bytes, then step again.
    NeedMore,
}

/// The borrowed-decoding counterpart of [`RequestDecoder`]: the caller
/// keeps ownership of the read buffer (typically the connection's input
/// buffer) and the decoder holds only the defensive *skip* state —
/// bytes of an abandoned oversized frame, or an overlong line being
/// discarded up to its eventual CRLF.
///
/// Each [`RefDecoder::step`] consumes from the front of the presented
/// slice and reports how many bytes it used; the caller advances its
/// offset, handles the decoded request **while it still borrows the
/// buffer**, and drains the consumed prefix when the batch is done:
///
/// ```
/// use rp_kvcache::protocol::{Decoded, RefDecoder, RequestRef};
///
/// let mut input: Vec<u8> = b"get hot-key\r\nversion\r\nqu".to_vec();
/// let mut decoder = RefDecoder::new();
/// let mut offset = 0;
/// loop {
///     let (used, decoded) = decoder.step(&input[offset..]);
///     offset += used;
///     match decoded {
///         Decoded::Request(RequestRef::Get { key }) => assert_eq!(key, b"hot-key"),
///         Decoded::Request(request) => assert_eq!(request, RequestRef::Version),
///         Decoded::Bad(error) => panic!("{}", error.message()),
///         Decoded::NeedMore => break,
///     }
/// }
/// input.drain(..offset); // "qu" stays buffered for the next read
/// assert_eq!(input, b"qu");
/// ```
#[derive(Debug, Default)]
pub struct RefDecoder {
    /// Bytes of an abandoned oversized frame still to swallow.
    skip: usize,
    /// When set, discard until the next CRLF (oversized command line).
    skip_line: bool,
}

impl RefDecoder {
    /// Creates a decoder with no pending skip state.
    pub fn new() -> RefDecoder {
        RefDecoder::default()
    }

    /// Decodes the next request from the front of `buf`, returning how many
    /// bytes were consumed alongside the outcome. Defensive limits match
    /// [`RequestDecoder`]: an overlong line or oversized `set` frame yields
    /// one [`Decoded::Bad`] and the offending bytes are discarded as they
    /// stream through, without being buffered.
    pub fn step<'a>(&mut self, buf: &'a [u8]) -> (usize, Decoded<'a>) {
        let mut consumed = 0;
        // Swallow the remainder of an abandoned oversized frame.
        if self.skip > 0 {
            let n = self.skip.min(buf.len());
            consumed += n;
            self.skip -= n;
            if self.skip > 0 {
                return (consumed, Decoded::NeedMore);
            }
        }
        // Discard an overlong line up to its (eventual) CRLF.
        if self.skip_line {
            match find_crlf(&buf[consumed..]) {
                Some(pos) => {
                    consumed += pos + 2;
                    self.skip_line = false;
                }
                None => {
                    // Keep a trailing '\r': its '\n' may be next.
                    let rest = &buf[consumed..];
                    let keep = usize::from(rest.last() == Some(&b'\r'));
                    consumed += rest.len() - keep;
                    return (consumed, Decoded::NeedMore);
                }
            }
        }
        let rest = &buf[consumed..];
        match parse_request_ref(rest) {
            RefOutcome::Complete {
                request,
                consumed: n,
            } => (consumed + n, Decoded::Request(request)),
            RefOutcome::Invalid { consumed: n, error } => (consumed + n, Decoded::Bad(error)),
            RefOutcome::Incomplete => match find_crlf(rest) {
                None if rest.len() > MAX_LINE => {
                    self.skip_line = true;
                    (consumed, Decoded::Bad(BadRequest::LineTooLong))
                }
                Some(line_end) => {
                    // A complete line that still parses Incomplete is a
                    // `set` waiting for its data block; bound what we are
                    // willing to buffer for it.
                    match set_frame_len(&rest[..line_end], line_end) {
                        Some(total) if total > MAX_FRAME => {
                            self.skip = total;
                            (consumed, Decoded::Bad(BadRequest::FrameTooLarge))
                        }
                        _ => (consumed, Decoded::NeedMore),
                    }
                }
                None => (consumed, Decoded::NeedMore),
            },
        }
    }
}

/// One request produced by [`RequestDecoder::next`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedRequest {
    /// A well-formed command.
    Command(Command),
    /// A malformed command; the offending bytes have been discarded and
    /// `reason` should be reported to the client as `CLIENT_ERROR`.
    Invalid {
        /// Human-readable reason.
        reason: String,
    },
}

/// A stateful, fully incremental protocol decoder (owned form).
///
/// [`parse_command`] is stateless: callers re-present the whole buffer
/// until a frame completes. `RequestDecoder` owns the buffer between
/// reads — bytes can arrive one at a time, split anywhere (mid-verb,
/// mid-CRLF, mid-data-block), across any number of [`RequestDecoder::feed`]
/// calls — and adds the defensive limits a network-facing server needs:
///
/// * command lines longer than [`MAX_LINE`] produce one `Invalid` and the
///   rest of the line is discarded as it streams in;
/// * `set` frames declaring more than [`MAX_FRAME`] payload bytes produce
///   one `Invalid` and the payload is swallowed without being buffered.
///
/// The event-loop server decodes with the borrowed [`RefDecoder`] instead
/// (same grammar, same limits, zero copies); this owned decoder serves the
/// threaded server and anything that wants `String`-keyed [`Command`]s.
///
/// ```
/// use rp_kvcache::protocol::{Command, DecodedRequest, RequestDecoder};
///
/// let mut decoder = RequestDecoder::new();
/// // A pipelined stream, fed one byte at a time.
/// for &b in b"version\r\nget k\r\n" {
///     decoder.feed(&[b]);
/// }
/// assert_eq!(decoder.next(), Some(DecodedRequest::Command(Command::Version)));
/// assert_eq!(
///     decoder.next(),
///     Some(DecodedRequest::Command(Command::Get(vec!["k".into()])))
/// );
/// assert_eq!(decoder.next(), None); // needs more bytes
/// ```
#[derive(Debug, Default)]
pub struct RequestDecoder {
    buf: Vec<u8>,
    inner: RefDecoder,
}

impl RequestDecoder {
    /// Creates an empty decoder.
    pub fn new() -> RequestDecoder {
        RequestDecoder::default()
    }

    /// Appends raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// [`RequestDecoder::feed`] that takes ownership of `input`'s contents
    /// (leaving it empty), avoiding a copy when the decoder's own buffer is
    /// empty — the common case for a well-behaved client.
    pub fn absorb(&mut self, input: &mut Vec<u8>) {
        if self.buf.is_empty() {
            std::mem::swap(&mut self.buf, input);
        } else {
            self.buf.extend_from_slice(input);
            input.clear();
        }
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// [`Iterator::next`] extracts the next complete request, or `None` if
/// more bytes are needed — the iterator is *resumable*: after another
/// [`RequestDecoder::feed`] it may yield again. Typical use drains every
/// pipelined request that has fully arrived after each socket read:
///
/// ```
/// # use rp_kvcache::protocol::{DecodedRequest, RequestDecoder};
/// # fn handle(_r: DecodedRequest) {}
/// # let mut decoder = RequestDecoder::new();
/// decoder.feed(b"stats\r\nversion\r\nqu");
/// for request in &mut decoder {
///     handle(request); // Stats, then Version; "qu" stays buffered
/// }
/// # assert_eq!(decoder.buffered(), 2);
/// ```
impl Iterator for RequestDecoder {
    type Item = DecodedRequest;

    fn next(&mut self) -> Option<DecodedRequest> {
        loop {
            let (consumed, decoded) = {
                let (consumed, decoded) = self.inner.step(&self.buf);
                // Copy out of the borrow before draining.
                let decoded = match decoded {
                    Decoded::Request(request) => Some(DecodedRequest::Command(request.to_owned())),
                    Decoded::Bad(error) => Some(DecodedRequest::Invalid {
                        reason: error.message().to_string(),
                    }),
                    Decoded::NeedMore => None,
                };
                (consumed, decoded)
            };
            self.buf.drain(..consumed);
            match decoded {
                Some(request) => return Some(request),
                None if consumed > 0 && !self.buf.is_empty() => continue,
                None => return None,
            }
        }
    }
}

/// For a complete `set` command line, the total frame length (line + CRLF +
/// data block + CRLF). `None` for any other line, or on overflow (which
/// [`parse_request_ref`] has already rejected as `Invalid` by then).
fn set_frame_len(line: &[u8], line_end: usize) -> Option<usize> {
    let line = std::str::from_utf8(line).ok()?;
    let mut parts = line.split_ascii_whitespace();
    if parts.next() != Some("set") {
        return None;
    }
    let nbytes: usize = parts.nth(3)?.parse().ok()?;
    line_end.checked_add(2)?.checked_add(nbytes)?.checked_add(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Command, usize) {
        match parse_command(buf) {
            ParseOutcome::Complete { command, consumed } => (command, consumed),
            other => panic!("expected complete command, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_multiple_keys() {
        let (cmd, consumed) = complete(b"get a bb ccc\r\n");
        assert_eq!(
            cmd,
            Command::Get(vec!["a".into(), "bb".into(), "ccc".into()])
        );
        assert_eq!(consumed, 14);
    }

    #[test]
    fn parses_set_with_data_block() {
        let (cmd, consumed) = complete(b"set key 7 0 5\r\nhello\r\nget x\r\n");
        match cmd {
            Command::Set {
                key,
                flags,
                exptime,
                data,
                noreply,
            } => {
                assert_eq!(key, "key");
                assert_eq!(flags, 7);
                assert_eq!(exptime, 0);
                assert_eq!(&data[..], b"hello");
                assert!(!noreply);
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert_eq!(consumed, b"set key 7 0 5\r\nhello\r\n".len());
    }

    #[test]
    fn set_with_binary_payload_and_noreply() {
        let mut buf = b"set k 0 0 3 noreply\r\n".to_vec();
        buf.extend_from_slice(&[0, 255, 10]);
        buf.extend_from_slice(b"\r\n");
        let (cmd, _) = complete(&buf);
        match cmd {
            Command::Set { data, noreply, .. } => {
                assert_eq!(&data[..], &[0, 255, 10]);
                assert!(noreply);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn incomplete_inputs_ask_for_more() {
        assert_eq!(parse_command(b"get a"), ParseOutcome::Incomplete);
        assert_eq!(
            parse_command(b"set k 0 0 5\r\nhel"),
            ParseOutcome::Incomplete
        );
        assert_eq!(parse_command(b""), ParseOutcome::Incomplete);
    }

    #[test]
    fn malformed_commands_are_rejected_with_reason() {
        match parse_command(b"set k x 0 5\r\n") {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("numeric")),
            other => panic!("unexpected {other:?}"),
        }
        match parse_command(b"bogus\r\n") {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("unknown")),
            other => panic!("unexpected {other:?}"),
        }
        match parse_command(b"get\r\n") {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("at least one key")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_stats_version_quit_parse() {
        assert_eq!(
            complete(b"delete k noreply\r\n").0,
            Command::Delete {
                key: "k".into(),
                noreply: true
            }
        );
        assert_eq!(complete(b"stats\r\n").0, Command::Stats);
        assert_eq!(complete(b"version\r\n").0, Command::Version);
        assert_eq!(complete(b"quit\r\n").0, Command::Quit);
    }

    #[test]
    fn uppercase_stats_telemetry_verbs_parse() {
        assert_eq!(
            complete(b"STATS\r\n").0,
            Command::StatsProm(StatsSub::Render)
        );
        assert_eq!(
            complete(b"STATS RESET\r\n").0,
            Command::StatsProm(StatsSub::Reset)
        );
        assert_eq!(
            complete(b"STATS TRACE\r\n").0,
            Command::StatsProm(StatsSub::Trace(None))
        );
        assert_eq!(
            complete(b"STATS TRACE 25\r\n").0,
            Command::StatsProm(StatsSub::Trace(Some(25)))
        );
        assert_eq!(
            complete(b"STATS SLOW\r\n").0,
            Command::StatsProm(StatsSub::Slow)
        );
        assert_eq!(
            complete(b"STATS JSON\r\n").0,
            Command::StatsProm(StatsSub::Json)
        );
        assert_eq!(
            complete(b"STATS WORKER 3\r\n").0,
            Command::StatsProm(StatsSub::Worker(3))
        );
        // Lowercase `stats` stays the classic memcached command — the verbs
        // are case-sensitive and must not shadow each other.
        assert_eq!(complete(b"stats\r\n").0, Command::Stats);
        // Unknown or lowercase subcommands are rejected, not guessed at.
        for junk in [
            &b"STATS bogus\r\n"[..],
            b"STATS reset\r\n",
            b"STATS RESET now\r\n",
            b"STATS TRACE x\r\n",
            b"STATS TRACE 1 2\r\n",
            b"STATS SLOW 5\r\n",
            b"STATS JSON pretty\r\n",
            b"STATS WORKER\r\n",
            b"STATS WORKER x\r\n",
            b"STATS WORKER 1 2\r\n",
        ] {
            match parse_command(junk) {
                ParseOutcome::Invalid { consumed, .. } => assert_eq!(consumed, junk.len()),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn borrowed_requests_borrow_from_the_buffer() {
        let buf = b"get hot\r\n".to_vec();
        match parse_request_ref(&buf) {
            RefOutcome::Complete {
                request: RequestRef::Get { key },
                consumed,
            } => {
                assert_eq!(key, b"hot");
                assert_eq!(consumed, buf.len());
                // The key is a sub-slice of the input, not a copy.
                let buf_range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
                assert!(buf_range.contains(&(key.as_ptr() as usize)));
            }
            other => panic!("unexpected {other:?}"),
        }

        let buf = b"set k 1 0 3\r\nxyz\r\n".to_vec();
        match parse_request_ref(&buf) {
            RefOutcome::Complete {
                request: RequestRef::Set { key, data, .. },
                ..
            } => {
                assert_eq!(key, b"k");
                assert_eq!(data, b"xyz");
                let buf_range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
                assert!(buf_range.contains(&(data.as_ptr() as usize)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_key_get_iterates_lazily() {
        match parse_request_ref(b"gets a  bb\tccc\r\n") {
            RefOutcome::Complete {
                request: RequestRef::GetMulti(keys),
                ..
            } => {
                assert_eq!(keys.count(), 3);
                let collected: Vec<&[u8]> = keys.iter().collect();
                assert_eq!(collected, vec![&b"a"[..], &b"bb"[..], &b"ccc"[..]]);
                // Iteration is repeatable (the response writer re-walks).
                assert_eq!(keys.iter().count(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn borrowed_and_owned_forms_agree() {
        let streams: [&[u8]; 6] = [
            b"get one\r\n",
            b"gets a b c\r\n",
            b"set k 7 60 5 noreply\r\nhello\r\n",
            b"delete gone\r\n",
            b"stats\r\n",
            b"quit\r\n",
        ];
        for stream in streams {
            let owned = match parse_command(stream) {
                ParseOutcome::Complete { command, consumed } => (command, consumed),
                other => panic!("owned parse failed: {other:?}"),
            };
            let borrowed = match parse_request_ref(stream) {
                RefOutcome::Complete { request, consumed } => (request.to_owned(), consumed),
                other => panic!("borrowed parse failed: {other:?}"),
            };
            assert_eq!(owned, borrowed);
        }
    }

    #[test]
    fn client_error_wire_bytes_are_exact_and_static() {
        let mut out = Vec::new();
        BadRequest::Empty.write_wire(&mut out);
        assert_eq!(out, b"CLIENT_ERROR empty command\r\n");

        out.clear();
        BadRequest::UnknownCommand.write_wire(&mut out);
        assert_eq!(out, b"CLIENT_ERROR unknown command\r\n");

        out.clear();
        BadRequest::LineTooLong.write_wire(&mut out);
        assert_eq!(
            out,
            b"CLIENT_ERROR command line exceeds the 8 KiB line limit\r\n"
        );

        // The legacy owned path produces the same bytes for the same error.
        assert_eq!(
            Response::ClientError(BadRequest::UnknownCommand.message().to_string()).to_bytes(),
            b"CLIENT_ERROR unknown command\r\n"
        );
    }

    #[test]
    fn value_header_writes_exact_wire_bytes() {
        let mut out = Vec::new();
        write_value_header(&mut out, b"k", 5, 3);
        assert_eq!(out, b"VALUE k 5 3\r\n");
        out.clear();
        write_value_header(&mut out, b"long-key:123", 0, 1048576);
        assert_eq!(out, b"VALUE long-key:123 0 1048576\r\n");
        out.clear();
        write_value_header(&mut out, b"m", u32::MAX, 0);
        assert_eq!(out, b"VALUE m 4294967295 0\r\n");
    }

    #[test]
    fn responses_serialize_to_protocol_text() {
        let values = Response::Values(vec![("k".into(), 5, Bytes::from_static(b"abc"))]);
        assert_eq!(values.to_bytes(), b"VALUE k 5 3\r\nabc\r\nEND\r\n");
        assert_eq!(Response::Stored.to_bytes(), b"STORED\r\n");
        assert_eq!(Response::NotFound.to_bytes(), b"NOT_FOUND\r\n");
        assert_eq!(
            Response::Version("0.1".into()).to_bytes(),
            b"VERSION 0.1\r\n"
        );
        let stats = Response::Stats(vec![("get_hits".into(), "3".into())]);
        assert_eq!(stats.to_bytes(), b"STAT get_hits 3\r\nEND\r\n");
        assert_eq!(
            Response::ClientError("oops".into()).to_bytes(),
            b"CLIENT_ERROR oops\r\n"
        );
    }

    fn decode_all(decoder: &mut RequestDecoder) -> Vec<DecodedRequest> {
        let mut out = Vec::new();
        for req in decoder.by_ref() {
            out.push(req);
        }
        out
    }

    #[test]
    fn decoder_handles_byte_at_a_time_streams() {
        let stream = b"set k 1 0 5\r\nhello\r\nget k missing\r\ndelete k\r\nquit\r\n";
        let mut decoder = RequestDecoder::new();
        let mut decoded = Vec::new();
        for &b in stream.iter() {
            decoder.feed(&[b]);
            decoded.extend(decode_all(&mut decoder));
        }
        assert_eq!(decoded.len(), 4);
        assert!(matches!(
            &decoded[0],
            DecodedRequest::Command(Command::Set { key, .. }) if key == "k"
        ));
        assert_eq!(
            decoded[1],
            DecodedRequest::Command(Command::Get(vec!["k".into(), "missing".into()]))
        );
        assert!(matches!(
            &decoded[2],
            DecodedRequest::Command(Command::Delete { key, .. }) if key == "k"
        ));
        assert_eq!(decoded[3], DecodedRequest::Command(Command::Quit));
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn ref_decoder_handles_byte_at_a_time_streams() {
        let stream = b"set k 1 0 5\r\nhello\r\nget k\r\nquit\r\n";
        let mut decoder = RefDecoder::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut decoded = 0;
        for &b in stream.iter() {
            buf.push(b);
            let mut offset = 0;
            loop {
                let (used, step) = decoder.step(&buf[offset..]);
                offset += used;
                match step {
                    Decoded::Request(request) => {
                        match decoded {
                            0 => assert!(matches!(
                                request,
                                RequestRef::Set {
                                    key: b"k",
                                    data: b"hello",
                                    ..
                                }
                            )),
                            1 => assert!(matches!(request, RequestRef::Get { key: b"k" })),
                            2 => assert_eq!(request, RequestRef::Quit),
                            n => panic!("unexpected request #{n}: {request:?}"),
                        }
                        decoded += 1;
                    }
                    Decoded::Bad(error) => panic!("{}", error.message()),
                    Decoded::NeedMore => break,
                }
            }
            buf.drain(..offset);
        }
        assert_eq!(decoded, 3);
        assert!(buf.is_empty());
    }

    #[test]
    fn decoder_absorb_moves_bytes_out_of_the_input() {
        let mut decoder = RequestDecoder::new();
        let mut input = b"version\r\nver".to_vec();
        decoder.absorb(&mut input);
        assert!(input.is_empty());
        assert_eq!(
            decoder.next(),
            Some(DecodedRequest::Command(Command::Version))
        );
        assert_eq!(decoder.next(), None);
        let mut rest = b"sion\r\n".to_vec();
        decoder.absorb(&mut rest);
        assert_eq!(
            decoder.next(),
            Some(DecodedRequest::Command(Command::Version))
        );
    }

    #[test]
    fn decoder_rejects_and_skips_overlong_lines() {
        let mut decoder = RequestDecoder::new();
        // An endless line, fed in chunks: exactly one Invalid, bounded memory.
        let chunk = vec![b'a'; 4096];
        let mut invalids = 0;
        for _ in 0..16 {
            decoder.feed(&chunk);
            for req in decode_all(&mut decoder) {
                match req {
                    DecodedRequest::Invalid { reason } => {
                        invalids += 1;
                        assert!(reason.contains("exceeds"));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert!(decoder.buffered() <= MAX_LINE + chunk.len() + 2);
        }
        assert_eq!(invalids, 1);
        // The stream recovers at the next CRLF.
        decoder.feed(b"\r\nstats\r\n");
        assert_eq!(
            decode_all(&mut decoder),
            vec![DecodedRequest::Command(Command::Stats)]
        );
    }

    #[test]
    fn decoder_swallows_oversized_set_payloads_without_buffering() {
        let huge = MAX_FRAME + 100;
        let mut decoder = RequestDecoder::new();
        decoder.feed(format!("set big 0 0 {huge}\r\n").as_bytes());
        match decoder.next() {
            Some(DecodedRequest::Invalid { reason }) => assert!(reason.contains("larger")),
            other => panic!("unexpected {other:?}"),
        }
        // Stream the payload through; the decoder must not accumulate it.
        let chunk = vec![b'x'; 1 << 20];
        let mut sent = 0;
        while sent < huge {
            let n = chunk.len().min(huge - sent);
            decoder.feed(&chunk[..n]);
            assert_eq!(decoder.next(), None);
            assert!(decoder.buffered() < 2 * chunk.len());
            sent += n;
        }
        decoder.feed(b"\r\nversion\r\n");
        assert_eq!(
            decode_all(&mut decoder),
            vec![DecodedRequest::Command(Command::Version)]
        );
    }

    #[test]
    fn absurd_set_byte_counts_are_rejected_without_panicking() {
        // A byte count near usize::MAX would overflow the frame arithmetic
        // (`after_line + nbytes + 2`) and panic the worker thread.
        let line = format!("set k 0 0 {}\r\n", usize::MAX - 2);
        match parse_command(line.as_bytes()) {
            ParseOutcome::Invalid { reason, .. } => assert!(reason.contains("absurdly")),
            other => panic!("unexpected {other:?}"),
        }
        let mut decoder = RequestDecoder::new();
        decoder.feed(line.as_bytes());
        assert!(matches!(
            decoder.next(),
            Some(DecodedRequest::Invalid { .. })
        ));
        // The stream recovers at the next command.
        decoder.feed(b"version\r\n");
        assert_eq!(
            decoder.next(),
            Some(DecodedRequest::Command(Command::Version))
        );
    }

    #[test]
    fn decoder_split_crlf_while_skipping_line() {
        let mut decoder = RequestDecoder::new();
        let mut junk = vec![b'j'; MAX_LINE + 1];
        decoder.feed(&junk);
        assert!(matches!(
            decoder.next(),
            Some(DecodedRequest::Invalid { .. })
        ));
        // CRLF split across feeds while in skip-line mode.
        junk.clear();
        decoder.feed(b"more junk\r");
        assert_eq!(decoder.next(), None);
        decoder.feed(b"\nquit\r\n");
        assert_eq!(
            decode_all(&mut decoder),
            vec![DecodedRequest::Command(Command::Quit)]
        );
    }

    #[test]
    fn set_command_builds_an_item() {
        let (cmd, _) = complete(b"set k 9 60 2\r\nhi\r\n");
        let item = cmd.to_item().unwrap();
        assert_eq!(item.flags, 9);
        assert!(item.expires_at.is_some());
        assert_eq!(&item.data[..], b"hi");
        assert!(Command::Quit.to_item().is_none());
    }
}
