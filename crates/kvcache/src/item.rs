//! Stored values.

use std::time::{Duration, Instant};

use bytes::Bytes;

/// A value stored in the cache: opaque client flags, an optional expiry
/// deadline and the payload bytes.
///
/// Cloning an `Item` is cheap: the payload is reference-counted
/// ([`Bytes`]), which is what lets the relativistic GET fast path copy the
/// value out of the read-side critical section without copying the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Opaque client-supplied flags (returned verbatim on GET).
    pub flags: u32,
    /// Absolute expiry deadline; `None` means the item never expires.
    pub expires_at: Option<Instant>,
    /// The payload.
    pub data: Bytes,
}

impl Item {
    /// Creates an item that never expires.
    pub fn new(flags: u32, data: impl Into<Bytes>) -> Self {
        Item {
            flags,
            expires_at: None,
            data: data.into(),
        }
    }

    /// Creates an item that expires `ttl` from now; a zero `ttl` means the
    /// item never expires (memcached's `exptime 0` convention).
    pub fn with_ttl(flags: u32, data: impl Into<Bytes>, ttl: Duration) -> Self {
        Item {
            flags,
            expires_at: if ttl.is_zero() {
                None
            } else {
                Some(Instant::now() + ttl)
            },
            data: data.into(),
        }
    }

    /// Returns `true` if the item has passed its expiry deadline.
    pub fn is_expired(&self, now: Instant) -> bool {
        match self.expires_at {
            Some(deadline) => now >= deadline,
            None => false,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_item_never_expires() {
        let item = Item::new(7, "hello");
        assert_eq!(item.flags, 7);
        assert_eq!(item.len(), 5);
        assert!(!item.is_empty());
        assert!(!item.is_expired(Instant::now() + Duration::from_secs(3600)));
    }

    #[test]
    fn zero_ttl_means_no_expiry() {
        let item = Item::with_ttl(0, "x", Duration::ZERO);
        assert!(item.expires_at.is_none());
    }

    #[test]
    fn ttl_expiry_is_respected() {
        let item = Item::with_ttl(0, "x", Duration::from_millis(10));
        let deadline = item.expires_at.unwrap();
        assert!(!item.is_expired(deadline - Duration::from_millis(5)));
        assert!(item.is_expired(deadline));
        assert!(item.is_expired(deadline + Duration::from_millis(5)));
    }

    #[test]
    fn clone_shares_the_payload_allocation() {
        let item = Item::new(0, vec![1_u8; 1024]);
        let copy = item.clone();
        assert_eq!(item.data.as_ptr(), copy.data.as_ptr());
    }
}
