//! A small blocking client speaking the memcached text protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking connection to a [`crate::server::CacheServer`] (or to real
/// memcached — the protocol subset is compatible).
pub struct CacheClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl CacheClient {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(CacheClient { stream, reader })
    }

    /// Writes one entire request.
    ///
    /// Every request is pre-assembled into a single buffer before this
    /// call, so an error part-way can no longer tear a header from its
    /// payload (the old code issued three separate writes per `set`);
    /// `write_all` then guarantees the short-write/`EINTR` retry loop —
    /// it resumes partial writes, retries on `Interrupted`, and turns a
    /// zero-length write into `WriteZero` instead of spinning.
    fn send(&mut self, request: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(request)
    }

    /// Issues `set` and waits for the reply. Returns `true` when the server
    /// answered `STORED`.
    pub fn set(
        &mut self,
        key: &str,
        flags: u32,
        exptime_secs: u64,
        data: &[u8],
    ) -> std::io::Result<bool> {
        let mut request =
            format!("set {key} {flags} {exptime_secs} {}\r\n", data.len()).into_bytes();
        request.extend_from_slice(data);
        request.extend_from_slice(b"\r\n");
        self.send(&request)?;
        let line = self.read_line()?;
        Ok(line.trim_end() == "STORED")
    }

    /// Reads one `VALUE <key> <flags> <bytes>` block (header already read);
    /// returns the key and payload.
    fn read_value_block(&mut self, header: &str) -> std::io::Result<(String, Vec<u8>)> {
        let mut fields = header.split_ascii_whitespace().skip(1);
        let key = fields.next().map(str::to_string);
        let nbytes: Option<usize> = fields.nth(1).and_then(|s| s.parse().ok());
        let (Some(key), Some(nbytes)) = (key, nbytes) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad VALUE header",
            ));
        };
        let mut data = vec![0_u8; nbytes + 2];
        std::io::Read::read_exact(&mut self.reader, &mut data)?;
        data.truncate(nbytes);
        Ok((key, data))
    }

    /// Issues `get` for a single key and returns the value bytes if present.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        self.send(format!("get {key}\r\n").as_bytes())?;
        let header = self.read_line()?;
        let header = header.trim_end();
        if header == "END" {
            return Ok(None);
        }
        let (_, data) = self.read_value_block(header)?;
        // Trailing "END\r\n".
        let end = self.read_line()?;
        if end.trim_end() != "END" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "missing END after VALUE block",
            ));
        }
        Ok(Some(data))
    }

    /// Issues one multi-key `get`, returning the `(key, value)` pairs the
    /// server found (missing keys are simply absent, as in the protocol).
    pub fn get_many(&mut self, keys: &[&str]) -> std::io::Result<Vec<(String, Vec<u8>)>> {
        let mut request = String::from("get");
        for key in keys {
            request.push(' ');
            request.push_str(key);
        }
        request.push_str("\r\n");
        self.send(request.as_bytes())?;
        let mut hits = Vec::new();
        loop {
            let line = self.read_line()?;
            let line = line.trim_end();
            if line == "END" {
                return Ok(hits);
            }
            hits.push(self.read_value_block(line)?);
        }
    }

    /// Issues `delete`; returns `true` when the server answered `DELETED`.
    pub fn delete(&mut self, key: &str) -> std::io::Result<bool> {
        self.send(format!("delete {key}\r\n").as_bytes())?;
        let line = self.read_line()?;
        Ok(line.trim_end() == "DELETED")
    }

    /// Issues `version` and returns the server's version string.
    pub fn version(&mut self) -> std::io::Result<String> {
        self.send(b"version\r\n")?;
        let line = self.read_line()?;
        Ok(line.trim_end().trim_start_matches("VERSION ").to_string())
    }

    /// Issues `stats` and returns the `STAT` pairs.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, String)>> {
        self.send(b"stats\r\n")?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            let line = line.trim_end();
            if line == "END" {
                return Ok(out);
            }
            if let Some(rest) = line.strip_prefix("STAT ") {
                if let Some((name, value)) = rest.split_once(' ') {
                    out.push((name.to_string(), value.to_string()));
                }
            }
        }
    }

    /// Issues one of the uppercase `STATS` telemetry commands (`""`,
    /// `"RESET"` or `"TRACE"` as the subcommand) and returns the reply text
    /// up to (excluding) the `END` frame marker. `STATS RESET` answers a
    /// single `RESET` line instead of an `END`-framed body, so it is
    /// handled on either terminator.
    pub fn stats_text(&mut self, subcommand: &str) -> std::io::Result<String> {
        if subcommand.is_empty() {
            self.send(b"STATS\r\n")?;
        } else {
            self.send(format!("STATS {subcommand}\r\n").as_bytes())?;
        }
        let mut text = String::new();
        loop {
            let line = self.read_line()?;
            let trimmed = line.trim_end();
            if trimmed == "END" || trimmed == "RESET" {
                return Ok(text);
            }
            text.push_str(&line);
        }
    }

    /// Sends `quit`, closing the connection server-side.
    pub fn quit(&mut self) -> std::io::Result<()> {
        self.send(b"quit\r\n")
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CacheServer;
    use crate::{LockEngine, RpEngine};
    use std::sync::Arc;

    fn round_trip(engine: Arc<dyn crate::CacheEngine>) {
        let mut server = CacheServer::start(engine, 0).expect("bind");
        let mut client = CacheClient::connect(server.addr()).expect("connect");

        assert!(client.get("missing").unwrap().is_none());
        assert!(client.set("key", 5, 0, b"payload").unwrap());
        assert_eq!(client.get("key").unwrap().as_deref(), Some(&b"payload"[..]));
        assert!(client.delete("key").unwrap());
        assert!(!client.delete("key").unwrap());
        assert!(client.version().unwrap().contains("relativist"));
        let stats = client.stats().unwrap();
        assert!(stats.iter().any(|(k, _)| k == "get_hits"));
        client.quit().unwrap();
        server.shutdown();
    }

    #[test]
    fn tcp_round_trip_against_lock_engine() {
        round_trip(Arc::new(LockEngine::new()));
    }

    #[test]
    fn tcp_round_trip_against_rp_engine() {
        round_trip(Arc::new(RpEngine::new()));
    }

    #[test]
    fn binary_values_survive_the_protocol() {
        let mut server = CacheServer::start(Arc::new(RpEngine::new()), 0).unwrap();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        let payload: Vec<u8> = (0_u16..512).map(|b| (b % 256) as u8).collect();
        assert!(client.set("bin", 0, 0, &payload).unwrap());
        assert_eq!(client.get("bin").unwrap().unwrap(), payload);
        server.shutdown();
    }

    #[test]
    fn multiple_clients_share_one_server() {
        let mut server = CacheServer::start(Arc::new(RpEngine::new()), 0).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|id| {
                std::thread::spawn(move || {
                    let mut client = CacheClient::connect(addr).unwrap();
                    let key = format!("key-{id}");
                    assert!(client.set(&key, 0, 0, key.as_bytes()).unwrap());
                    assert_eq!(client.get(&key).unwrap().as_deref(), Some(key.as_bytes()));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}
