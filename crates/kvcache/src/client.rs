//! A small blocking client speaking the memcached text protocol, plus a
//! resilience wrapper ([`RetryClient`]) with per-op deadlines, reconnects
//! and bounded, seeded-jitter exponential backoff.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A blocking connection to a [`crate::server::CacheServer`] (or to real
/// memcached — the protocol subset is compatible).
pub struct CacheClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl CacheClient {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(CacheClient { stream, reader })
    }

    /// Writes one entire request.
    ///
    /// Every request is pre-assembled into a single buffer before this
    /// call, so an error part-way can no longer tear a header from its
    /// payload (the old code issued three separate writes per `set`);
    /// `write_all` then guarantees the short-write/`EINTR` retry loop —
    /// it resumes partial writes, retries on `Interrupted`, and turns a
    /// zero-length write into `WriteZero` instead of spinning.
    fn send(&mut self, request: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(request)
    }

    /// Issues `set` and waits for the reply. Returns `true` when the server
    /// answered `STORED`.
    pub fn set(
        &mut self,
        key: &str,
        flags: u32,
        exptime_secs: u64,
        data: &[u8],
    ) -> std::io::Result<bool> {
        let mut request =
            format!("set {key} {flags} {exptime_secs} {}\r\n", data.len()).into_bytes();
        request.extend_from_slice(data);
        request.extend_from_slice(b"\r\n");
        self.send(&request)?;
        let line = self.read_line()?;
        Ok(line.trim_end() == "STORED")
    }

    /// Reads one `VALUE <key> <flags> <bytes>` block (header already read);
    /// returns the key and payload.
    fn read_value_block(&mut self, header: &str) -> std::io::Result<(String, Vec<u8>)> {
        let mut fields = header.split_ascii_whitespace().skip(1);
        let key = fields.next().map(str::to_string);
        let nbytes: Option<usize> = fields.nth(1).and_then(|s| s.parse().ok());
        let (Some(key), Some(nbytes)) = (key, nbytes) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad VALUE header",
            ));
        };
        let mut data = vec![0_u8; nbytes + 2];
        std::io::Read::read_exact(&mut self.reader, &mut data)?;
        data.truncate(nbytes);
        Ok((key, data))
    }

    /// Issues `get` for a single key and returns the value bytes if present.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        self.send(format!("get {key}\r\n").as_bytes())?;
        let header = self.read_line()?;
        let header = header.trim_end();
        if header == "END" {
            return Ok(None);
        }
        let (_, data) = self.read_value_block(header)?;
        // Trailing "END\r\n".
        let end = self.read_line()?;
        if end.trim_end() != "END" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "missing END after VALUE block",
            ));
        }
        Ok(Some(data))
    }

    /// Issues one multi-key `get`, returning the `(key, value)` pairs the
    /// server found (missing keys are simply absent, as in the protocol).
    pub fn get_many(&mut self, keys: &[&str]) -> std::io::Result<Vec<(String, Vec<u8>)>> {
        let mut request = String::from("get");
        for key in keys {
            request.push(' ');
            request.push_str(key);
        }
        request.push_str("\r\n");
        self.send(request.as_bytes())?;
        let mut hits = Vec::new();
        loop {
            let line = self.read_line()?;
            let line = line.trim_end();
            if line == "END" {
                return Ok(hits);
            }
            hits.push(self.read_value_block(line)?);
        }
    }

    /// Issues `delete`; returns `true` when the server answered `DELETED`.
    pub fn delete(&mut self, key: &str) -> std::io::Result<bool> {
        self.send(format!("delete {key}\r\n").as_bytes())?;
        let line = self.read_line()?;
        Ok(line.trim_end() == "DELETED")
    }

    /// Issues `version` and returns the server's version string.
    pub fn version(&mut self) -> std::io::Result<String> {
        self.send(b"version\r\n")?;
        let line = self.read_line()?;
        Ok(line.trim_end().trim_start_matches("VERSION ").to_string())
    }

    /// Issues `stats` and returns the `STAT` pairs.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, String)>> {
        self.send(b"stats\r\n")?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            let line = line.trim_end();
            if line == "END" {
                return Ok(out);
            }
            if let Some(rest) = line.strip_prefix("STAT ") {
                if let Some((name, value)) = rest.split_once(' ') {
                    out.push((name.to_string(), value.to_string()));
                }
            }
        }
    }

    /// Issues one of the uppercase `STATS` telemetry commands (`""`,
    /// `"RESET"` or `"TRACE"` as the subcommand) and returns the reply text
    /// up to (excluding) the `END` frame marker. `STATS RESET` answers a
    /// single `RESET` line instead of an `END`-framed body, so it is
    /// handled on either terminator.
    pub fn stats_text(&mut self, subcommand: &str) -> std::io::Result<String> {
        if subcommand.is_empty() {
            self.send(b"STATS\r\n")?;
        } else {
            self.send(format!("STATS {subcommand}\r\n").as_bytes())?;
        }
        let mut text = String::new();
        loop {
            let line = self.read_line()?;
            let trimmed = line.trim_end();
            if trimmed == "END" || trimmed == "RESET" {
                return Ok(text);
            }
            text.push_str(&line);
        }
    }

    /// Sends `quit`, closing the connection server-side.
    pub fn quit(&mut self) -> std::io::Result<()> {
        self.send(b"quit\r\n")
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line)
    }
}

/// How a [`RetryClient`] retries failed operations.
///
/// Backoff is exponential (`base_backoff · 2^n`, capped at `max_backoff`)
/// with **seeded** jitter: the delay actually slept is a deterministic
/// pseudo-random fraction (50–100%) of the exponential target, so chaos
/// runs reproduce exactly while a fleet of real clients still desynchronizes
/// instead of thundering back in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (the first try included). `1` means
    /// fail fast: no retry, no reconnect.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound for any single backoff.
    pub max_backoff: Duration,
    /// Wall-clock budget for one operation across all of its attempts
    /// (connect time and backoff sleeps included). An attempt is not
    /// started once the deadline has passed.
    pub op_deadline: Duration,
    /// Seed for the jitter stream; same seed, same delays.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            op_deadline: Duration::from_secs(5),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// A fail-fast policy: one attempt, no reconnect (the `--no-reconnect`
    /// escape hatch).
    pub fn no_reconnect() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `retry` (0-based), advancing the
    /// caller's jitter stream.
    fn backoff(&self, retry: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1_u32.checked_shl(retry).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        // Jitter: sleep 50–100% of the exponential target.
        let ppm = 500_000 + (xorshift64star(rng) % 500_001);
        exp.mul_f64(ppm as f64 / 1_000_000.0)
    }
}

fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 12;
    x ^= x >> 25;
    x ^= x << 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A [`CacheClient`] that survives connection failures.
///
/// Every operation runs under the [`RetryPolicy`]: on an I/O error the
/// connection is dropped, the client backs off, reconnects and retries
/// until the attempt or deadline budget is exhausted. Semantics are
/// **at-least-once** — an errored attempt may still have been applied by
/// the server before the connection died, which is safe here because every
/// cache operation (`set`, `get`, `delete`, `stats`) is idempotent.
pub struct RetryClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: u64,
    conn: Option<CacheClient>,
    ever_connected: bool,
    reconnects: u64,
}

impl RetryClient {
    /// Creates a client for `addr`; the first connection is established
    /// lazily by the first operation (under its retry budget).
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> RetryClient {
        let rng = if policy.jitter_seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            policy.jitter_seed
        };
        RetryClient {
            addr,
            policy,
            rng,
            conn: None,
            ever_connected: false,
            reconnects: 0,
        }
    }

    /// The address this client (re)connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Times the client re-established its connection (the first connect is
    /// not counted).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Runs `op` against a live connection, reconnecting and retrying per
    /// the policy. The last error is returned once the attempt budget or
    /// the per-op deadline is exhausted.
    fn with_conn<T>(
        &mut self,
        mut op: impl FnMut(&mut CacheClient) -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        let start = Instant::now();
        let attempts = self.policy.attempts.max(1);
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = self.policy.backoff(attempt - 1, &mut self.rng);
                if start.elapsed() + delay >= self.policy.op_deadline {
                    break;
                }
                std::thread::sleep(delay);
            }
            if self.conn.is_none() {
                match CacheClient::connect(self.addr) {
                    Ok(conn) => {
                        self.conn = Some(conn);
                        if self.ever_connected {
                            self.reconnects += 1;
                        }
                        self.ever_connected = true;
                    }
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection established above");
            match op(conn) {
                Ok(value) => return Ok(value),
                Err(e) => {
                    // The stream state is unknown after any error (a reply
                    // may be half-read); reconnect rather than resynchronize.
                    self.conn = None;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "operation deadline exhausted before any attempt",
            )
        }))
    }

    /// [`CacheClient::set`] with retries.
    pub fn set(
        &mut self,
        key: &str,
        flags: u32,
        exptime_secs: u64,
        data: &[u8],
    ) -> std::io::Result<bool> {
        self.with_conn(|c| c.set(key, flags, exptime_secs, data))
    }

    /// [`CacheClient::get`] with retries.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        self.with_conn(|c| c.get(key))
    }

    /// [`CacheClient::get_many`] with retries.
    pub fn get_many(&mut self, keys: &[&str]) -> std::io::Result<Vec<(String, Vec<u8>)>> {
        self.with_conn(|c| c.get_many(keys))
    }

    /// [`CacheClient::delete`] with retries.
    pub fn delete(&mut self, key: &str) -> std::io::Result<bool> {
        self.with_conn(|c| c.delete(key))
    }

    /// [`CacheClient::version`] with retries.
    pub fn version(&mut self) -> std::io::Result<String> {
        self.with_conn(|c| c.version())
    }

    /// [`CacheClient::stats`] with retries.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, String)>> {
        self.with_conn(|c| c.stats())
    }

    /// [`CacheClient::stats_text`] with retries.
    pub fn stats_text(&mut self, subcommand: &str) -> std::io::Result<String> {
        self.with_conn(|c| c.stats_text(subcommand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CacheServer;
    use crate::{LockEngine, RpEngine};
    use std::sync::Arc;

    fn round_trip(engine: Arc<dyn crate::CacheEngine>) {
        let mut server = CacheServer::start(engine, 0).expect("bind");
        let mut client = CacheClient::connect(server.addr()).expect("connect");

        assert!(client.get("missing").unwrap().is_none());
        assert!(client.set("key", 5, 0, b"payload").unwrap());
        assert_eq!(client.get("key").unwrap().as_deref(), Some(&b"payload"[..]));
        assert!(client.delete("key").unwrap());
        assert!(!client.delete("key").unwrap());
        assert!(client.version().unwrap().contains("relativist"));
        let stats = client.stats().unwrap();
        assert!(stats.iter().any(|(k, _)| k == "get_hits"));
        client.quit().unwrap();
        server.shutdown();
    }

    #[test]
    fn tcp_round_trip_against_lock_engine() {
        round_trip(Arc::new(LockEngine::new()));
    }

    #[test]
    fn tcp_round_trip_against_rp_engine() {
        round_trip(Arc::new(RpEngine::new()));
    }

    #[test]
    fn binary_values_survive_the_protocol() {
        let mut server = CacheServer::start(Arc::new(RpEngine::new()), 0).unwrap();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        let payload: Vec<u8> = (0_u16..512).map(|b| (b % 256) as u8).collect();
        assert!(client.set("bin", 0, 0, &payload).unwrap());
        assert_eq!(client.get("bin").unwrap().unwrap(), payload);
        server.shutdown();
    }

    #[test]
    fn retry_client_reconnects_across_a_server_restart() {
        let mut server = CacheServer::start(Arc::new(RpEngine::new()), 0).unwrap();
        let addr = server.addr();
        let mut client = RetryClient::new(
            addr,
            RetryPolicy {
                base_backoff: Duration::from_millis(5),
                ..RetryPolicy::default()
            },
        );
        assert!(client.set("sticky", 0, 0, b"before").unwrap());
        server.shutdown();
        // `shutdown` stops the accept loop immediately, but an existing
        // connection thread lives until its next 200 ms read-timeout poll;
        // wait it out so the retried ops below cannot slip into the dying
        // server.
        std::thread::sleep(Duration::from_millis(600));

        // Restart on the same port (std listeners set SO_REUSEADDR); the
        // next operation must transparently reconnect. The value is gone —
        // it lived in the old process's engine — but the *operation*
        // succeeds, which is the property under test.
        let mut server = CacheServer::start(Arc::new(RpEngine::new()), addr.port()).unwrap();
        assert!(client.set("sticky", 0, 0, b"after").unwrap());
        assert_eq!(
            client.get("sticky").unwrap().as_deref(),
            Some(&b"after"[..])
        );
        assert!(
            client.reconnects() >= 1,
            "the restart must have forced a reconnect"
        );
        server.shutdown();
    }

    #[test]
    fn no_reconnect_policy_fails_fast() {
        let mut server = CacheServer::start(Arc::new(RpEngine::new()), 0).unwrap();
        let addr = server.addr();
        let mut client = RetryClient::new(addr, RetryPolicy::no_reconnect());
        assert!(client.set("k", 0, 0, b"v").unwrap());
        server.shutdown();
        // `shutdown` only stops the accept loop; the connection thread
        // notices on its next 200 ms poll. Wait it out so the held
        // connection is actually dead before probing fail-fast behavior.
        std::thread::sleep(Duration::from_millis(600));
        let started = std::time::Instant::now();
        assert!(client.get("k").is_err(), "one attempt, no retry");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "fail-fast must not sit in a backoff loop"
        );
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let mut rng_a = policy.jitter_seed;
        let mut rng_b = policy.jitter_seed;
        for retry in 0..16 {
            let a = policy.backoff(retry, &mut rng_a);
            let b = policy.backoff(retry, &mut rng_b);
            assert_eq!(a, b, "same seed, same delays (retry {retry})");
            assert!(a <= policy.max_backoff, "delay capped (retry {retry})");
            assert!(
                a >= policy.base_backoff / 2,
                "jitter stays above half the target (retry {retry})"
            );
        }
        // A different seed produces a different jitter stream.
        let mut rng_c = 42;
        let diverged = (0..16).any(|retry| {
            let mut rng_a2 = policy.jitter_seed;
            for _ in 0..retry {
                let _ = policy.backoff(0, &mut rng_a2);
            }
            policy.backoff(retry, &mut rng_c) != policy.backoff(retry, &mut rng_a2)
        });
        assert!(diverged, "seeds must actually steer the jitter");
    }

    #[test]
    fn multiple_clients_share_one_server() {
        let mut server = CacheServer::start(Arc::new(RpEngine::new()), 0).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|id| {
                std::thread::spawn(move || {
                    let mut client = CacheClient::connect(addr).unwrap();
                    let key = format!("key-{id}");
                    assert!(client.set(&key, 0, 0, key.as_bytes()).unwrap());
                    assert_eq!(client.get(&key).unwrap().as_deref(), Some(key.as_bytes()));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}
