//! A small blocking client speaking the memcached text protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking connection to a [`crate::server::CacheServer`] (or to real
/// memcached — the protocol subset is compatible).
pub struct CacheClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl CacheClient {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(CacheClient { stream, reader })
    }

    /// Issues `set` and waits for the reply. Returns `true` when the server
    /// answered `STORED`.
    pub fn set(
        &mut self,
        key: &str,
        flags: u32,
        exptime_secs: u64,
        data: &[u8],
    ) -> std::io::Result<bool> {
        write!(
            self.stream,
            "set {key} {flags} {exptime_secs} {}\r\n",
            data.len()
        )?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        let line = self.read_line()?;
        Ok(line.trim_end() == "STORED")
    }

    /// Issues `get` for a single key and returns the value bytes if present.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        write!(self.stream, "get {key}\r\n")?;
        let header = self.read_line()?;
        let header = header.trim_end();
        if header == "END" {
            return Ok(None);
        }
        // "VALUE <key> <flags> <bytes>"
        let nbytes: usize = header
            .split_ascii_whitespace()
            .nth(3)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad VALUE header")
            })?;
        let mut data = vec![0_u8; nbytes + 2];
        std::io::Read::read_exact(&mut self.reader, &mut data)?;
        data.truncate(nbytes);
        // Trailing "END\r\n".
        let end = self.read_line()?;
        if end.trim_end() != "END" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "missing END after VALUE block",
            ));
        }
        Ok(Some(data))
    }

    /// Issues `delete`; returns `true` when the server answered `DELETED`.
    pub fn delete(&mut self, key: &str) -> std::io::Result<bool> {
        write!(self.stream, "delete {key}\r\n")?;
        let line = self.read_line()?;
        Ok(line.trim_end() == "DELETED")
    }

    /// Issues `version` and returns the server's version string.
    pub fn version(&mut self) -> std::io::Result<String> {
        self.stream.write_all(b"version\r\n")?;
        let line = self.read_line()?;
        Ok(line.trim_end().trim_start_matches("VERSION ").to_string())
    }

    /// Issues `stats` and returns the `STAT` pairs.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, String)>> {
        self.stream.write_all(b"stats\r\n")?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            let line = line.trim_end();
            if line == "END" {
                return Ok(out);
            }
            if let Some(rest) = line.strip_prefix("STAT ") {
                if let Some((name, value)) = rest.split_once(' ') {
                    out.push((name.to_string(), value.to_string()));
                }
            }
        }
    }

    /// Sends `quit`, closing the connection server-side.
    pub fn quit(&mut self) -> std::io::Result<()> {
        self.stream.write_all(b"quit\r\n")
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CacheServer;
    use crate::{LockEngine, RpEngine};
    use std::sync::Arc;

    fn round_trip(engine: Arc<dyn crate::CacheEngine>) {
        let mut server = CacheServer::start(engine, 0).expect("bind");
        let mut client = CacheClient::connect(server.addr()).expect("connect");

        assert!(client.get("missing").unwrap().is_none());
        assert!(client.set("key", 5, 0, b"payload").unwrap());
        assert_eq!(client.get("key").unwrap().as_deref(), Some(&b"payload"[..]));
        assert!(client.delete("key").unwrap());
        assert!(!client.delete("key").unwrap());
        assert!(client.version().unwrap().contains("relativist"));
        let stats = client.stats().unwrap();
        assert!(stats.iter().any(|(k, _)| k == "get_hits"));
        client.quit().unwrap();
        server.shutdown();
    }

    #[test]
    fn tcp_round_trip_against_lock_engine() {
        round_trip(Arc::new(LockEngine::new()));
    }

    #[test]
    fn tcp_round_trip_against_rp_engine() {
        round_trip(Arc::new(RpEngine::new()));
    }

    #[test]
    fn binary_values_survive_the_protocol() {
        let mut server = CacheServer::start(Arc::new(RpEngine::new()), 0).unwrap();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        let payload: Vec<u8> = (0_u16..512).map(|b| (b % 256) as u8).collect();
        assert!(client.set("bin", 0, 0, &payload).unwrap());
        assert_eq!(client.get("bin").unwrap().unwrap(), payload);
        server.shutdown();
    }

    #[test]
    fn multiple_clients_share_one_server() {
        let mut server = CacheServer::start(Arc::new(RpEngine::new()), 0).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|id| {
                std::thread::spawn(move || {
                    let mut client = CacheClient::connect(addr).unwrap();
                    let key = format!("key-{id}");
                    assert!(client.set(&key, 0, 0, key.as_bytes()).unwrap());
                    assert_eq!(client.get(&key).unwrap().as_deref(), Some(key.as_bytes()));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}
