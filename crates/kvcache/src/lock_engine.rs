//! The default engine: a single global lock (memcached's `cache_lock`).

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

use crate::engine::{CacheEngine, CacheStats, EngineReadCtx, StoreOutcome};
use crate::item::Item;

/// Configuration shared by both engines.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineConfig {
    /// Maximum number of items before eviction kicks in.
    pub(crate) capacity: usize,
    /// Maximum payload size accepted for a single item.
    pub(crate) max_item_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            capacity: 1 << 20,
            max_item_size: 1 << 20,
        }
    }
}

struct Slot {
    item: Item,
    /// Monotonic access stamp used for LRU eviction.
    last_access: u64,
}

struct Inner {
    map: HashMap<String, Slot>,
    clock: u64,
}

/// The stock-memcached-shaped engine: **every** operation — including GET —
/// acquires one global mutex.
///
/// This is the configuration whose GET throughput stops scaling once a
/// handful of client threads contend on the lock, which is precisely the
/// effect the paper's memcached figure demonstrates.
pub struct LockEngine {
    inner: Mutex<Inner>,
    config: EngineConfig,
    stats: CacheStats,
}

impl Default for LockEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl LockEngine {
    /// Creates an engine with a large default capacity.
    pub fn new() -> Self {
        Self::with_capacity(1 << 20)
    }

    /// Creates an engine that holds at most `capacity` items, evicting the
    /// least recently used item beyond that.
    pub fn with_capacity(capacity: usize) -> Self {
        LockEngine {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            config: EngineConfig {
                capacity: capacity.max(1),
                ..EngineConfig::default()
            },
            stats: CacheStats::default(),
        }
    }

    fn evict_if_needed(&self, inner: &mut Inner) {
        while inner.map.len() > self.config.capacity {
            // Exact LRU under the global lock: find the slot with the oldest
            // access stamp. (memcached keeps an intrusive list; a scan keeps
            // this reproduction simple and happens only beyond capacity.)
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_access)
                .map(|(k, _)| k.clone());
            match victim {
                Some(key) => {
                    inner.map.remove(&key);
                    self.stats.bump(&self.stats.evictions);
                }
                None => break,
            }
        }
    }
}

impl CacheEngine for LockEngine {
    fn name(&self) -> &'static str {
        "default"
    }

    fn get(&self, key: &str) -> Option<Item> {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(slot) if !slot.item.is_expired(now) => {
                slot.last_access = clock;
                self.stats.bump(&self.stats.get_hits);
                Some(slot.item.clone())
            }
            Some(_) => {
                inner.map.remove(key);
                self.stats.bump(&self.stats.expirations);
                self.stats.bump(&self.stats.get_misses);
                None
            }
            None => {
                self.stats.bump(&self.stats.get_misses);
                None
            }
        }
    }

    fn get_via(&self, key: &str, ctx: &mut EngineReadCtx) -> Option<Item> {
        // The baseline has no relativistic read path — a lookup takes the
        // global lock whichever flavor the server picked. What it must
        // still honor is the QSBR discipline: a blocking lock acquisition
        // from an online QSBR thread would stall every writer's grace
        // period behind the lock queue, so the wait happens offline.
        ctx.with_offline(|| self.get(key))
    }

    fn get_many_via(&self, keys: &[&str], ctx: &mut EngineReadCtx) -> Vec<Option<Item>> {
        // One offline window for the whole batch — N keys pay the QSBR
        // toggle once, mirroring the relativistic engines' one-window
        // batches (except here the window covers lock waits, not
        // barrier-free reads).
        ctx.with_offline(|| keys.iter().map(|key| self.get(key)).collect())
    }

    fn set(&self, key: &str, item: Item) -> StoreOutcome {
        if item.len() > self.config.max_item_size {
            return StoreOutcome::NotStored;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.insert(
            key.to_string(),
            Slot {
                item,
                last_access: clock,
            },
        );
        self.evict_if_needed(&mut inner);
        self.stats.bump(&self.stats.sets);
        StoreOutcome::Stored
    }

    fn delete(&self, key: &str) -> bool {
        let removed = self.inner.lock().map.remove(key).is_some();
        if removed {
            self.stats.bump(&self.stats.deletes);
        }
        removed
    }

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn purge_expired(&self) -> usize {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        inner.map.retain(|_, slot| !slot.item.is_expired(now));
        let purged = before - inner.map.len();
        for _ in 0..purged {
            self.stats.bump(&self.stats.expirations);
        }
        purged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn get_set_delete_round_trip() {
        let engine = LockEngine::new();
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.set("k", Item::new(1, "v")), StoreOutcome::Stored);
        let item = engine.get("k").unwrap();
        assert_eq!(item.flags, 1);
        assert_eq!(&item.data[..], b"v");
        assert!(engine.delete("k"));
        assert!(!engine.delete("k"));
        assert_eq!(engine.len(), 0);
    }

    #[test]
    fn expired_items_are_misses_and_removed() {
        let engine = LockEngine::new();
        let mut item = Item::new(0, "soon gone");
        item.expires_at = Some(Instant::now() - Duration::from_millis(1));
        engine.set("k", item);
        assert_eq!(engine.len(), 1);
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.len(), 0);
        assert_eq!(engine.stats().misses(), 1);
    }

    #[test]
    fn capacity_triggers_lru_eviction() {
        let engine = LockEngine::with_capacity(3);
        engine.set("a", Item::new(0, "1"));
        engine.set("b", Item::new(0, "2"));
        engine.set("c", Item::new(0, "3"));
        // Touch "a" so "b" becomes the LRU victim.
        engine.get("a");
        engine.set("d", Item::new(0, "4"));
        assert_eq!(engine.len(), 3);
        assert!(engine.get("a").is_some());
        assert!(engine.get("b").is_none());
        assert!(engine.get("d").is_some());
        assert_eq!(engine.stats().evicted(), 1);
    }

    #[test]
    fn oversized_items_are_rejected() {
        let engine = LockEngine::new();
        let huge = vec![0_u8; (1 << 20) + 1];
        assert_eq!(engine.set("k", Item::new(0, huge)), StoreOutcome::NotStored);
        assert_eq!(engine.len(), 0);
    }

    #[test]
    fn get_via_serves_both_read_side_contexts() {
        use crate::engine::ReadSide;
        let engine = LockEngine::new();
        engine.set("k", Item::new(7, "v"));
        for side in [ReadSide::Ebr, ReadSide::Qsbr] {
            let mut ctx = EngineReadCtx::new(side);
            let item = engine.get_via("k", &mut ctx).expect("hit via {side:?}");
            assert_eq!(item.flags, 7);
            let many = engine.get_many_via(&["k", "missing"], &mut ctx);
            assert_eq!(many.len(), 2);
            assert!(many[0].is_some(), "batch hit");
            assert!(many[1].is_none(), "batch miss");
        }
    }

    #[test]
    fn purge_expired_sweeps_everything_stale() {
        let engine = LockEngine::new();
        for i in 0..10 {
            let mut item = Item::new(0, "x");
            if i % 2 == 0 {
                item.expires_at = Some(Instant::now() - Duration::from_millis(1));
            }
            engine.set(&format!("k{i}"), item);
        }
        assert_eq!(engine.purge_expired(), 5);
        assert_eq!(engine.len(), 5);
    }
}
