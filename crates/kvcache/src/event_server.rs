//! The cache server on the `rp-net` epoll reactor.
//!
//! Where [`CacheServer`](crate::server::CacheServer) spends a thread per
//! connection, [`EventServer`] serves every connection from a fixed pool of
//! reactor workers: requests are framed incrementally (a command may arrive
//! one byte at a time), responses to pipelined requests are batched into
//! single writes, a slow reader that stops draining its responses gets its
//! *reads* paused instead of ballooning server memory, and graceful
//! shutdown answers everything already received before closing.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use rp_net::{Action, EventLoop, NetConfig, NetStats, Service, WriteBuf};

use crate::engine::CacheEngine;
use crate::protocol::{DecodedRequest, RequestDecoder, Response};
use crate::server::execute;

/// The memcached text protocol as an [`rp_net::Service`].
///
/// Per-connection state is exactly one [`RequestDecoder`]; everything else
/// (the engine, statistics) is shared. `on_data` drains every complete
/// pipelined request, so N requests arriving in one read produce N replies
/// in one write.
pub struct KvService {
    engine: Arc<dyn CacheEngine>,
}

impl KvService {
    /// Wraps `engine` for the reactor.
    pub fn new(engine: Arc<dyn CacheEngine>) -> KvService {
        KvService { engine }
    }
}

impl Service for KvService {
    type Conn = RequestDecoder;

    fn on_connect(&self, _peer: SocketAddr) -> RequestDecoder {
        RequestDecoder::new()
    }

    fn on_data(
        &self,
        decoder: &mut RequestDecoder,
        input: &mut Vec<u8>,
        out: &mut WriteBuf,
    ) -> Action {
        decoder.absorb(input);
        loop {
            match decoder.next() {
                Some(DecodedRequest::Command(command)) => {
                    let quit = matches!(command, crate::protocol::Command::Quit);
                    if let Some(reply) = execute(&*self.engine, command) {
                        out.push(reply.to_bytes());
                    }
                    if quit {
                        return Action::Close;
                    }
                }
                Some(DecodedRequest::Invalid { reason }) => {
                    out.push(Response::ClientError(reason).to_bytes());
                }
                None => return Action::Continue,
            }
        }
    }
}

/// A running event-loop cache server.
pub struct EventServer {
    inner: EventLoop,
    engine: Arc<dyn CacheEngine>,
}

impl EventServer {
    /// Binds `127.0.0.1:<port>` (0 picks a free port) and serves `engine`
    /// from `workers` reactor threads.
    pub fn start(
        engine: Arc<dyn CacheEngine>,
        port: u16,
        workers: usize,
        drain_timeout: Duration,
    ) -> io::Result<EventServer> {
        let config = NetConfig {
            workers,
            drain_timeout,
            ..NetConfig::default()
        };
        let service = Arc::new(KvService::new(Arc::clone(&engine)));
        let addr: SocketAddr = ([127, 0, 0, 1], port).into();
        let inner = EventLoop::bind(addr, service, config)?;
        Ok(EventServer { inner, engine })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<dyn CacheEngine> {
        &self.engine
    }

    /// Number of reactor worker threads — the server's entire thread
    /// budget, independent of the connection count.
    pub fn worker_count(&self) -> usize {
        self.inner.worker_count()
    }

    /// Reactor connection counters.
    pub fn net_stats(&self) -> NetStats {
        self.inner.stats()
    }

    /// Graceful shutdown: stop accepting, answer every request already
    /// received, flush, close, join the workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}
