//! The cache server on the `rp-net` epoll reactor.
//!
//! Where [`CacheServer`](crate::server::CacheServer) spends a thread per
//! connection, [`EventServer`] serves every connection from a fixed pool of
//! reactor workers: requests are framed incrementally (a command may arrive
//! one byte at a time), responses to pipelined requests are batched into
//! single writes, a slow reader that stops draining its responses gets its
//! *reads* paused instead of ballooning server memory, and graceful
//! shutdown answers everything already received before closing.
//!
//! # The QSBR read path
//!
//! By default the reactor workers serve GETs through the QSBR read-side
//! flavor ([`ReadSide::Qsbr`]): each worker registers a
//! [`rp_hash::QsbrReadHandle`] at startup ([`rp_net::Service`]'s
//! `on_worker_start` hook runs on the worker thread), lookups inside a
//! batch pay **no locks, no fences, no atomic RMW at all**, one quiescent
//! state is announced per event batch (`on_batch_end`), and the handle goes
//! offline while the worker parks in `epoll_wait` (`on_park`/`on_unpark`)
//! so an idle worker never stalls writers. Because the serving threads are
//! QSBR readers, they postpone all grace-period work; a background
//! [`Reclaimer`] (plus the engine's maintenance thread, when enabled)
//! absorbs deferred frees instead. `--read-side ebr` restores the guard
//! path for A/B comparisons — that flavor difference is what the
//! `fig_qsbr` benchmark measures.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use rp_net::{Action, ConnIo, EventLoop, NetConfig, NetStats, Service};
use rp_rcu::Reclaimer;

use crate::engine::{CacheEngine, EngineReadCtx, ReadSide};
use crate::protocol::{Decoded, RefDecoder};
use crate::server::{execute_ref_observed, ServerConfig};

/// The memcached text protocol as an [`rp_net::Service`].
///
/// Per-connection state is exactly one [`RefDecoder`] (two words of
/// defensive skip state — the bytes themselves stay in the reactor's
/// per-connection input buffer); per-worker state is the read-side context
/// ([`EngineReadCtx`] — a registered QSBR handle, or nothing for EBR);
/// everything else (the engine, statistics) is shared.
///
/// `on_data` is the repo's hottest loop, and it is **allocation-free in
/// steady state**: requests are decoded *in place* (keys and payloads
/// borrow from [`ConnIo::input`]), executed through the engines'
/// byte-keyed [`CacheEngine::get_ref`] lookups, and their replies
/// serialised straight into the connection's pooled output queue
/// ([`ConnIo::out`]) — no owned `Command`, no intermediate `Vec<u8>`, no
/// copy of a cached value smaller than the coalescing threshold. N
/// pipelined requests arriving in one read still produce N replies in one
/// write.
pub struct KvService {
    engine: Arc<dyn CacheEngine>,
    read_side: ReadSide,
}

impl KvService {
    /// Wraps `engine` for the reactor, serving GETs through `read_side`.
    pub fn new(engine: Arc<dyn CacheEngine>, read_side: ReadSide) -> KvService {
        KvService { engine, read_side }
    }
}

/// A reactor worker's serving state: the read-side context plus the
/// worker's private `rp-obs` metric shard (requests, decode errors,
/// per-opcode latency histograms). Keeping a `&'static` shard reference
/// here means the hot path never touches the shard-selection mask.
pub struct KvWorker {
    ctx: EngineReadCtx,
    kv: &'static rp_obs::KvWorkerObs,
    /// Reactor ordinal, stamped into slow-log spans as the serving worker.
    ordinal: u64,
}

impl Service for KvService {
    type Conn = RefDecoder;
    type Worker = KvWorker;

    fn on_worker_start(&self, worker: usize) -> KvWorker {
        // Runs on the worker thread, so the QSBR registration (when chosen)
        // is pinned to the thread that will serve the lookups.
        KvWorker {
            ctx: EngineReadCtx::new(self.read_side),
            kv: rp_obs::global().kv.shards.for_worker(worker),
            ordinal: worker as u64,
        }
    }

    fn on_connect(&self, _peer: SocketAddr) -> RefDecoder {
        RefDecoder::new()
    }

    fn on_data(
        &self,
        worker: &mut KvWorker,
        decoder: &mut RefDecoder,
        io: &mut ConnIo<'_>,
    ) -> Action {
        let mut offset = 0;
        let action = loop {
            if io.requests >= io.request_quota {
                // Per-connection budget spent; the reactor drains what has
                // been answered and closes.
                break Action::Continue;
            }
            // Predict whether the request this step may complete will be
            // the sampled 1-in-N one (the shard counter is effectively
            // single-writer, so the prediction is exact unless workers
            // outnumber metric shards) and time the decode step only then
            // — the unsampled path keeps zero clock reads.
            let decode_timer = if rp_obs::sample_latency(worker.kv.requests.get() + 1) {
                rp_obs::timer()
            } else {
                None
            };
            let (used, decoded) = decoder.step(&io.input[offset..]);
            offset += used;
            match decoded {
                Decoded::Request(request) => {
                    io.requests += 1;
                    let decode_ns = rp_obs::elapsed_ns(decode_timer).unwrap_or(0);
                    if execute_ref_observed(
                        &*self.engine,
                        &request,
                        &mut worker.ctx,
                        &mut io.out,
                        worker.kv,
                        worker.ordinal,
                        decode_ns,
                    ) {
                        break Action::Close;
                    }
                }
                Decoded::Bad(error) => {
                    io.requests += 1;
                    worker.kv.decode_errors.inc();
                    error.write_wire(&mut io.out);
                }
                Decoded::NeedMore => break Action::Continue,
            }
        };
        io.input.drain(..offset);
        action
    }

    fn on_batch_end(&self, worker: &mut KvWorker) {
        // Every response of the batch has been copied out; the worker holds
        // no references into the engine's index. One announcement per
        // batch, amortised over every lookup the batch served.
        worker.ctx.quiescent();
        // QSBR workers postpone writer-side grace work (auto-resize); if
        // every writer is a QSBR worker, someone must catch up or the
        // index never resizes. This is that someone: between batches, with
        // the handle offline so grace waits cannot deadlock on this
        // thread. A cheap threshold no-op when the index is maintained or
        // inside its load-factor bounds.
        if matches!(self.read_side, ReadSide::Qsbr) {
            let engine = &self.engine;
            worker.ctx.with_offline(|| engine.housekeeping());
        }
    }

    fn on_park(&self, worker: &mut KvWorker) {
        worker.ctx.park();
    }

    fn on_unpark(&self, worker: &mut KvWorker) {
        worker.ctx.unpark();
    }
}

/// A running event-loop cache server.
pub struct EventServer {
    inner: EventLoop,
    engine: Arc<dyn CacheEngine>,
    read_side: ReadSide,
    /// Absorbs deferred frees while the workers are QSBR readers (QSBR
    /// workers postpone all grace-period work; without maintenance or this
    /// thread, retired nodes would accumulate unboundedly).
    _reclaimer: Option<Reclaimer>,
}

impl EventServer {
    /// Binds `127.0.0.1:<port>` (0 picks a free port) and serves `engine`
    /// from `workers` reactor threads with the default read-side flavor
    /// ([`ReadSide::Qsbr`]).
    pub fn start(
        engine: Arc<dyn CacheEngine>,
        port: u16,
        workers: usize,
        drain_timeout: Duration,
    ) -> io::Result<EventServer> {
        Self::start_with_read_side(engine, port, workers, ReadSide::default(), drain_timeout)
    }

    /// [`EventServer::start`] with the read-side flavor spelled out.
    pub fn start_with_read_side(
        engine: Arc<dyn CacheEngine>,
        port: u16,
        workers: usize,
        read_side: ReadSide,
        drain_timeout: Duration,
    ) -> io::Result<EventServer> {
        let config = ServerConfig {
            port,
            workers,
            read_side,
            drain_timeout,
            ..ServerConfig::default()
        };
        Self::start_from(engine, &config)
    }

    /// Starts an event-loop server exactly as `config` describes,
    /// including the defensive limits (`idle_timeout`,
    /// `max_requests_per_conn`).
    pub fn start_from(
        engine: Arc<dyn CacheEngine>,
        config: &ServerConfig,
    ) -> io::Result<EventServer> {
        // A serving process watches its own grace periods (see
        // `rp_rcu::stall`): a wedged reader surfaces in STATS TRACE and
        // `rcu_grace_stalls_total` instead of as a silent writer hang.
        rp_rcu::stall::ensure_global_watchdog();
        // Arm scripted fault injection when RP_FAULT_PLAN is set (no-op —
        // one relaxed load per failpoint — otherwise). Serving binaries
        // call through here, so chaos runs need no code changes.
        rp_fault::arm_from_env();
        let read_side = config.read_side;
        let net = NetConfig {
            workers: config.workers.max(1),
            drain_timeout: config.drain_timeout,
            idle_timeout: config.idle_timeout,
            max_requests_per_conn: config.max_requests_per_conn,
            max_connections: config.max_connections,
            max_total_bytes: config.max_total_bytes,
            // A peer shed at admission hears why, in protocol terms,
            // instead of a bare close.
            shed_reply: b"SERVER_ERROR busy\r\n".to_vec(),
            // A connection whose handler panicked hears why too; the panic
            // itself is contained by the reactor (the worker keeps
            // serving) and only the poisoned connection is shed.
            panic_reply: b"SERVER_ERROR internal panic\r\n".to_vec(),
            ..NetConfig::default()
        };
        let service = Arc::new(KvService::new(Arc::clone(&engine), read_side));
        let addr: SocketAddr = ([127, 0, 0, 1], config.port).into();
        let inner = EventLoop::bind(addr, service, net)?;
        let reclaimer = match read_side {
            ReadSide::Ebr => None,
            ReadSide::Qsbr => Some(Reclaimer::spawn_global()),
        };
        Ok(EventServer {
            inner,
            engine,
            read_side,
            _reclaimer: reclaimer,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<dyn CacheEngine> {
        &self.engine
    }

    /// The read-side flavor serving this server's GETs.
    pub fn read_side(&self) -> ReadSide {
        self.read_side
    }

    /// Number of reactor worker threads — the server's entire thread
    /// budget, independent of the connection count.
    pub fn worker_count(&self) -> usize {
        self.inner.worker_count()
    }

    /// Reactor connection counters.
    pub fn net_stats(&self) -> NetStats {
        self.inner.stats()
    }

    /// Graceful shutdown: stop accepting, answer every request already
    /// received, flush, close, join the workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}
