//! The split-ordered engine: lock-free writers over an
//! [`rp_splitorder::SplitOrderMap`] index — the competing resize
//! philosophy, served behind the same [`CacheEngine`] seam.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use rp_hash::FnvBuildHasher;
use rp_splitorder::SplitOrderMap;

use crate::engine::{CacheEngine, CacheStats, EngineReadCtx, StoreOutcome};
use crate::item::Item;
use crate::rp_engine::{
    classify_probe, probe_ref, str_bytes_hash, ByteKeyIndex, EngineCore, StoredItem,
};

impl ByteKeyIndex for SplitOrderMap<String, Arc<StoredItem>, FnvBuildHasher> {
    fn probe<'g, P: rp_hash::ReadProtect>(
        &'g self,
        hash: u64,
        key: &[u8],
        protect: &'g P,
    ) -> Option<&'g Arc<StoredItem>> {
        self.get_matching_prehashed(hash, |k| k.as_bytes() == key, protect)
    }

    fn pin_guard(&self) -> rp_rcu::RcuGuard<'static> {
        self.pin()
    }
}

/// The split-ordered engine: the index is a lock-free split-ordered list,
/// so **SETs and DELETEs never serialise on a writer lock** and index
/// growth is a single pointer publication — no data movement, no
/// grace-period wait. GETs are the same `ReadProtect`-generic wait-free
/// lookups as the relativistic engines (EBR guard or barrier-free QSBR
/// handle); expiry is lazy and eviction approximate-LRU, both on the
/// writer-side slow path.
pub struct SplitOrderEngine {
    index: SplitOrderMap<String, Arc<StoredItem>, FnvBuildHasher>,
    core: EngineCore,
}

impl Default for SplitOrderEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SplitOrderEngine {
    /// Creates an engine with a large default capacity.
    pub fn new() -> Self {
        Self::with_capacity(1 << 20)
    }

    /// Creates an engine that holds at most `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity.max(16)).next_power_of_two().min(1 << 16);
        SplitOrderEngine {
            index: SplitOrderMap::with_buckets(buckets.min(1024)),
            core: EngineCore::with_capacity(capacity),
        }
    }

    /// Number of buckets currently used by the index (exposed so tests and
    /// benchmarks can confirm the table splits itself under load).
    pub fn index_buckets(&self) -> usize {
        self.index.num_buckets()
    }

    fn evict_if_needed(&self) {
        self.core.evict_if_needed(
            || self.index.len(),
            || {
                let guard = self.index.pin();
                self.index
                    .iter(&guard)
                    .map(|(k, v)| (k.clone(), v.last_access.load(Ordering::Relaxed)))
                    .collect()
            },
            |key| self.index.remove(key),
        );
    }
}

impl CacheEngine for SplitOrderEngine {
    fn name(&self) -> &'static str {
        "splitorder"
    }

    fn get(&self, key: &str) -> Option<Item> {
        let now = Instant::now();
        let stamp = self.core.stamp();
        let probe = {
            let guard = self.index.pin();
            classify_probe(self.index.get(key, &guard), now, stamp)
        };
        self.core.settle(probe, || self.index.remove(key))
    }

    fn get_via(&self, key: &str, ctx: &mut EngineReadCtx) -> Option<Item> {
        // The QSBR handle is just another `ReadProtect` witness for the
        // split-ordered lookup; the EBR fallback computes its own stamps
        // inside `get`.
        let Some(handle) = ctx.qsbr_handle() else {
            return self.get(key);
        };
        let now = Instant::now();
        let stamp = self.core.stamp();
        let probe = classify_probe(self.index.get(key, handle), now, stamp);
        self.core.settle(probe, || self.index.remove(key))
    }

    fn get_ref(&self, key: &[u8], ctx: &mut EngineReadCtx) -> Option<Item> {
        // One hashing pass over the borrowed key bytes serves the whole
        // lookup; the key is never copied and never re-validated.
        let hash = str_bytes_hash(key);
        let now = Instant::now();
        let stamp = self.core.stamp();
        let probe = probe_ref(&self.index, ctx, hash, key, now, stamp);
        self.core.settle(probe, || {
            std::str::from_utf8(key)
                .map(|key| self.index.remove_prehashed(hash, key))
                .unwrap_or(false)
        })
    }

    fn set(&self, key: &str, item: Item) -> StoreOutcome {
        let Some(stored) = self.core.admit(item) else {
            return StoreOutcome::NotStored;
        };
        // Lock-free insert; a replaced item is retired through the
        // deferred queue, and index growth (bucket splitting) never waits
        // for a grace period.
        self.index.insert(key.to_string(), stored);
        self.evict_if_needed();
        self.core.note_set();
        StoreOutcome::Stored
    }

    fn delete(&self, key: &str) -> bool {
        self.core.note_delete(self.index.remove(key))
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn housekeeping(&self) {
        // The split-ordered index never postpones growth (it is
        // non-blocking), but removals queue deferred reclamation; drain it
        // from the offline window between event batches.
        self.index.maintain();
    }

    fn stats(&self) -> &CacheStats {
        &self.core.stats
    }

    fn purge_expired(&self) -> usize {
        let now = Instant::now();
        let before = self.index.len();
        self.index.retain(|_, stored| !stored.item.is_expired(now));
        self.core
            .note_purged(before.saturating_sub(self.index.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn get_set_delete_round_trip() {
        let engine = SplitOrderEngine::new();
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.set("k", Item::new(3, "value")), StoreOutcome::Stored);
        let item = engine.get("k").unwrap();
        assert_eq!(item.flags, 3);
        assert_eq!(&item.data[..], b"value");
        assert!(engine.delete("k"));
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.stats().hits(), 1);
        assert_eq!(engine.stats().misses(), 2);
    }

    #[test]
    fn get_ref_matches_get_for_both_read_sides() {
        use crate::engine::{EngineReadCtx, ReadSide};
        std::thread::spawn(|| {
            let engine = SplitOrderEngine::new();
            engine.set("present", Item::new(9, "val"));
            let mut stale = Item::new(0, "old");
            stale.expires_at = Some(Instant::now() - Duration::from_millis(1));
            engine.set("stale", stale);

            for read_side in [ReadSide::Ebr, ReadSide::Qsbr] {
                let mut ctx = EngineReadCtx::new(read_side);
                let hit = engine.get_ref(b"present", &mut ctx).unwrap();
                assert_eq!(hit.flags, 9);
                assert_eq!(&hit.data[..], b"val");
                assert_eq!(engine.get_ref(b"missing", &mut ctx), None);
                assert_eq!(engine.get_ref(b"\xff\xfe not utf8", &mut ctx), None);
                ctx.quiescent();
            }
            assert_eq!(engine.get_ref(b"stale", &mut EngineReadCtx::ebr()), None);
            assert_eq!(engine.len(), 1);
            assert!(engine.stats().expirations.load(Ordering::Relaxed) >= 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn expired_items_fall_back_to_the_slow_path() {
        let engine = SplitOrderEngine::new();
        let mut item = Item::new(0, "stale");
        item.expires_at = Some(Instant::now() - Duration::from_millis(1));
        engine.set("k", item);
        assert_eq!(engine.len(), 1);
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.len(), 0, "expired item must be removed lazily");
        assert_eq!(engine.stats().expirations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn capacity_is_enforced_with_approximate_lru() {
        let engine = SplitOrderEngine::with_capacity(4);
        for i in 0..4 {
            engine.set(&format!("k{i}"), Item::new(0, "x"));
        }
        for i in 0..3 {
            engine.get(&format!("k{i}"));
        }
        engine.set("k4", Item::new(0, "x"));
        assert_eq!(engine.len(), 4);
        assert!(engine.stats().evicted() >= 1);
        assert!(
            engine.get("k4").is_some(),
            "newly inserted key must survive"
        );
    }

    #[test]
    fn purge_expired_removes_only_stale_items() {
        let engine = SplitOrderEngine::new();
        for i in 0..6 {
            let mut item = Item::new(0, "x");
            if i % 2 == 0 {
                item.expires_at = Some(Instant::now() - Duration::from_millis(1));
            }
            engine.set(&format!("k{i}"), item);
        }
        assert_eq!(engine.purge_expired(), 3);
        assert_eq!(engine.len(), 3);
    }

    #[test]
    fn index_splits_itself_even_from_a_qsbr_worker() {
        use crate::engine::{EngineReadCtx, ReadSide};
        // The headline difference from the relativistic engines: growth is
        // non-blocking, so it is *not* postponed while the worker is a
        // QSBR-online reader — the index splits mid-batch, no housekeeping
        // catch-up required.
        std::thread::spawn(|| {
            let engine = SplitOrderEngine::with_capacity(100_000);
            let mut ctx = EngineReadCtx::new(ReadSide::Qsbr);
            let before = engine.index_buckets();
            for i in 0..8192 {
                engine.set(&format!("key-{i}"), Item::new(0, "v"));
            }
            assert!(
                engine.index_buckets() > before,
                "split-ordered growth must not be postponed ({} -> {})",
                before,
                engine.index_buckets()
            );
            assert!(engine.get_via("key-7", &mut ctx).is_some());
            let hits = engine.get_many_via(&["key-1", "missing", "key-2"], &mut ctx);
            assert_eq!(hits.iter().filter(|h| h.is_some()).count(), 2);
            ctx.quiescent();
            ctx.with_offline(|| engine.housekeeping());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn concurrent_gets_and_sets() {
        use std::sync::atomic::AtomicBool;
        let engine = Arc::new(SplitOrderEngine::new());
        for i in 0..256 {
            engine.set(&format!("k{i}"), Item::new(0, format!("v{i}")));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|seed| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut k = seed;
                    while !stop.load(Ordering::Relaxed) {
                        k = (k * 13 + 1) % 256;
                        let item = engine.get(&format!("k{k}")).expect("stable key present");
                        assert!(item.data.starts_with(b"v"));
                    }
                })
            })
            .collect();
        for round in 0..2000_u32 {
            let k = round % 256;
            engine.set(&format!("k{k}"), Item::new(round, format!("v{k}-{round}")));
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
    }
}
