//! The sharded relativistic engine: the [`RpEngine`](crate::RpEngine)
//! architecture with a [`ShardedRpMap`] index, so SETs and automatic
//! resizes of the index only contend within one shard, and multi-key GETs
//! use the batched, shard-grouped read path.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use rp_hash::ResizePolicy;
use rp_maint::{MaintConfig, MaintStats};
use rp_shard::{ShardPolicy, ShardedRpMap};

use crate::engine::{CacheEngine, CacheStats, EngineReadCtx, StoreOutcome};
use crate::item::Item;
use crate::rp_engine::{classify_probe, ByteKeyIndex, EngineCore, RawProbe, StoredItem};

impl ByteKeyIndex for ShardedRpMap<String, Arc<StoredItem>> {
    fn probe<'g, P: rp_hash::ReadProtect>(
        &'g self,
        hash: u64,
        key: &[u8],
        protect: &'g P,
    ) -> Option<&'g Arc<StoredItem>> {
        self.get_matching_prehashed(hash, |k| k.as_bytes() == key, protect)
    }

    fn pin_guard(&self) -> rp_rcu::RcuGuard<'static> {
        self.pin()
    }
}

/// A cache engine whose index is a [`ShardedRpMap`].
///
/// GETs are the same wait-free relativistic lookups as
/// [`RpEngine`](crate::RpEngine); a multi-key GET
/// ([`CacheEngine::get_many`]) groups keys by shard and pins one guard per
/// shard. SETs, deletes and index resizes serialise only within the target
/// key's shard, so write throughput scales with the shard count.
///
/// **Background resizes are on by default**: index resizes are driven by an
/// `rp-maint` maintenance thread, so a SET that pushes a shard past its
/// load-factor threshold only *requests* the resize and never waits for a
/// grace period. Set the environment variable `RP_KV_MAINT=off` (or `0` /
/// `false`) before constructing the engine to fall back to inline resizing
/// in the triggering SET, e.g. for A/B latency comparisons — that is
/// exactly what the `fig_maint` benchmark measures.
pub struct ShardedRpEngine {
    index: ShardedRpMap<String, Arc<StoredItem>>,
    core: EngineCore,
}

impl Default for ShardedRpEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads the `RP_KV_MAINT` escape hatch: `off`, `0`, `false` and `no`
/// (case-insensitive) disable background resize maintenance.
fn maint_enabled_by_env() -> bool {
    maint_flag(std::env::var("RP_KV_MAINT").ok().as_deref())
}

fn maint_flag(value: Option<&str>) -> bool {
    match value {
        Some(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        None => true,
    }
}

impl ShardedRpEngine {
    /// Creates an engine with 16 shards and a large default capacity.
    pub fn new() -> Self {
        Self::with_shards_and_capacity(16, 1 << 20)
    }

    /// Creates an engine with `shards` index shards holding at most
    /// `capacity` items. Background resize maintenance is on unless
    /// `RP_KV_MAINT=off` is set in the environment.
    pub fn with_shards_and_capacity(shards: usize, capacity: usize) -> Self {
        Self::with_shards_capacity_and_maintenance(shards, capacity, maint_enabled_by_env())
    }

    /// [`ShardedRpEngine::with_shards_and_capacity`] with the maintenance
    /// choice made explicitly (ignoring the environment); used by tests and
    /// the `fig_maint` benchmark for deterministic A/B comparisons.
    pub fn with_shards_capacity_and_maintenance(
        shards: usize,
        capacity: usize,
        maintained: bool,
    ) -> Self {
        Self::with_options(shards, capacity, maintained.then(MaintConfig::default))
    }

    /// The fully explicit constructor: `maint` carries the maintenance
    /// thread's tuning ([`MaintConfig`]), or `None` for inline resizing.
    /// This is what the `kvcached` command line (`--maint-*` flags) feeds.
    pub fn with_options(shards: usize, capacity: usize, maint: Option<MaintConfig>) -> Self {
        let per_shard_buckets = (capacity / shards.max(1)).clamp(16, 1024);
        let policy = ShardPolicy {
            shards,
            initial_buckets_per_shard: per_shard_buckets,
            per_shard: ResizePolicy {
                auto_expand: true,
                auto_shrink: true,
                max_load_factor: 2.0,
                min_load_factor: 0.125,
                min_buckets: 16,
                ..ResizePolicy::default()
            },
        };
        let index = match maint {
            Some(config) => ShardedRpMap::with_maintenance(policy, config),
            None => ShardedRpMap::with_policy(policy),
        };
        ShardedRpEngine {
            index,
            core: EngineCore::with_capacity(capacity),
        }
    }

    /// Number of index shards.
    pub fn shard_count(&self) -> usize {
        self.index.shard_count()
    }

    /// Returns `true` if index resizes run on a background maintenance
    /// thread (the default; see the type docs for the `RP_KV_MAINT` escape
    /// hatch).
    pub fn maintained(&self) -> bool {
        self.index.maintained()
    }

    /// Counters of the index's maintenance thread, when maintained.
    pub fn maint_stats(&self) -> Option<MaintStats> {
        self.index.maint_stats()
    }

    /// Total buckets across all index shards (exposed so benchmarks can
    /// confirm the shards resize themselves under load).
    pub fn index_buckets(&self) -> usize {
        self.index.num_buckets()
    }

    /// Per-shard occupancy, for balance diagnostics.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.index.stats().shard_lens
    }

    fn evict_if_needed(&self) {
        // Approximate LRU, as in RpEngine (the logic is EngineCore's):
        // sample everything under a guard, evict the stalest entries. Runs
        // on the SET path only.
        self.core.evict_if_needed(
            || self.index.len(),
            || {
                let guard = self.index.pin();
                self.index
                    .iter(&guard)
                    .map(|(k, v)| (k.clone(), v.last_access.load(Ordering::Relaxed)))
                    .collect()
            },
            |key| self.index.remove(key),
        );
    }

    /// Applies the shared per-key accounting to a batched lookup's slots
    /// (`Some(Some(_))` live hit, `Some(None)` present-but-expired, `None`
    /// miss), removing expired entries through the writer side.
    fn settle_batch(&self, stored: Vec<Option<Option<Item>>>, keys: &[&str]) -> Vec<Option<Item>> {
        stored
            .into_iter()
            .zip(keys)
            .map(|(slot, key)| {
                let probe = match slot {
                    Some(Some(item)) => RawProbe::Live(item),
                    Some(None) => RawProbe::Expired,
                    None => RawProbe::Miss,
                };
                self.core.settle(probe, || self.index.remove(*key))
            })
            .collect()
    }
}

impl CacheEngine for ShardedRpEngine {
    fn name(&self) -> &'static str {
        "rp-shard"
    }

    fn get(&self, key: &str) -> Option<Item> {
        let now = Instant::now();
        let stamp = self.core.stamp();
        let probe = {
            let guard = self.index.pin();
            classify_probe(self.index.get(key, &guard), now, stamp)
        };
        self.core.settle(probe, || self.index.remove(key))
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Option<Item>> {
        let now = Instant::now();
        let stamp = self.core.stamp();
        // The batched read path: keys grouped by shard, one guard pin per
        // shard. Expired entries are copied out as None and deleted on the
        // slow path afterwards, preserving per-key `get` semantics.
        let stored = self.index.multi_get_with(keys, |found| {
            if found.item.is_expired(now) {
                None
            } else {
                found.last_access.store(stamp, Ordering::Relaxed);
                Some(found.item.clone())
            }
        });
        self.settle_batch(stored, keys)
    }

    fn get_via(&self, key: &str, ctx: &mut EngineReadCtx) -> Option<Item> {
        // Flavor check first so the EBR fallback does not pay for a
        // timestamp and clock stamp it recomputes inside `get`.
        let Some(handle) = ctx.qsbr_handle() else {
            return self.get(key);
        };
        let now = Instant::now();
        let stamp = self.core.stamp();
        let probe = classify_probe(self.index.get_qsbr(key, handle), now, stamp);
        self.core.settle(probe, || self.index.remove(key))
    }

    fn get_many_via(&self, keys: &[&str], ctx: &mut EngineReadCtx) -> Vec<Option<Item>> {
        let Some(handle) = ctx.qsbr_handle() else {
            return self.get_many(keys);
        };
        let now = Instant::now();
        let stamp = self.core.stamp();
        // The QSBR batch: every key served inside one quiescent window (the
        // borrow of the worker's handle), with no per-shard guard pins at
        // all. Expired entries are copied out as None and deleted on the
        // slow path afterwards, preserving per-key `get` semantics.
        let stored = self.index.multi_get_with_qsbr(keys, handle, |found| {
            if found.item.is_expired(now) {
                None
            } else {
                found.last_access.store(stamp, Ordering::Relaxed);
                Some(found.item.clone())
            }
        });
        self.settle_batch(stored, keys)
    }

    fn get_ref(&self, key: &[u8], ctx: &mut EngineReadCtx) -> Option<Item> {
        use crate::rp_engine::{probe_ref, str_bytes_hash};
        // One hashing pass drives shard routing and the in-shard probe; the
        // borrowed key is never copied. Dispatch and accounting are shared
        // with RpEngine (`probe_ref`/`EngineCore::settle`); only the index
        // type and the expired-removal call differ.
        let hash = str_bytes_hash(key);
        let now = Instant::now();
        let stamp = self.core.stamp();
        let probe = probe_ref(&self.index, ctx, hash, key, now, stamp);
        self.core.settle(probe, || {
            // Expired: remove through the writer side (cold path; the
            // UTF-8 view is free — stored keys are always valid UTF-8).
            std::str::from_utf8(key)
                .map(|key| self.index.remove(key))
                .unwrap_or(false)
        })
    }

    fn set(&self, key: &str, item: Item) -> StoreOutcome {
        let Some(stored) = self.core.admit(item) else {
            return StoreOutcome::NotStored;
        };
        self.index.insert(key.to_string(), stored);
        self.evict_if_needed();
        self.core.note_set();
        StoreOutcome::Stored
    }

    fn delete(&self, key: &str) -> bool {
        self.core.note_delete(self.index.remove(key))
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn housekeeping(&self) {
        // No-op on the (default) maintained path — the rp-maint thread
        // absorbs resize work; with `--maint off` this is what keeps an
        // all-QSBR-worker deployment resizing its shards.
        self.index.maintain();
    }

    fn stats(&self) -> &CacheStats {
        &self.core.stats
    }

    fn purge_expired(&self) -> usize {
        let now = Instant::now();
        let before = self.index.len();
        self.index.retain(|_, stored| !stored.item.is_expired(now));
        self.core
            .note_purged(before.saturating_sub(self.index.len()))
    }

    fn observe_gauges(&self) {
        // Scrape-time level gauge: shard balance as max/mean occupancy, in
        // thousandths (1000 = perfectly balanced).
        let imbalance = self.index.stats().imbalance();
        rp_obs::global()
            .resize
            .imbalance_milli
            .set((imbalance * 1000.0) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn get_set_delete_round_trip() {
        let engine = ShardedRpEngine::new();
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.set("k", Item::new(3, "value")), StoreOutcome::Stored);
        let item = engine.get("k").unwrap();
        assert_eq!(item.flags, 3);
        assert_eq!(&item.data[..], b"value");
        assert!(engine.delete("k"));
        assert_eq!(engine.get("k"), None);
        assert_eq!(engine.stats().hits(), 1);
        assert_eq!(engine.stats().misses(), 2);
    }

    #[test]
    fn get_ref_matches_get_across_shards_and_read_sides() {
        use crate::engine::{EngineReadCtx, ReadSide};
        std::thread::spawn(|| {
            let engine = ShardedRpEngine::with_shards_and_capacity(8, 10_000);
            for i in 0..200 {
                engine.set(&format!("k{i}"), Item::new(i, format!("v{i}")));
            }
            for read_side in [ReadSide::Ebr, ReadSide::Qsbr] {
                let mut ctx = EngineReadCtx::new(read_side);
                for i in 0..200_u32 {
                    let key = format!("k{i}");
                    assert_eq!(
                        engine.get_ref(key.as_bytes(), &mut ctx),
                        engine.get(&key),
                        "{key} via {read_side:?}"
                    );
                }
                assert_eq!(engine.get_ref(b"missing", &mut ctx), None);
                ctx.quiescent();
            }
        })
        .join()
        .unwrap();
    }

    #[test]
    fn get_many_matches_per_key_get() {
        let engine = ShardedRpEngine::with_shards_and_capacity(8, 10_000);
        for i in 0..200 {
            engine.set(&format!("k{i}"), Item::new(i, format!("v{i}")));
        }
        let keys: Vec<String> = (0..250).map(|i| format!("k{i}")).collect();
        let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let batched = engine.get_many(&key_refs);
        for (key, got) in key_refs.iter().zip(batched) {
            assert_eq!(got, engine.get(key), "key {key}");
        }
    }

    #[test]
    fn get_many_handles_expired_items() {
        let engine = ShardedRpEngine::new();
        engine.set("live", Item::new(0, "x"));
        let mut stale = Item::new(0, "y");
        stale.expires_at = Some(Instant::now() - Duration::from_millis(1));
        engine.set("stale", stale);
        assert_eq!(engine.len(), 2);
        let got = engine.get_many(&["live", "stale", "missing"]);
        assert!(got[0].is_some());
        assert!(got[1].is_none());
        assert!(got[2].is_none());
        assert_eq!(engine.len(), 1, "expired item removed lazily by the batch");
        assert_eq!(engine.stats().expirations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let engine = ShardedRpEngine::with_shards_and_capacity(4, 8);
        for i in 0..12 {
            engine.set(&format!("k{i}"), Item::new(0, "x"));
        }
        assert!(engine.len() <= 8);
        assert!(engine.stats().evicted() >= 4);
    }

    #[test]
    fn index_shards_resize_independently_under_load() {
        // Inline-resize flavor: growth is synchronous with the SETs.
        let engine = ShardedRpEngine::with_shards_capacity_and_maintenance(4, 100_000, false);
        let before = engine.index_buckets();
        for i in 0..16_384 {
            engine.set(&format!("key-{i}"), Item::new(0, "v"));
        }
        assert!(
            engine.index_buckets() > before,
            "expected sharded index auto-expansion ({} -> {})",
            before,
            engine.index_buckets()
        );
        assert_eq!(engine.len(), 16_384);
        let lens = engine.shard_lens();
        assert!(lens.iter().all(|&l| l > 0), "unbalanced shards: {lens:?}");
    }

    #[test]
    fn maintained_sets_never_wait_and_index_grows_in_background() {
        let engine = ShardedRpEngine::with_shards_capacity_and_maintenance(4, 100_000, true);
        assert!(engine.maintained());
        let before_buckets = engine.index_buckets();
        let before_waits = rp_rcu::thread_synchronize_count();
        for i in 0..16_384 {
            engine.set(&format!("key-{i}"), Item::new(0, "v"));
        }
        assert_eq!(
            rp_rcu::thread_synchronize_count(),
            before_waits,
            "maintained SETs must never wait for readers"
        );
        // The maintenance thread grows the index asynchronously. Poll for a
        // *completed* resize (buckets grow at begin, before any grace wait
        // has been recorded, so polling on bucket count alone would race).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while engine
            .maint_stats()
            .expect("maintained engine has stats")
            .resizes_finished
            == 0
        {
            assert!(
                std::time::Instant::now() < deadline,
                "index never grew in the background: {:?}",
                engine.maint_stats()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(engine.index_buckets() > before_buckets);
        let maint = engine.maint_stats().expect("maintained engine has stats");
        assert!(maint.grace_waits >= 1);
        assert_eq!(engine.len(), 16_384);
        assert_eq!(
            engine.get("key-7").map(|i| i.data.to_vec()),
            Some(b"v".to_vec())
        );
    }

    #[test]
    fn qsbr_worker_housekeeping_grows_unmaintained_shards() {
        use crate::engine::{EngineReadCtx, ReadSide};
        std::thread::spawn(|| {
            // `--maint off` + QSBR workers: without housekeeping nothing
            // would ever resize the shards.
            let engine = ShardedRpEngine::with_shards_capacity_and_maintenance(4, 100_000, false);
            let mut ctx = EngineReadCtx::new(ReadSide::Qsbr);
            let before = engine.index_buckets();
            for i in 0..16_384 {
                engine.set(&format!("key-{i}"), Item::new(0, "v"));
            }
            assert_eq!(
                engine.index_buckets(),
                before,
                "shard resizes must be postponed while the worker is QSBR-online"
            );
            ctx.quiescent();
            ctx.with_offline(|| engine.housekeeping());
            assert!(
                engine.index_buckets() > before,
                "housekeeping must expand the postponed shards ({} -> {})",
                before,
                engine.index_buckets()
            );
            assert!(engine.get_via("key-9", &mut ctx).is_some());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn rp_kv_maint_env_values_parse() {
        assert!(super::maint_flag(None), "maintenance defaults to on");
        assert!(super::maint_flag(Some("on")));
        assert!(super::maint_flag(Some("1")));
        for off in ["off", "OFF", "0", "false", "no", " Off "] {
            assert!(!super::maint_flag(Some(off)), "{off:?} must disable");
        }
    }

    #[test]
    fn concurrent_gets_sets_and_batches() {
        use std::sync::atomic::AtomicBool;
        let engine = Arc::new(ShardedRpEngine::with_shards_and_capacity(8, 100_000));
        for i in 0..256 {
            engine.set(&format!("k{i}"), Item::new(0, format!("v{i}")));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for seed in 0..2_u64 {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut k = seed;
                while !stop.load(Ordering::Relaxed) {
                    k = (k * 13 + 1) % 256;
                    let item = engine.get(&format!("k{k}")).expect("stable key present");
                    assert!(item.data.starts_with(b"v"));
                }
            }));
        }
        {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let keys: Vec<String> = (0..64).map(|i| format!("k{i}")).collect();
                    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                    for got in engine.get_many(&key_refs) {
                        assert!(got.expect("stable key present").data.starts_with(b"v"));
                    }
                }
            }));
        }
        for round in 0..2000_u32 {
            let k = round % 256;
            engine.set(&format!("k{k}"), Item::new(round, format!("v{k}-{round}")));
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
    }
}
