//! The storage-engine abstraction.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::item::Item;

/// Outcome of a store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The item was stored.
    Stored,
    /// The item was not stored (e.g. the payload exceeds the per-item limit).
    NotStored,
}

/// Operation counters an engine maintains (mirrors the subset of memcached's
/// `stats` output the experiment cares about).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// GET requests that found a live item.
    pub get_hits: AtomicU64,
    /// GET requests that found nothing (or only an expired item).
    pub get_misses: AtomicU64,
    /// Successful SETs.
    pub sets: AtomicU64,
    /// Successful DELETEs.
    pub deletes: AtomicU64,
    /// Items evicted to stay under the capacity limit.
    pub evictions: AtomicU64,
    /// Items dropped because they were found expired.
    pub expirations: AtomicU64,
}

impl CacheStats {
    pub(crate) fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// GET hit count.
    pub fn hits(&self) -> u64 {
        self.get_hits.load(Ordering::Relaxed)
    }

    /// GET miss count.
    pub fn misses(&self) -> u64 {
        self.get_misses.load(Ordering::Relaxed)
    }

    /// Eviction count.
    pub fn evicted(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// A cache storage engine: the component the paper swaps out between stock
/// memcached (global lock) and the relativistic patch.
pub trait CacheEngine: Send + Sync {
    /// Engine name used in benchmark output (`"default"` / `"rp"`).
    fn name(&self) -> &'static str;

    /// Looks up `key`, returning a copy of the item if present and not
    /// expired.
    fn get(&self, key: &str) -> Option<Item>;

    /// Looks up several keys, returning results in the same order.
    ///
    /// The default implementation loops over [`CacheEngine::get`]; engines
    /// with a batched read path (the sharded relativistic engine groups
    /// keys by shard and pins one guard per shard) override it. Multi-key
    /// `get` protocol commands are served through this method.
    fn get_many(&self, keys: &[&str]) -> Vec<Option<Item>> {
        keys.iter().map(|key| self.get(key)).collect()
    }

    /// Stores `item` under `key`, replacing any previous value.
    fn set(&self, key: &str, item: Item) -> StoreOutcome;

    /// Deletes `key`. Returns `true` if it was present.
    fn delete(&self, key: &str) -> bool;

    /// Number of items currently stored (including not-yet-collected
    /// expired items).
    fn len(&self) -> usize;

    /// Returns `true` if the cache holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters.
    fn stats(&self) -> &CacheStats;

    /// Removes expired items eagerly (both engines also expire lazily on
    /// GET). Returns how many were removed.
    fn purge_expired(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_counters_accumulate() {
        let stats = CacheStats::default();
        stats.bump(&stats.get_hits);
        stats.bump(&stats.get_hits);
        stats.bump(&stats.get_misses);
        stats.bump(&stats.evictions);
        assert_eq!(stats.hits(), 2);
        assert_eq!(stats.misses(), 1);
        assert_eq!(stats.evicted(), 1);
    }
}
