//! The storage-engine abstraction.

use std::sync::atomic::{AtomicU64, Ordering};

use rp_hash::QsbrReadHandle;

use crate::item::Item;

/// Which read-side RCU flavor serves GET lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadSide {
    /// Epoch-style delimited readers ([`rp_rcu::pin`]): two thread-private
    /// stores and two fences per lookup section, no registration duties.
    /// The threaded server always uses this flavor.
    Ebr,
    /// Quiescent-state-based readers ([`rp_hash::QsbrReadHandle`]): the
    /// lookup itself is entirely free — no store, no fence — but the
    /// serving thread must announce quiescent states between batches and go
    /// offline while blocked. The event-loop server's default: its pinned
    /// workers have natural quiescent points between `epoll_wait` batches.
    #[default]
    Qsbr,
}

impl ReadSide {
    /// Parses `ebr` / `qsbr` (case-insensitive).
    pub fn parse(value: &str) -> Result<ReadSide, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "ebr" => Ok(ReadSide::Ebr),
            "qsbr" => Ok(ReadSide::Qsbr),
            other => Err(format!("bad read side {other:?} (ebr | qsbr)")),
        }
    }

    /// The flag/env spelling of this flavor.
    pub fn as_str(self) -> &'static str {
        match self {
            ReadSide::Ebr => "ebr",
            ReadSide::Qsbr => "qsbr",
        }
    }
}

/// A serving thread's read-side context, passed down to the engine's GET
/// path.
///
/// For [`ReadSide::Ebr`] this is empty — the engine pins a guard per lookup
/// as it always did. For [`ReadSide::Qsbr`] it owns the thread's
/// [`QsbrReadHandle`]; engines with a QSBR read path route lookups through
/// it, and the owner (an event-loop worker) drives the quiescent rhythm via
/// [`EngineReadCtx::quiescent`] / [`EngineReadCtx::park`] /
/// [`EngineReadCtx::unpark`].
///
/// The context is `!Send` in its QSBR form (the handle is pinned to its
/// thread); the event loop creates one per worker, on the worker.
#[derive(Debug, Default)]
pub struct EngineReadCtx {
    qsbr: Option<QsbrReadHandle>,
}

impl EngineReadCtx {
    /// Creates the context for `read_side`, registering a QSBR handle for
    /// the calling thread if that flavor was chosen.
    pub fn new(read_side: ReadSide) -> EngineReadCtx {
        EngineReadCtx {
            qsbr: match read_side {
                ReadSide::Ebr => None,
                ReadSide::Qsbr => Some(QsbrReadHandle::register()),
            },
        }
    }

    /// The EBR context (what [`crate::server::execute`] uses).
    pub fn ebr() -> EngineReadCtx {
        EngineReadCtx::default()
    }

    /// The flavor this context serves.
    pub fn read_side(&self) -> ReadSide {
        if self.qsbr.is_some() {
            ReadSide::Qsbr
        } else {
            ReadSide::Ebr
        }
    }

    /// The QSBR handle, when this context serves the QSBR flavor.
    ///
    /// Returned as a shared borrow of `self`: references the engine obtains
    /// through the handle keep `self` borrowed, so the quiescent-rhythm
    /// methods (`&mut self`) cannot be called while any lookup result is
    /// alive — the same compile-time guarantee [`QsbrReadHandle`] itself
    /// provides.
    pub fn qsbr_handle(&self) -> Option<&QsbrReadHandle> {
        self.qsbr.as_ref()
    }

    /// Announces a quiescent state (no-op for EBR). Event-loop workers call
    /// this once per event batch.
    pub fn quiescent(&mut self) {
        if let Some(handle) = self.qsbr.as_mut() {
            handle.quiescent_state();
        }
    }

    /// Marks the thread offline before blocking (no-op for EBR), so a long
    /// `epoll_wait` park never stalls writers waiting for readers.
    pub fn park(&mut self) {
        if let Some(handle) = self.qsbr.as_mut() {
            handle.offline();
        }
    }

    /// Marks the thread online again after waking (no-op for EBR).
    pub fn unpark(&mut self) {
        if let Some(handle) = self.qsbr.as_mut() {
            handle.online();
        }
    }

    /// Runs `f` with the QSBR handle offline (directly for EBR), so `f`
    /// may wait for grace periods without deadlocking on this thread's own
    /// read-side state — the window [`CacheEngine::housekeeping`] runs in.
    pub fn with_offline<R>(&mut self, f: impl FnOnce() -> R) -> R {
        match self.qsbr.as_mut() {
            Some(handle) => handle.offline_scope(f),
            None => f(),
        }
    }
}

/// Outcome of a store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The item was stored.
    Stored,
    /// The item was not stored (e.g. the payload exceeds the per-item limit).
    NotStored,
}

/// Operation counters an engine maintains (mirrors the subset of memcached's
/// `stats` output the experiment cares about).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// GET requests that found a live item.
    pub get_hits: AtomicU64,
    /// GET requests that found nothing (or only an expired item).
    pub get_misses: AtomicU64,
    /// Successful SETs.
    pub sets: AtomicU64,
    /// Successful DELETEs.
    pub deletes: AtomicU64,
    /// Items evicted to stay under the capacity limit.
    pub evictions: AtomicU64,
    /// Items dropped because they were found expired.
    pub expirations: AtomicU64,
}

impl CacheStats {
    pub(crate) fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// GET hit count.
    pub fn hits(&self) -> u64 {
        self.get_hits.load(Ordering::Relaxed)
    }

    /// GET miss count.
    pub fn misses(&self) -> u64 {
        self.get_misses.load(Ordering::Relaxed)
    }

    /// Eviction count.
    pub fn evicted(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Zeroes every counter (`STATS RESET`). Relaxed stores: counts
    /// recorded concurrently with the reset land on either side of it.
    pub fn reset(&self) {
        for counter in [
            &self.get_hits,
            &self.get_misses,
            &self.sets,
            &self.deletes,
            &self.evictions,
            &self.expirations,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }
}

/// A cache storage engine: the component the paper swaps out between stock
/// memcached (global lock) and the relativistic patch.
pub trait CacheEngine: Send + Sync {
    /// Engine name used in benchmark output (`"default"` / `"rp"`).
    fn name(&self) -> &'static str;

    /// Looks up `key`, returning a copy of the item if present and not
    /// expired.
    fn get(&self, key: &str) -> Option<Item>;

    /// Looks up several keys, returning results in the same order.
    ///
    /// The default implementation loops over [`CacheEngine::get`]; engines
    /// with a batched read path (the sharded relativistic engine groups
    /// keys by shard and pins one guard per shard) override it. Multi-key
    /// `get` protocol commands are served through this method.
    fn get_many(&self, keys: &[&str]) -> Vec<Option<Item>> {
        keys.iter().map(|key| self.get(key)).collect()
    }

    /// [`CacheEngine::get`] through an explicit read-side context.
    ///
    /// The default ignores the context and uses the engine's ordinary
    /// (EBR) lookup; relativistic engines override it to serve
    /// [`ReadSide::Qsbr`] contexts through their barrier-free QSBR path.
    fn get_via(&self, key: &str, ctx: &mut EngineReadCtx) -> Option<Item> {
        let _ = ctx;
        self.get(key)
    }

    /// [`CacheEngine::get_many`] through an explicit read-side context (see
    /// [`CacheEngine::get_via`]).
    ///
    /// The default loops over [`CacheEngine::get_via`], so an engine that
    /// overrides only the single-key method still serves batches through
    /// its chosen flavor; engines with a batched read path (the sharded
    /// engine) override this too.
    fn get_many_via(&self, keys: &[&str], ctx: &mut EngineReadCtx) -> Vec<Option<Item>> {
        keys.iter().map(|key| self.get_via(key, ctx)).collect()
    }

    /// [`CacheEngine::get_via`] keyed by raw bytes — the zero-allocation
    /// lookup the event-loop server's borrowed request path uses, with the
    /// key a slice straight out of the connection's read buffer.
    ///
    /// The default validates UTF-8 (a scan, not a copy) and delegates to
    /// [`CacheEngine::get_via`]; the relativistic engines override it to
    /// hash the bytes once and probe their `String`-keyed index through a
    /// raw matching lookup, skipping even the validation scan. Keys that
    /// are not valid UTF-8 cannot exist in the cache (every stored key came
    /// from a validated command line), so they simply miss.
    fn get_ref(&self, key: &[u8], ctx: &mut EngineReadCtx) -> Option<Item> {
        std::str::from_utf8(key)
            .ok()
            .and_then(|key| self.get_via(key, ctx))
    }

    /// Housekeeping an external caller with a natural quiescent point can
    /// drive on the engine's behalf: postponed automatic index resizes and
    /// deferred reclamation.
    ///
    /// Threads serving QSBR reads postpone all grace-period work (waiting
    /// would deadlock on their own read-side state); the event-loop worker
    /// calls this between batches **while its QSBR handle is offline**
    /// ([`EngineReadCtx::with_offline`]), so an all-QSBR-worker deployment
    /// still resizes its index. Must be cheap when there is nothing to do;
    /// the default does nothing.
    fn housekeeping(&self) {}

    /// Stores `item` under `key`, replacing any previous value.
    fn set(&self, key: &str, item: Item) -> StoreOutcome;

    /// Deletes `key`. Returns `true` if it was present.
    fn delete(&self, key: &str) -> bool;

    /// Number of items currently stored (including not-yet-collected
    /// expired items).
    fn len(&self) -> usize;

    /// Returns `true` if the cache holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters.
    fn stats(&self) -> &CacheStats;

    /// Removes expired items eagerly (both engines also expire lazily on
    /// GET). Returns how many were removed.
    fn purge_expired(&self) -> usize;

    /// Scrape-time hook: push engine-derived level gauges (e.g. shard
    /// imbalance) into the `rp-obs` registry. Called by the `STATS`
    /// telemetry renderer just before it reads the registry; the default
    /// does nothing.
    fn observe_gauges(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_counters_accumulate() {
        let stats = CacheStats::default();
        stats.bump(&stats.get_hits);
        stats.bump(&stats.get_hits);
        stats.bump(&stats.get_misses);
        stats.bump(&stats.evictions);
        assert_eq!(stats.hits(), 2);
        assert_eq!(stats.misses(), 1);
        assert_eq!(stats.evicted(), 1);
    }
}
