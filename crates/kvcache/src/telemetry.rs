//! The live `STATS` telemetry endpoint.
//!
//! The uppercase `STATS` verb renders the whole `rp-obs` registry —
//! per-opcode latency histograms, reactor counters, maintenance and
//! resize timings, grace-period latencies — as Prometheus-style
//! exposition text, prefixed by a handful of engine-level metrics read
//! from the serving engine itself. The text is written straight through
//! the server's [`BufWrite`] path (the same zero-copy queue responses
//! use), framed by a trailing `END\r\n` so clients can read it off a
//! shared connection without special casing.
//!
//! `STATS RESET` zeroes counters and histograms (level gauges keep their
//! value — their owners re-assert them) and `STATS TRACE` dumps the
//! timestamped event ring. The lowercase memcached `stats` command is
//! untouched.

use rp_net::BufWrite;
use rp_obs::MetricSink;

use crate::engine::CacheEngine;

/// Bridges the server's [`BufWrite`] response queue to the dependency-free
/// [`MetricSink`] the `rp-obs` renderer writes into.
struct SinkAdapter<'a, W: BufWrite>(&'a mut W);

impl<W: BufWrite> MetricSink for SinkAdapter<'_, W> {
    fn put_bytes(&mut self, bytes: &[u8]) {
        self.0.put(bytes);
    }
}

/// Renders the engine-level metrics (item count and the classic cache
/// counters) as Prometheus text. Split out from [`render_prometheus`] so
/// its output — a pure function of the engine's state — can be pinned
/// byte-for-byte by tests.
pub fn render_engine_metrics(engine: &dyn CacheEngine, out: &mut impl BufWrite) {
    let mut sink = SinkAdapter(out);
    let stats = engine.stats();
    rp_obs::render::gauge(
        &mut sink,
        "engine_items",
        "Items currently stored",
        engine.len() as u64,
    );
    rp_obs::render::counter(
        &mut sink,
        "engine_get_hits_total",
        "GETs that found a live item",
        stats.hits(),
    );
    rp_obs::render::counter(
        &mut sink,
        "engine_get_misses_total",
        "GETs that found nothing live",
        stats.misses(),
    );
    rp_obs::render::counter(
        &mut sink,
        "engine_sets_total",
        "Successful SETs",
        stats.sets.load(std::sync::atomic::Ordering::Relaxed),
    );
    rp_obs::render::counter(
        &mut sink,
        "engine_deletes_total",
        "Successful DELETEs",
        stats.deletes.load(std::sync::atomic::Ordering::Relaxed),
    );
    rp_obs::render::counter(
        &mut sink,
        "engine_evictions_total",
        "Items evicted to stay under capacity",
        stats.evicted(),
    );
    rp_obs::render::counter(
        &mut sink,
        "engine_expirations_total",
        "Items dropped because they were expired",
        stats.expirations.load(std::sync::atomic::Ordering::Relaxed),
    );
}

/// Serves `STATS`: engine-level metrics, then the full `rp-obs` registry,
/// closed by the `END\r\n` frame marker.
pub fn render_prometheus(engine: &dyn CacheEngine, out: &mut impl BufWrite) {
    // Let the engine push scrape-time level gauges (shard imbalance) into
    // the registry before it is read.
    engine.observe_gauges();
    render_engine_metrics(engine, out);
    rp_obs::global().render_prometheus(&mut SinkAdapter(out));
    out.put(b"END\r\n");
}

/// Serves `STATS RESET`: zeroes the engine's counters and the `rp-obs`
/// registry (counters and histograms; level gauges keep their value), then
/// acknowledges.
pub fn reset(engine: &dyn CacheEngine, out: &mut impl BufWrite) {
    engine.stats().reset();
    rp_obs::global().reset();
    out.put(b"RESET\r\n");
}

/// Serves `STATS TRACE` / `STATS TRACE <n>` against `registry`: a
/// `TRACE-RING` header documenting the ring's capacity and lifetime event
/// count, then the retained events (all of them, or only the most recent
/// `n`) as `TRACE` lines, closed by `END\r\n`.
pub fn render_trace_from(registry: &rp_obs::Obs, limit: Option<usize>, out: &mut impl BufWrite) {
    let mut sink = SinkAdapter(out);
    sink.put_bytes(b"TRACE-RING capacity=");
    rp_obs::render::put_u64(&mut sink, registry.trace.capacity() as u64);
    sink.put_bytes(b" recorded=");
    rp_obs::render::put_u64(&mut sink, registry.trace.recorded());
    sink.put_bytes(b"\r\n");
    registry.render_trace_recent(limit, &mut sink);
    out.put(b"END\r\n");
}

/// Serves `STATS TRACE` / `STATS TRACE <n>` against the process-global
/// registry.
pub fn render_trace(limit: Option<usize>, out: &mut impl BufWrite) {
    render_trace_from(rp_obs::global(), limit, out);
}

/// Serves `STATS SLOW` against `registry`: a `SLOW-LOG` header documenting
/// the log's capacity, threshold, and lifetime count, then one
/// `SLOW <seq> <t_us> <worker> <request_id> <op> <key_hash> <total_ns>
/// <decode_ns> <index_ns> <serialize_ns>` line per retained span, oldest
/// first, closed by `END\r\n`.
pub fn render_slow_from(registry: &rp_obs::Obs, out: &mut impl BufWrite) {
    let mut sink = SinkAdapter(out);
    let log = &registry.kv.slow;
    sink.put_bytes(b"SLOW-LOG capacity=");
    rp_obs::render::put_u64(&mut sink, log.capacity() as u64);
    sink.put_bytes(b" threshold_ns=");
    rp_obs::render::put_u64(&mut sink, log.threshold_ns());
    sink.put_bytes(b" logged=");
    rp_obs::render::put_u64(&mut sink, log.recorded());
    sink.put_bytes(b"\r\n");
    for entry in log.entries() {
        sink.put_bytes(b"SLOW ");
        for value in [
            entry.seq,
            entry.at_us,
            entry.span.worker,
            entry.span.request_id,
        ] {
            rp_obs::render::put_u64(&mut sink, value);
            sink.put_bytes(b" ");
        }
        sink.put_bytes(rp_obs::slow::op_label(entry.span.op).as_bytes());
        for value in [
            entry.span.key_hash,
            entry.span.total_ns,
            entry.span.decode_ns,
            entry.span.index_ns,
            entry.span.serialize_ns,
        ] {
            sink.put_bytes(b" ");
            rp_obs::render::put_u64(&mut sink, value);
        }
        sink.put_bytes(b"\r\n");
    }
    out.put(b"END\r\n");
}

/// Serves `STATS SLOW` against the process-global registry.
pub fn render_slow(out: &mut impl BufWrite) {
    render_slow_from(rp_obs::global(), out);
}

/// Serves `STATS JSON` against `registry`: the engine metrics and the
/// whole registry as one JSON object on a single line — the same data (and
/// metric names) as the Prometheus text form, in one stable format
/// scrapers can parse without a JSON library — closed by `END\r\n`.
pub fn render_json_from(registry: &rp_obs::Obs, engine: &dyn CacheEngine, out: &mut impl BufWrite) {
    let mut sink = SinkAdapter(out);
    let mut root = rp_obs::render::JsonObject::begin(&mut sink);
    let stats = engine.stats();
    let mut eng = root.nested("engine");
    eng.field("engine_items", engine.len() as u64);
    eng.field("engine_get_hits_total", stats.hits());
    eng.field("engine_get_misses_total", stats.misses());
    eng.field(
        "engine_sets_total",
        stats.sets.load(std::sync::atomic::Ordering::Relaxed),
    );
    eng.field(
        "engine_deletes_total",
        stats.deletes.load(std::sync::atomic::Ordering::Relaxed),
    );
    eng.field("engine_evictions_total", stats.evicted());
    eng.field(
        "engine_expirations_total",
        stats.expirations.load(std::sync::atomic::Ordering::Relaxed),
    );
    eng.end();
    registry.render_json_groups(&mut root);
    root.end();
    out.put(b"\r\nEND\r\n");
}

/// Serves `STATS JSON` against the process-global registry.
pub fn render_json(engine: &dyn CacheEngine, out: &mut impl BufWrite) {
    // Scrape-time level gauges (shard imbalance) first, like `STATS`.
    engine.observe_gauges();
    render_json_from(rp_obs::global(), engine, out);
}

/// Serves `STATS WORKER <n>` against `registry`: one worker's per-shard
/// metrics rendered verbatim (requests, decode errors, per-opcode latency
/// and epoll batch-size summaries), closed by the `END\r\n` frame marker.
/// The merged `STATS` scrape aggregates shards, which averages accept-shard
/// imbalance away; this view exposes one shard as recorded. Split from
/// [`render_worker`] so its output — a pure function of the registry — can
/// be pinned byte-for-byte by tests against a private registry.
pub fn render_worker_from(registry: &rp_obs::Obs, worker: usize, out: &mut impl BufWrite) {
    registry.render_worker(worker, &mut SinkAdapter(out));
    out.put(b"END\r\n");
}

/// Serves `STATS WORKER <n>` against the process-global registry.
pub fn render_worker(worker: usize, out: &mut impl BufWrite) {
    render_worker_from(rp_obs::global(), worker, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Item, LockEngine};

    /// The engine-level section is a pure function of the engine's state:
    /// pin its exact wire bytes (satellite of the exposition-format
    /// contract; the shared-registry sections are covered structurally in
    /// the server tests, since parallel tests write to the same registry).
    #[test]
    fn engine_metrics_exact_bytes() {
        let engine = LockEngine::new();
        engine.set("k", Item::new(0, "v"));
        engine.get("k");
        engine.get("missing");
        engine.delete("k");
        let mut out = Vec::new();
        render_engine_metrics(&engine, &mut out);
        let expected = "\
# HELP engine_items Items currently stored\n\
# TYPE engine_items gauge\n\
engine_items 0\n\
# HELP engine_get_hits_total GETs that found a live item\n\
# TYPE engine_get_hits_total counter\n\
engine_get_hits_total 1\n\
# HELP engine_get_misses_total GETs that found nothing live\n\
# TYPE engine_get_misses_total counter\n\
engine_get_misses_total 1\n\
# HELP engine_sets_total Successful SETs\n\
# TYPE engine_sets_total counter\n\
engine_sets_total 1\n\
# HELP engine_deletes_total Successful DELETEs\n\
# TYPE engine_deletes_total counter\n\
engine_deletes_total 1\n\
# HELP engine_evictions_total Items evicted to stay under capacity\n\
# TYPE engine_evictions_total counter\n\
engine_evictions_total 0\n\
# HELP engine_expirations_total Items dropped because they were expired\n\
# TYPE engine_expirations_total counter\n\
engine_expirations_total 0\n";
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }

    /// The per-worker view is a pure function of one shard's recordings:
    /// pin its exact wire bytes. Values below 16 land in the histogram's
    /// exact buckets, so every summary sample is deterministic. A private
    /// registry keeps parallel tests (which write the global one) out.
    #[test]
    fn worker_render_exact_bytes() {
        let registry = rp_obs::Obs::default();
        let shard = registry.kv.shards.for_worker(3);
        shard.requests.add(7);
        for _ in 0..3 {
            shard.get_ns.record(7);
        }
        shard.set_ns.record(2);
        registry.net.batch_size.for_worker(3).record(4);
        let mut out = Vec::new();
        render_worker_from(&registry, 3, &mut out);
        let expected = "\
# HELP kv_worker Worker shard this view covers (ordinals wrap at the shard count).\n\
# TYPE kv_worker gauge\n\
kv_worker 3\n\
# HELP kv_worker_requests_total Requests served by this worker.\n\
# TYPE kv_worker_requests_total counter\n\
kv_worker_requests_total 7\n\
# HELP kv_worker_decode_errors_total Protocol decode errors on this worker's connections.\n\
# TYPE kv_worker_decode_errors_total counter\n\
kv_worker_decode_errors_total 0\n\
# HELP kv_worker_get_latency_ns GET service latency on this worker.\n\
# TYPE kv_worker_get_latency_ns summary\n\
kv_worker_get_latency_ns{quantile=\"0.5\"} 7\n\
kv_worker_get_latency_ns{quantile=\"0.9\"} 7\n\
kv_worker_get_latency_ns{quantile=\"0.99\"} 7\n\
kv_worker_get_latency_ns{quantile=\"0.999\"} 7\n\
kv_worker_get_latency_ns_sum 21\n\
kv_worker_get_latency_ns_count 3\n\
kv_worker_get_latency_ns_max 7\n\
# HELP kv_worker_set_latency_ns SET service latency on this worker.\n\
# TYPE kv_worker_set_latency_ns summary\n\
kv_worker_set_latency_ns{quantile=\"0.5\"} 2\n\
kv_worker_set_latency_ns{quantile=\"0.9\"} 2\n\
kv_worker_set_latency_ns{quantile=\"0.99\"} 2\n\
kv_worker_set_latency_ns{quantile=\"0.999\"} 2\n\
kv_worker_set_latency_ns_sum 2\n\
kv_worker_set_latency_ns_count 1\n\
kv_worker_set_latency_ns_max 2\n\
# HELP kv_worker_delete_latency_ns DELETE service latency on this worker.\n\
# TYPE kv_worker_delete_latency_ns summary\n\
kv_worker_delete_latency_ns{quantile=\"0.5\"} 0\n\
kv_worker_delete_latency_ns{quantile=\"0.9\"} 0\n\
kv_worker_delete_latency_ns{quantile=\"0.99\"} 0\n\
kv_worker_delete_latency_ns{quantile=\"0.999\"} 0\n\
kv_worker_delete_latency_ns_sum 0\n\
kv_worker_delete_latency_ns_count 0\n\
kv_worker_delete_latency_ns_max 0\n\
# HELP kv_worker_other_latency_ns Service latency of remaining opcodes on this worker.\n\
# TYPE kv_worker_other_latency_ns summary\n\
kv_worker_other_latency_ns{quantile=\"0.5\"} 0\n\
kv_worker_other_latency_ns{quantile=\"0.9\"} 0\n\
kv_worker_other_latency_ns{quantile=\"0.99\"} 0\n\
kv_worker_other_latency_ns{quantile=\"0.999\"} 0\n\
kv_worker_other_latency_ns_sum 0\n\
kv_worker_other_latency_ns_count 0\n\
kv_worker_other_latency_ns_max 0\n\
# HELP net_worker_batch_size Readiness events per epoll_wait wake on this worker.\n\
# TYPE net_worker_batch_size summary\n\
net_worker_batch_size{quantile=\"0.5\"} 4\n\
net_worker_batch_size{quantile=\"0.9\"} 4\n\
net_worker_batch_size{quantile=\"0.99\"} 4\n\
net_worker_batch_size{quantile=\"0.999\"} 4\n\
net_worker_batch_size_sum 4\n\
net_worker_batch_size_count 1\n\
net_worker_batch_size_max 4\n\
END\r\n";
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }

    #[test]
    fn prometheus_render_is_framed_and_covers_every_layer() {
        let engine = LockEngine::new();
        engine.set("k", Item::new(0, "v"));
        let mut out = Vec::new();
        render_prometheus(&engine, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("# HELP engine_items"), "{text}");
        assert!(text.ends_with("END\r\n"), "{text}");
        for family in [
            "kv_requests_total",
            "kv_get_latency_ns",
            "net_accepts_total",
            "maint_slice_ns",
            "resize_grace_wait_ns",
            "rcu_sync_ebr_ns",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn trace_render_is_framed() {
        let mut out = Vec::new();
        render_trace(None, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.ends_with("END\r\n"));
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(
            header.starts_with("TRACE-RING capacity=") && header.contains(" recorded="),
            "unexpected header {header:?}"
        );
        for line in lines {
            if line != "END" {
                assert!(line.starts_with("TRACE "), "unexpected line {line:?}");
            }
        }
    }

    /// `STATS TRACE <n>` keeps only the newest `n` events; the header still
    /// documents the full ring. A private registry keeps parallel tests out.
    #[test]
    fn trace_render_honors_the_count() {
        let registry = rp_obs::Obs::default();
        for i in 0..5 {
            registry
                .trace
                .record(rp_obs::TraceKind::ResizeBegin, 100 + i);
        }
        let mut out = Vec::new();
        render_trace_from(&registry, Some(2), &mut out);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("TRACE-RING capacity="));
        assert!(lines[0].ends_with(" recorded=5"), "{:?}", lines[0]);
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[1].starts_with("TRACE 4 "), "{:?}", lines[1]);
        assert!(lines[2].starts_with("TRACE 5 "), "{:?}", lines[2]);
        assert_eq!(lines[3], "END");
    }

    /// `STATS SLOW` is a pure function of the registry's slow log except
    /// for each entry's wall-clock stamp: pin the header and every other
    /// field of the one recorded span.
    #[test]
    fn slow_render_reports_the_span_fields() {
        let registry = rp_obs::Obs::default();
        registry.kv.slow.set_threshold_ns(100);
        registry.kv.slow.record(&rp_obs::SlowSpan {
            worker: 3,
            request_id: 9,
            op: rp_obs::slow::OP_GET,
            key_hash: 7,
            total_ns: 500,
            decode_ns: 100,
            index_ns: 200,
            serialize_ns: 150,
        });
        let mut out = Vec::new();
        render_slow_from(&registry, &mut out);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "SLOW-LOG capacity=64 threshold_ns=100 logged=1");
        let fields: Vec<&str> = lines[1].split(' ').collect();
        assert_eq!(fields[0], "SLOW");
        assert_eq!(fields[1], "1", "first span gets seq 1");
        // fields[2] is the wall-clock stamp; everything after is pinned.
        assert_eq!(
            &fields[3..],
            ["3", "9", "get", "7", "500", "100", "200", "150"]
        );
        assert_eq!(lines[2], "END");
    }

    /// `STATS JSON` carries the same data as the Prometheus text form in
    /// one line scrapers can parse without a JSON library: pin its exact
    /// wire bytes against a private registry.
    #[test]
    fn json_render_exact_bytes() {
        let engine = LockEngine::new();
        engine.set("k", Item::new(0, "v"));
        engine.get("k");
        engine.get("missing");
        engine.delete("k");
        let registry = rp_obs::Obs::default();
        registry.net.accepts_total.inc();
        let mut out = Vec::new();
        render_json_from(&registry, &engine, &mut out);
        let zero = "{\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0,\"sum\":0,\"count\":0,\"max\":0}";
        let expected = concat!(
            "{\"engine\":{\"engine_items\":0,\"engine_get_hits_total\":1,",
            "\"engine_get_misses_total\":1,\"engine_sets_total\":1,",
            "\"engine_deletes_total\":1,\"engine_evictions_total\":0,",
            "\"engine_expirations_total\":0},",
            "\"kv\":{\"kv_requests_total\":0,\"kv_decode_errors_total\":0,",
            "\"kv_get_latency_ns\":Z,\"kv_set_latency_ns\":Z,",
            "\"kv_delete_latency_ns\":Z,\"kv_other_latency_ns\":Z,",
            "\"kv_slow_logged_total\":0},",
            "\"net\":{\"net_accepts_total\":1,\"net_conns_shed_total\":0,",
            "\"net_accept_errors_total\":0,",
            "\"net_idle_reaped_total\":0,\"net_conn_panics_total\":0,",
            "\"net_accept_backoffs_total\":0,\"net_drains_expired_total\":0,",
            "\"net_watermark_trips_total\":0,",
            "\"net_backpressure_stalls_total\":0,",
            "\"net_flush_syscalls_total\":0,\"net_flush_segments_total\":0,",
            "\"net_connections\":0,\"net_bytes_buffered\":0,",
            "\"net_batch_size\":Z},",
            "\"maint\":{\"maint_slice_ns\":Z,\"maint_queue_depth\":0,",
            "\"maint_slices_total\":0,\"maint_worker_panics_total\":0},",
            "\"resize\":{\"resize_grace_wait_ns\":Z,\"resize_step_ns\":Z,",
            "\"resize_begun_total\":0,\"resize_finished_total\":0,",
            "\"shard_imbalance_milli\":0},",
            "\"rcu\":{\"rcu_sync_ebr_ns\":Z,\"rcu_sync_qsbr_ns\":Z,",
            "\"rcu_reclaim_pending\":0,\"rcu_reclaim_executed_total\":0,",
            "\"rcu_grace_stalls_total\":0}}\r\nEND\r\n",
        )
        .replace('Z', zero);
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }
}
