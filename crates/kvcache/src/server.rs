//! TCP servers speaking the memcached text protocol.
//!
//! Two front ends share one request-execution path ([`execute`]):
//!
//! * [`CacheServer`] — the original thread-per-connection server, kept as
//!   the baseline the event loop is benchmarked against.
//! * [`EventServer`] — the `rp-net` epoll event loop: a fixed worker pool
//!   serves any number of connections.
//!
//! [`ServerConfig`] selects between them (and carries the tuning shared by
//! the `kvcached` binary, the benchmarks and the tests); [`start_server`]
//! returns a [`ServerHandle`] that erases the choice.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use rp_net::BufWrite;

use crate::engine::{CacheEngine, EngineReadCtx, ReadSide, StoreOutcome};
use crate::event_server::EventServer;
use crate::protocol::{
    write_value_header, Command, Decoded, RefDecoder, RequestRef, Response, StatsSub,
};
use crate::telemetry;

/// Version string reported by the `version` command.
pub const SERVER_VERSION: &str = "relativist-kvcache 0.1.0";

/// Which connection-handling architecture a server uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// One OS thread per connection (the historical baseline).
    Threaded,
    /// The `rp-net` epoll reactor: a fixed pool of worker threads.
    EventLoop,
}

/// How to run a cache server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP port on 127.0.0.1 (0 picks a free port).
    pub port: u16,
    /// Connection-handling architecture.
    pub mode: ServerMode,
    /// Event-loop worker threads (ignored by [`ServerMode::Threaded`]).
    pub workers: usize,
    /// Read-side RCU flavor serving GETs in event-loop mode (the threaded
    /// server always uses EBR — its per-connection threads block in
    /// `read(2)` with no natural quiescent points). Defaults to QSBR: the
    /// pinned reactor workers announce a quiescent state per event batch
    /// and go offline while parked, making lookups entirely barrier-free.
    pub read_side: ReadSide,
    /// How long a graceful event-loop shutdown keeps flushing responses.
    pub drain_timeout: Duration,
    /// Close event-loop connections that make no progress for this long
    /// (`None` never reaps; threaded mode relies on its read timeout).
    pub idle_timeout: Option<Duration>,
    /// Close an event-loop connection after serving this many requests
    /// (`None` is unlimited). A defensive per-peer budget for public
    /// deployments.
    pub max_requests_per_conn: Option<u64>,
    /// Event-loop admission wall: connections over this count are shed at
    /// accept with a `SERVER_ERROR busy` reply (`usize::MAX` = unlimited).
    pub max_connections: usize,
    /// Event-loop global byte budget: once this many bytes sit in
    /// connection buffers across all workers, new accepts are shed and
    /// slow-reader connections stop being read until the level drains
    /// (`usize::MAX` = unlimited).
    pub max_total_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            mode: ServerMode::EventLoop,
            workers: 2,
            read_side: ReadSide::default(),
            drain_timeout: Duration::from_secs(5),
            idle_timeout: None,
            max_requests_per_conn: None,
            max_connections: usize::MAX,
            max_total_bytes: usize::MAX,
        }
    }
}

impl ServerConfig {
    /// The thread-per-connection baseline.
    pub fn threaded() -> ServerConfig {
        ServerConfig {
            mode: ServerMode::Threaded,
            ..ServerConfig::default()
        }
    }

    /// The epoll event loop with `workers` reactor threads.
    pub fn event_loop(workers: usize) -> ServerConfig {
        ServerConfig {
            mode: ServerMode::EventLoop,
            workers: workers.max(1),
            ..ServerConfig::default()
        }
    }

    /// Sets the port.
    pub fn with_port(mut self, port: u16) -> ServerConfig {
        self.port = port;
        self
    }

    /// Sets the read-side flavor (event-loop mode only).
    pub fn with_read_side(mut self, read_side: ReadSide) -> ServerConfig {
        self.read_side = read_side;
        self
    }
}

/// A running cache server of either [`ServerMode`].
pub enum ServerHandle {
    /// Thread-per-connection.
    Threaded(CacheServer),
    /// Epoll event loop.
    EventLoop(EventServer),
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        match self {
            ServerHandle::Threaded(s) => s.addr(),
            ServerHandle::EventLoop(s) => s.addr(),
        }
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<dyn CacheEngine> {
        match self {
            ServerHandle::Threaded(s) => s.engine(),
            ServerHandle::EventLoop(s) => s.engine(),
        }
    }

    /// The architecture this handle runs.
    pub fn mode(&self) -> ServerMode {
        match self {
            ServerHandle::Threaded(_) => ServerMode::Threaded,
            ServerHandle::EventLoop(_) => ServerMode::EventLoop,
        }
    }

    /// Stops the server (graceful drain in event-loop mode).
    pub fn shutdown(&mut self) {
        match self {
            ServerHandle::Threaded(s) => s.shutdown(),
            ServerHandle::EventLoop(s) => s.shutdown(),
        }
    }
}

/// Starts a server for `engine` as described by `config`.
pub fn start_server(
    engine: Arc<dyn CacheEngine>,
    config: &ServerConfig,
) -> std::io::Result<ServerHandle> {
    match config.mode {
        ServerMode::Threaded => CacheServer::start(engine, config.port).map(ServerHandle::Threaded),
        ServerMode::EventLoop => {
            EventServer::start_from(engine, config).map(ServerHandle::EventLoop)
        }
    }
}

/// A running cache server.
///
/// One OS thread per connection (memcached uses an event loop; a
/// thread-per-connection server keeps the reproduction simple while
/// preserving the property under study — whether GETs contend on a global
/// lock inside the *engine*).
pub struct CacheServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    engine: Arc<dyn CacheEngine>,
}

impl CacheServer {
    /// Binds to `127.0.0.1:<port>` (port 0 picks a free port) and starts
    /// serving `engine`.
    pub fn start(engine: Arc<dyn CacheEngine>, port: u16) -> std::io::Result<CacheServer> {
        // Any serving process watches its own grace periods: a reader that
        // wedges a writer's synchronize shows up in STATS TRACE instead of
        // as a silent hang.
        rp_rcu::stall::ensure_global_watchdog();
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("kvcache-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(stream) => {
                                let engine = Arc::clone(&engine);
                                let shutdown = Arc::clone(&shutdown);
                                std::thread::Builder::new()
                                    .name("kvcache-conn".to_string())
                                    .spawn(move || {
                                        let _ = serve_connection(stream, &*engine, &shutdown);
                                    })
                                    .expect("spawn connection thread");
                            }
                            Err(_) => continue,
                        }
                    }
                })?
        };

        Ok(CacheServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            engine,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<dyn CacheEngine> {
        &self.engine
    }

    /// Stops accepting new connections and joins the accept thread.
    ///
    /// Existing connections finish their current request and close when the
    /// client disconnects (or sends `quit`).
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one client connection until EOF, `quit`, or server shutdown.
///
/// Runs the same borrowed request pipeline as the event loop
/// ([`execute_ref`] over a [`RefDecoder`]): requests are decoded in place
/// out of the connection's input buffer and replies serialised into one
/// reusable response buffer, so a steady-state GET allocates nothing —
/// there is no owned [`Command`] and no per-reply `Vec` on this path any
/// more. The threaded server always reads through EBR (its blocking
/// per-connection threads have no natural quiescent points).
fn serve_connection(
    mut stream: TcpStream,
    engine: &dyn CacheEngine,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut decoder = RefDecoder::new();
    let mut ctx = EngineReadCtx::ebr();
    let mut input: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    let mut chunk = [0_u8; 4096];
    // Spread per-connection threads across the metric shards by fd (the
    // event loop uses its worker index instead); the fd doubles as the
    // "worker" name in slow-log entries.
    let worker = {
        use std::os::unix::io::AsRawFd;
        stream.as_raw_fd() as usize
    };
    let kv = rp_obs::global().kv.shards.for_worker(worker);

    loop {
        // Drain every complete request already buffered.
        let mut offset = 0;
        let mut quit = false;
        loop {
            let (used, decoded) = decoder.step(&input[offset..]);
            offset += used;
            match decoded {
                Decoded::Request(request) => {
                    // Decode cost is not attributed on this path (the
                    // blocking read makes it meaningless anyway).
                    if execute_ref_observed(
                        engine,
                        &request,
                        &mut ctx,
                        &mut out,
                        kv,
                        worker as u64,
                        0,
                    ) {
                        quit = true;
                        break;
                    }
                }
                Decoded::Bad(error) => {
                    kv.decode_errors.inc();
                    error.write_wire(&mut out);
                }
                Decoded::NeedMore => break,
            }
        }
        input.drain(..offset);
        if !out.is_empty() {
            stream.write_all(&out)?;
            out.clear();
        }
        if quit {
            return Ok(());
        }

        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed the connection
            Ok(n) => input.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // timeout: re-check the shutdown flag
            }
            Err(e) => return Err(e),
        }
    }
}

/// Executes a **borrowed** request against the engine, serialising the
/// reply straight into `out`. Returns `true` when the connection should
/// close (`quit`).
///
/// This is the zero-allocation request pipeline the event-loop server
/// runs: keys stay `&[u8]` slices into the connection's read buffer
/// ([`CacheEngine::get_ref`] hashes them once and probes the index with no
/// copy), `VALUE` headers are written digit-by-digit into the connection's
/// pooled output queue, and payloads ride as reference-counted [`Bytes`]
/// (copied only when small enough that coalescing beats scatter-gather).
/// A steady-state GET or miss performs no heap allocation at all; SETs
/// allocate only the key and payload that go *into* the table. The cold
/// commands (`stats`, `version`) still build owned [`Response`]s.
pub fn execute_ref(
    engine: &dyn CacheEngine,
    request: &RequestRef<'_>,
    ctx: &mut EngineReadCtx,
    out: &mut impl BufWrite,
) -> bool {
    match request {
        RequestRef::Get { key } => {
            if let Some(item) = engine.get_ref(key, ctx) {
                write_value_header(out, key, item.flags, item.data.len());
                out.put_shared(item.data);
                out.put(b"\r\n");
            }
            out.put(b"END\r\n");
        }
        RequestRef::GetMulti(keys) => {
            for key in keys.iter() {
                if let Some(item) = engine.get_ref(key, ctx) {
                    write_value_header(out, key, item.flags, item.data.len());
                    out.put_shared(item.data);
                    out.put(b"\r\n");
                }
            }
            out.put(b"END\r\n");
        }
        RequestRef::Set {
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            // Keys are sub-slices of a validated UTF-8 line; the engine API
            // takes &str, so re-view (a scan on this cold-enough write
            // path, never a copy).
            let outcome = match std::str::from_utf8(key) {
                Ok(key) => engine.set(
                    key,
                    crate::Item::with_ttl(
                        *flags,
                        Bytes::copy_from_slice(data),
                        Duration::from_secs(*exptime),
                    ),
                ),
                Err(_) => StoreOutcome::NotStored,
            };
            if !noreply {
                out.put(match outcome {
                    StoreOutcome::Stored => &b"STORED\r\n"[..],
                    StoreOutcome::NotStored => &b"NOT_STORED\r\n"[..],
                });
            }
        }
        RequestRef::Delete { key, noreply } => {
            let deleted = std::str::from_utf8(key)
                .map(|key| engine.delete(key))
                .unwrap_or(false);
            if !noreply {
                out.put(if deleted {
                    &b"DELETED\r\n"[..]
                } else {
                    &b"NOT_FOUND\r\n"[..]
                });
            }
        }
        RequestRef::Stats => {
            if let Some(reply) = execute_via(engine, Command::Stats, ctx) {
                reply.write_to(out);
            }
        }
        RequestRef::StatsProm(sub) => match sub {
            StatsSub::Render => telemetry::render_prometheus(engine, out),
            StatsSub::Reset => telemetry::reset(engine, out),
            StatsSub::Trace(limit) => telemetry::render_trace(*limit, out),
            StatsSub::Slow => telemetry::render_slow(out),
            StatsSub::Json => telemetry::render_json(engine, out),
            StatsSub::Worker(n) => telemetry::render_worker(*n, out),
        },
        RequestRef::Version => {
            out.put(b"VERSION ");
            out.put(SERVER_VERSION.as_bytes());
            out.put(b"\r\n");
        }
        RequestRef::Quit => return true,
    }
    false
}

/// FNV-1a over the request key — a stable fingerprint for the slow log
/// (which must not hold on to borrowed key bytes).
fn hash_key(key: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &byte in key {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`execute_ref`] wrapped in the per-opcode `rp-obs` accounting both
/// servers share: bumps the worker shard's request counter (exact, one
/// relaxed `fetch_add` — the whole telemetry cost for most requests), and
/// gives every [`rp_obs::LATENCY_SAMPLE`]-th request a span: its service
/// time feeds the opcode's latency histogram, and if it clears the slow
/// threshold the whole span (worker, request id, opcode, key hash, phase
/// breakdown) lands in the slow-request log served by `STATS SLOW`.
/// Unsampled requests run the identical zero-allocation path as before —
/// no clock reads, no span — so the sampling tick bounds the entire
/// telemetry cost; `--stats off` skips the clock reads even when sampled.
///
/// `worker` names the serving thread in slow-log entries (reactor ordinal
/// in event-loop mode, connection fd in threaded mode — matching the
/// metric-shard spread); `decode_ns` is the measured cost of the final
/// protocol-decode step when the caller sampled it, 0 otherwise.
pub(crate) fn execute_ref_observed(
    engine: &dyn CacheEngine,
    request: &RequestRef<'_>,
    ctx: &mut EngineReadCtx,
    out: &mut impl BufWrite,
    kv: &rp_obs::KvWorkerObs,
    worker: u64,
    decode_ns: u64,
) -> bool {
    let ordinal = kv.requests.inc_and_get();
    if !rp_obs::sample_latency(ordinal) {
        return execute_ref(engine, request, ctx, out);
    }
    let timer = rp_obs::timer();
    let mut span = rp_obs::SlowSpan {
        worker,
        request_id: ordinal,
        decode_ns,
        ..Default::default()
    };
    let quit = execute_ref_spanned(engine, request, ctx, out, &mut span);
    if let Some(ns) = rp_obs::elapsed_ns(timer) {
        let hist = match request {
            RequestRef::Get { .. } | RequestRef::GetMulti(_) => &kv.get_ns,
            RequestRef::Set { .. } => &kv.set_ns,
            RequestRef::Delete { .. } => &kv.delete_ns,
            _ => &kv.other_ns,
        };
        hist.record(ns);
        span.total_ns = ns + decode_ns;
        rp_obs::global().kv.slow.record(&span);
    }
    quit
}

/// [`execute_ref`] with per-phase timing filled into `span`: the engine
/// call is the *index* phase, response serialisation is the *serialize*
/// phase. Only the sampled 1-in-[`rp_obs::LATENCY_SAMPLE`] requests come
/// through here, so the extra clock reads never touch the common path.
/// Cold opcodes (stats, version, quit) delegate to [`execute_ref`]
/// unphased and are tagged [`rp_obs::slow::OP_OTHER`].
fn execute_ref_spanned(
    engine: &dyn CacheEngine,
    request: &RequestRef<'_>,
    ctx: &mut EngineReadCtx,
    out: &mut impl BufWrite,
    span: &mut rp_obs::SlowSpan,
) -> bool {
    match request {
        RequestRef::Get { key } => {
            span.op = rp_obs::slow::OP_GET;
            span.key_hash = hash_key(key);
            let index = rp_obs::timer();
            let item = engine.get_ref(key, ctx);
            span.index_ns = rp_obs::elapsed_ns(index).unwrap_or(0);
            let serialize = rp_obs::timer();
            if let Some(item) = item {
                write_value_header(out, key, item.flags, item.data.len());
                out.put_shared(item.data);
                out.put(b"\r\n");
            }
            out.put(b"END\r\n");
            span.serialize_ns = rp_obs::elapsed_ns(serialize).unwrap_or(0);
        }
        RequestRef::GetMulti(keys) => {
            span.op = rp_obs::slow::OP_GET;
            span.key_hash = keys.iter().next().map(hash_key).unwrap_or(0);
            for key in keys.iter() {
                let index = rp_obs::timer();
                let item = engine.get_ref(key, ctx);
                span.index_ns += rp_obs::elapsed_ns(index).unwrap_or(0);
                let serialize = rp_obs::timer();
                if let Some(item) = item {
                    write_value_header(out, key, item.flags, item.data.len());
                    out.put_shared(item.data);
                    out.put(b"\r\n");
                }
                span.serialize_ns += rp_obs::elapsed_ns(serialize).unwrap_or(0);
            }
            let serialize = rp_obs::timer();
            out.put(b"END\r\n");
            span.serialize_ns += rp_obs::elapsed_ns(serialize).unwrap_or(0);
        }
        RequestRef::Set {
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            span.op = rp_obs::slow::OP_SET;
            span.key_hash = hash_key(key);
            let index = rp_obs::timer();
            let outcome = match std::str::from_utf8(key) {
                Ok(key) => engine.set(
                    key,
                    crate::Item::with_ttl(
                        *flags,
                        Bytes::copy_from_slice(data),
                        Duration::from_secs(*exptime),
                    ),
                ),
                Err(_) => StoreOutcome::NotStored,
            };
            span.index_ns = rp_obs::elapsed_ns(index).unwrap_or(0);
            let serialize = rp_obs::timer();
            if !noreply {
                out.put(match outcome {
                    StoreOutcome::Stored => &b"STORED\r\n"[..],
                    StoreOutcome::NotStored => &b"NOT_STORED\r\n"[..],
                });
            }
            span.serialize_ns = rp_obs::elapsed_ns(serialize).unwrap_or(0);
        }
        RequestRef::Delete { key, noreply } => {
            span.op = rp_obs::slow::OP_DELETE;
            span.key_hash = hash_key(key);
            let index = rp_obs::timer();
            let deleted = std::str::from_utf8(key)
                .map(|key| engine.delete(key))
                .unwrap_or(false);
            span.index_ns = rp_obs::elapsed_ns(index).unwrap_or(0);
            let serialize = rp_obs::timer();
            if !noreply {
                out.put(if deleted {
                    &b"DELETED\r\n"[..]
                } else {
                    &b"NOT_FOUND\r\n"[..]
                });
            }
            span.serialize_ns = rp_obs::elapsed_ns(serialize).unwrap_or(0);
        }
        _ => {
            span.op = rp_obs::slow::OP_OTHER;
            return execute_ref(engine, request, ctx, out);
        }
    }
    false
}

/// Executes a command against the engine, returning the reply to send (or
/// `None` for `noreply` commands). GETs use the engine's default (EBR)
/// read path; servers with per-thread read-side contexts call
/// [`execute_via`] instead.
pub fn execute(engine: &dyn CacheEngine, command: Command) -> Option<Response> {
    execute_via(engine, command, &mut EngineReadCtx::ebr())
}

/// [`execute`] with an explicit read-side context: GET lookups go through
/// [`CacheEngine::get_via`] / [`CacheEngine::get_many_via`], so a QSBR
/// context serves them through the engine's barrier-free read path. All
/// other commands are unaffected — writes always go through the engine's
/// writer side.
pub fn execute_via(
    engine: &dyn CacheEngine,
    command: Command,
    ctx: &mut EngineReadCtx,
) -> Option<Response> {
    match command {
        Command::Get(keys) => {
            // Single-key GETs (the dominant op) stay on the allocation-free
            // direct path; multi-key GETs go through the engine's batched
            // path (the sharded engine groups keys by shard; other engines
            // loop).
            let values = if let [key] = &keys[..] {
                match engine.get_via(key, ctx) {
                    Some(item) => {
                        let [key] = <[String; 1]>::try_from(keys).expect("one key");
                        vec![(key, item.flags, item.data)]
                    }
                    None => Vec::new(),
                }
            } else {
                let items = {
                    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                    engine.get_many_via(&key_refs, ctx)
                };
                keys.into_iter()
                    .zip(items)
                    .filter_map(|(key, item)| item.map(|item| (key, item.flags, item.data)))
                    .collect()
            };
            Some(Response::Values(values))
        }
        Command::Set {
            noreply, ref key, ..
        } => {
            let item = command
                .to_item()
                .expect("set command always builds an item");
            let outcome = engine.set(key, item);
            if noreply {
                None
            } else {
                Some(match outcome {
                    StoreOutcome::Stored => Response::Stored,
                    StoreOutcome::NotStored => Response::NotStored,
                })
            }
        }
        Command::Delete { key, noreply } => {
            let deleted = engine.delete(&key);
            if noreply {
                None
            } else {
                Some(if deleted {
                    Response::Deleted
                } else {
                    Response::NotFound
                })
            }
        }
        Command::Stats => {
            let stats = engine.stats();
            Some(Response::Stats(vec![
                ("engine".to_string(), engine.name().to_string()),
                ("curr_items".to_string(), engine.len().to_string()),
                ("get_hits".to_string(), stats.hits().to_string()),
                ("get_misses".to_string(), stats.misses().to_string()),
                ("evictions".to_string(), stats.evicted().to_string()),
            ]))
        }
        Command::StatsProm(sub) => {
            // The owned path renders into a buffer; Response::Raw carries
            // the pre-rendered bytes verbatim.
            let mut buf = Vec::new();
            match sub {
                StatsSub::Render => telemetry::render_prometheus(engine, &mut buf),
                StatsSub::Reset => telemetry::reset(engine, &mut buf),
                StatsSub::Trace(limit) => telemetry::render_trace(limit, &mut buf),
                StatsSub::Slow => telemetry::render_slow(&mut buf),
                StatsSub::Json => telemetry::render_json(engine, &mut buf),
                StatsSub::Worker(n) => telemetry::render_worker(n, &mut buf),
            }
            Some(Response::Raw(Bytes::from(buf)))
        }
        Command::Version => Some(Response::Version(SERVER_VERSION.to_string())),
        Command::Quit => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Item, LockEngine, RpEngine};
    use bytes::Bytes;

    #[test]
    fn execute_get_set_delete() {
        let engine = LockEngine::new();
        let reply = execute(
            &engine,
            Command::Set {
                key: "k".into(),
                flags: 2,
                exptime: 0,
                data: Bytes::from_static(b"v"),
                noreply: false,
            },
        );
        assert_eq!(reply, Some(Response::Stored));

        let reply = execute(&engine, Command::Get(vec!["k".into(), "missing".into()]));
        assert_eq!(
            reply,
            Some(Response::Values(vec![(
                "k".into(),
                2,
                Bytes::from_static(b"v")
            )]))
        );

        assert_eq!(
            execute(
                &engine,
                Command::Delete {
                    key: "k".into(),
                    noreply: false
                }
            ),
            Some(Response::Deleted)
        );
        assert_eq!(
            execute(
                &engine,
                Command::Delete {
                    key: "k".into(),
                    noreply: false
                }
            ),
            Some(Response::NotFound)
        );
    }

    #[test]
    fn noreply_commands_return_nothing() {
        let engine = RpEngine::new();
        assert_eq!(
            execute(
                &engine,
                Command::Set {
                    key: "a".into(),
                    flags: 0,
                    exptime: 0,
                    data: Bytes::from_static(b"1"),
                    noreply: true,
                }
            ),
            None
        );
        assert_eq!(
            engine.get("a").map(|i| i.data),
            Some(Bytes::from_static(b"1"))
        );
    }

    #[test]
    fn stats_and_version_replies() {
        let engine = RpEngine::new();
        engine.set("x", Item::new(0, "y"));
        engine.get("x");
        match execute(&engine, Command::Stats) {
            Some(Response::Stats(stats)) => {
                assert!(stats.iter().any(|(k, v)| k == "engine" && v == "rp"));
                assert!(stats.iter().any(|(k, v)| k == "get_hits" && v == "1"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            execute(&engine, Command::Version),
            Some(Response::Version(SERVER_VERSION.to_string()))
        );
    }
}
