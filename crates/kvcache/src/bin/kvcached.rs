//! `kvcached` — the relativist cache server as a standalone daemon.
//!
//! See `kvcached --help` (or [`rp_kvcache::cli`]) for every flag and its
//! `RP_KV_*` environment fallback. Two extra operational flags live here:
//!
//! * `--smoke` — instead of serving forever, drive a mixed workload
//!   (SET / GET / multi-GET / expiry / DELETE) through the bundled client,
//!   shut down gracefully, verify nothing was shed, print stats and exit
//!   non-zero on any failure. CI uses this as the end-to-end server test.
//! * `--smoke-ops N` — operations for the smoke workload (default 2000).

use std::sync::Arc;
use std::time::Duration;

use rp_kvcache::cli::ServerOptions;
use rp_kvcache::client::CacheClient;
use rp_kvcache::server::{start_server, ServerMode};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = take_flag(&mut args, "--smoke");
    let smoke_ops: usize = take_value(&mut args, "--smoke-ops")
        .map(|v| v.parse().expect("--smoke-ops needs a number"))
        .unwrap_or(2000);

    let mut opts = match ServerOptions::parse(&args, &|name| std::env::var(name).ok()) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if smoke {
        // The smoke run must not collide with a real daemon's port.
        opts.port = 0;
    }
    rp_obs::set_enabled(opts.stats);

    let engine = opts.build_engine();
    let mut server = match start_server(Arc::clone(&engine), &opts.server_config()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("kvcached: cannot start: {e}");
            std::process::exit(1);
        }
    };
    let mode = match server.mode() {
        ServerMode::Threaded => "threaded",
        ServerMode::EventLoop => "event-loop",
    };
    println!(
        "kvcached ({} engine, {mode} mode, {} worker(s)) listening on {}",
        engine.name(),
        opts.workers,
        server.addr()
    );

    if smoke {
        let addr = server.addr();
        if let Err(e) = smoke_workload(addr, smoke_ops) {
            eprintln!("kvcached --smoke FAILED: {e}");
            std::process::exit(1);
        }
        server.shutdown();
        let stats = engine.stats();
        println!(
            "smoke ok: {} ops; hits={} misses={} sets={} expirations={}",
            smoke_ops,
            stats.hits(),
            stats.misses(),
            stats.sets.load(std::sync::atomic::Ordering::Relaxed),
            stats.expirations.load(std::sync::atomic::Ordering::Relaxed),
        );
        return;
    }

    // Serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(idx) => {
            args.remove(idx);
            true
        }
        None => false,
    }
}

fn take_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == name)?;
    args.remove(idx);
    if idx < args.len() {
        Some(args.remove(idx))
    } else {
        eprintln!("flag {name} requires a value");
        std::process::exit(2);
    }
}

/// The CI end-to-end check: mixed SET / GET / multi-GET / expiry / DELETE
/// traffic from several connections, then a clean drain.
fn smoke_workload(addr: std::net::SocketAddr, ops: usize) -> std::io::Result<()> {
    let err = |msg: String| std::io::Error::other(msg);

    let mut client = CacheClient::connect(addr)?;
    for i in 0..ops {
        let key = format!("smoke:{}", i % 257);
        let value = format!("value-{i}");
        if !client.set(&key, 0, 0, value.as_bytes())? {
            return Err(err(format!("SET {key} not stored")));
        }
        match client.get(&key)? {
            Some(got) if got == value.as_bytes() => {}
            other => return Err(err(format!("GET {key} returned {other:?}"))),
        }
    }

    // Multi-GET across present and missing keys.
    let hits = client.get_many(&["smoke:0", "definitely-missing", "smoke:1"])?;
    if hits.len() != 2 {
        return Err(err(format!("multi-GET expected 2 hits, got {hits:?}")));
    }

    // Expiry: a 1-second TTL item disappears.
    client.set("smoke:ttl", 0, 1, b"short-lived")?;
    if client.get("smoke:ttl")?.is_none() {
        return Err(err("TTL item vanished immediately".to_string()));
    }
    std::thread::sleep(Duration::from_millis(1100));
    if client.get("smoke:ttl")?.is_some() {
        return Err(err("TTL item survived its expiry".to_string()));
    }

    if !client.delete("smoke:0")? {
        return Err(err("DELETE smoke:0 failed".to_string()));
    }

    // A second connection must see the same data.
    let mut other = CacheClient::connect(addr)?;
    if other.get("smoke:1")?.is_none() {
        return Err(err("second connection missed smoke:1".to_string()));
    }
    if !other.version()?.contains("relativist") {
        return Err(err("unexpected version string".to_string()));
    }

    // The live telemetry endpoint must answer with sane counters: every
    // request above went through the server, and none of them misparsed.
    let text = other.stats_text("")?;
    let requests = metric_value(&text, "kv_requests_total")
        .ok_or_else(|| err(format!("STATS missing kv_requests_total:\n{text}")))?;
    if requests == 0 {
        return Err(err("STATS reports zero requests served".to_string()));
    }
    let decode_errors = metric_value(&text, "kv_decode_errors_total")
        .ok_or_else(|| err(format!("STATS missing kv_decode_errors_total:\n{text}")))?;
    if decode_errors != 0 {
        return Err(err(format!("STATS reports {decode_errors} decode errors")));
    }
    for family in [
        "engine_get_hits_total",
        "net_connections",
        "maint_slices_total",
    ] {
        if !text.contains(family) {
            return Err(err(format!("STATS output missing {family}")));
        }
    }
    println!("smoke STATS ok: kv_requests_total={requests} kv_decode_errors_total=0");

    other.quit()?;
    client.quit()?;
    Ok(())
}

/// Pulls a plain `name value` sample line out of Prometheus exposition
/// text (skipping `# HELP` / `# TYPE` comments and `name{...}` series with
/// labels, such as histogram buckets).
fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}
