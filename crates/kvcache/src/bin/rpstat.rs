//! `rpstat` — a vmstat-style live console for a running `kvcached`.
//!
//! Polls the server's `STATS JSON` endpoint at a fixed interval and prints
//! one line per sample with **per-second deltas** of the rate counters
//! (requests by opcode, grace-period waits, connection sheds and reaps)
//! next to the point-in-time values (GET latency quantiles, maintenance
//! backlog, cumulative stall count). Counters the server keeps cumulative
//! become rates here, so "the cache got slow at 14:03" is visible as a
//! dip in `get/s` and a spike in `p99` on one line — no Prometheus stack
//! required.
//!
//! Flags:
//!
//! * `--addr HOST:PORT` — server to poll (default `127.0.0.1:11211`).
//! * `--interval-ms N` — sampling interval (default 1000).
//! * `--count N` — samples to print, 0 = forever (default 0).
//! * `--csv` — machine-readable output: one CSV header, one row per
//!   sample, rates scaled to per-second.
//! * `--no-reconnect` — exit on the first poll error instead of retrying
//!   through the bounded-backoff reconnect policy. By default a dropped
//!   server connection (restart, chaos run, transient reset) is retried a
//!   few times with seeded exponential backoff before rpstat gives up.
//! * `--smoke` — self-contained CI mode: starts an embedded event-loop
//!   server, drives pipelined GET traffic at it from a background thread,
//!   polls itself a few times (default `--count 5`, `--interval-ms 200`)
//!   and exits non-zero unless every sample parsed and traffic showed up.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rp_kvcache::client::{CacheClient, RetryClient, RetryPolicy};
use rp_kvcache::server::{start_server, ServerConfig};
use rp_kvcache::RpEngine;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = take_flag(&mut args, "--csv");
    let smoke = take_flag(&mut args, "--smoke");
    let no_reconnect = take_flag(&mut args, "--no-reconnect");
    let interval_ms: u64 = take_value(&mut args, "--interval-ms")
        .map(|v| v.parse().expect("--interval-ms needs a number"))
        .unwrap_or(if smoke { 200 } else { 1000 })
        .max(10);
    let count: u64 = take_value(&mut args, "--count")
        .map(|v| v.parse().expect("--count needs a number"))
        .unwrap_or(if smoke { 5 } else { 0 });
    let addr: Option<SocketAddr> =
        take_value(&mut args, "--addr").map(|v| v.parse().expect("--addr needs HOST:PORT"));
    if !args.is_empty() {
        eprintln!("rpstat: unknown arguments: {args:?}");
        std::process::exit(2);
    }

    let policy = if no_reconnect {
        RetryPolicy::no_reconnect()
    } else {
        RetryPolicy::default()
    };
    let outcome = if smoke {
        run_smoke(interval_ms, count.max(1), csv, policy)
    } else {
        let addr = addr.unwrap_or_else(|| "127.0.0.1:11211".parse().unwrap());
        run(addr, interval_ms, count, csv, policy).map(|_| ())
    };
    if let Err(e) = outcome {
        eprintln!("rpstat: {e}");
        std::process::exit(1);
    }
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(idx) => {
            args.remove(idx);
            true
        }
        None => false,
    }
}

fn take_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == name)?;
    args.remove(idx);
    if idx < args.len() {
        Some(args.remove(idx))
    } else {
        eprintln!("flag {name} requires a value");
        std::process::exit(2);
    }
}

/// One polled sample: the counters rpstat tracks, straight out of
/// `STATS JSON`. Cumulative counters stay cumulative here; [`Row`] turns
/// consecutive samples into rates.
#[derive(Debug, Default, Clone, Copy)]
struct Sample {
    gets: u64,
    sets: u64,
    deletes: u64,
    get_p50_ns: u64,
    get_p99_ns: u64,
    graces: u64,
    stalls: u64,
    maint_queue: u64,
    trips: u64,
    sheds: u64,
    reaps: u64,
}

impl Sample {
    /// Extracts a sample from one `STATS JSON` line.
    fn parse(json: &str) -> Option<Sample> {
        Some(Sample {
            gets: field(json, "engine_get_hits_total")? + field(json, "engine_get_misses_total")?,
            sets: field(json, "engine_sets_total")?,
            deletes: field(json, "engine_deletes_total")?,
            get_p50_ns: summary_field(json, "kv_get_latency_ns", "p50")?,
            get_p99_ns: summary_field(json, "kv_get_latency_ns", "p99")?,
            graces: summary_field(json, "rcu_sync_ebr_ns", "count")?
                + summary_field(json, "rcu_sync_qsbr_ns", "count")?,
            stalls: field(json, "rcu_grace_stalls_total")?,
            maint_queue: field(json, "maint_queue_depth")?,
            trips: field(json, "net_watermark_trips_total")?,
            sheds: field(json, "net_conns_shed_total")?,
            reaps: field(json, "net_idle_reaped_total")?,
        })
    }
}

/// Finds `"name":<digits>` in single-line JSON. Metric names are globally
/// unique in the `STATS JSON` object, so no path walking is needed.
fn field(json: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)? + needle.len();
    parse_digits(&json[at..])
}

/// Finds `"q":<digits>` inside the summary object `"name":{...}`.
fn summary_field(json: &str, name: &str, q: &str) -> Option<u64> {
    let needle = format!("\"{name}\":{{");
    let at = json.find(&needle)? + needle.len();
    let object = &json[at..at + json[at..].find('}')?];
    field(object, q)
}

fn parse_digits(text: &str) -> Option<u64> {
    let end = text
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map(|(i, _)| i)
        .unwrap_or(text.len());
    text[..end].parse().ok()
}

/// One output line: per-second rates between two samples plus the levels
/// of the newer one.
struct Row {
    elapsed_ms: u64,
    get_s: u64,
    set_s: u64,
    del_s: u64,
    grace_s: u64,
    trips_s: u64,
    sheds_s: u64,
    reaps_s: u64,
    now: Sample,
}

impl Row {
    fn between(prev: &Sample, now: &Sample, elapsed_ms: u64, interval_ms: u64) -> Row {
        let rate =
            |later: u64, earlier: u64| later.saturating_sub(earlier) * 1000 / interval_ms.max(1);
        Row {
            elapsed_ms,
            get_s: rate(now.gets, prev.gets),
            set_s: rate(now.sets, prev.sets),
            del_s: rate(now.deletes, prev.deletes),
            grace_s: rate(now.graces, prev.graces),
            trips_s: rate(now.trips, prev.trips),
            sheds_s: rate(now.sheds, prev.sheds),
            reaps_s: rate(now.reaps, prev.reaps),
            now: *now,
        }
    }
}

const CSV_HEADER: &str =
    "elapsed_ms,get_s,set_s,del_s,get_p50_ns,get_p99_ns,grace_s,stalls,maint_queue,trips_s,sheds_s,reaps_s";

fn print_header() {
    println!(
        "{:>8} {:>9} {:>8} {:>8} {:>10} {:>10} {:>8} {:>6} {:>7} {:>7} {:>7} {:>7}",
        "ms",
        "get/s",
        "set/s",
        "del/s",
        "p50(ns)",
        "p99(ns)",
        "grace/s",
        "stalls",
        "maintq",
        "trips/s",
        "shed/s",
        "reap/s"
    );
}

fn print_row(row: &Row, csv: bool) {
    if csv {
        println!(
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            row.elapsed_ms,
            row.get_s,
            row.set_s,
            row.del_s,
            row.now.get_p50_ns,
            row.now.get_p99_ns,
            row.grace_s,
            row.now.stalls,
            row.now.maint_queue,
            row.trips_s,
            row.sheds_s,
            row.reaps_s,
        );
    } else {
        println!(
            "{:>8} {:>9} {:>8} {:>8} {:>10} {:>10} {:>8} {:>6} {:>7} {:>7} {:>7} {:>7}",
            row.elapsed_ms,
            row.get_s,
            row.set_s,
            row.del_s,
            row.now.get_p50_ns,
            row.now.get_p99_ns,
            row.grace_s,
            row.now.stalls,
            row.now.maint_queue,
            row.trips_s,
            row.sheds_s,
            row.reaps_s,
        );
    }
}

/// The polling loop: sample, diff, print, sleep. Returns the rows printed
/// so `--smoke` can assert on them.
///
/// Polling goes through a [`RetryClient`], so a dropped connection is
/// re-established under `policy` (bounded attempts with seeded backoff);
/// only an error that outlives the whole retry budget ends the loop.
fn run(
    addr: SocketAddr,
    interval_ms: u64,
    count: u64,
    csv: bool,
    policy: RetryPolicy,
) -> std::io::Result<Vec<Row>> {
    let mut client = RetryClient::new(addr, policy);
    let parse_err =
        |json: &str| std::io::Error::other(format!("unparsable STATS JSON reply: {json}"));
    let started = std::time::Instant::now();
    let first = client.stats_text("JSON")?;
    let mut prev = Sample::parse(&first).ok_or_else(|| parse_err(&first))?;

    if csv {
        println!("{CSV_HEADER}");
    } else {
        print_header();
    }
    let mut rows = Vec::new();
    let mut printed = 0_u64;
    while count == 0 || printed < count {
        std::thread::sleep(Duration::from_millis(interval_ms));
        let json = client.stats_text("JSON")?;
        let now = Sample::parse(&json).ok_or_else(|| parse_err(&json))?;
        let row = Row::between(
            &prev,
            &now,
            started.elapsed().as_millis() as u64,
            interval_ms,
        );
        print_row(&row, csv);
        rows.push(row);
        prev = now;
        printed += 1;
        if !csv && printed.is_multiple_of(20) {
            print_header();
        }
    }
    Ok(rows)
}

/// `--smoke`: an embedded server plus a pipelined GET loader, polled by
/// the ordinary loop. Fails unless every sample parsed and the loader's
/// traffic showed up as a nonzero GET rate.
fn run_smoke(interval_ms: u64, count: u64, csv: bool, policy: RetryPolicy) -> std::io::Result<()> {
    let engine = Arc::new(RpEngine::new());
    let mut server = start_server(engine, &ServerConfig::event_loop(2))
        .map_err(|e| std::io::Error::other(format!("embedded server: {e}")))?;
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let loader = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("rpstat-loader".to_string())
            .spawn(move || pipelined_get_loader(addr, &stop))
            .expect("spawn loader")
    };

    let outcome = run(addr, interval_ms, count, csv, policy);
    stop.store(true, Ordering::SeqCst);
    let served = loader.join().expect("loader thread panicked")?;
    server.shutdown();

    let rows = outcome?;
    if rows.is_empty() {
        return Err(std::io::Error::other("no samples collected"));
    }
    if served == 0 || !rows.iter().any(|row| row.get_s > 0) {
        return Err(std::io::Error::other(format!(
            "loader served {served} GETs but no sample saw a nonzero GET rate"
        )));
    }
    eprintln!(
        "rpstat --smoke ok: {} samples, loader pipelined {served} GETs",
        rows.len()
    );
    Ok(())
}

/// Drives windows of pipelined GETs (32 requests per write, responses
/// drained in bulk) until told to stop. Returns the number of GETs served.
fn pipelined_get_loader(addr: SocketAddr, stop: &AtomicBool) -> std::io::Result<u64> {
    const WINDOW: usize = 32;
    let mut seed = CacheClient::connect(addr)?;
    if !seed.set("hot", 0, 0, b"value")? {
        return Err(std::io::Error::other("seed SET not stored"));
    }
    seed.quit()?;

    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let batch: Vec<u8> = b"get hot\r\n".repeat(WINDOW);
    let mut served = 0_u64;
    let mut line = String::new();
    while !stop.load(Ordering::SeqCst) {
        stream.write_all(&batch)?;
        let mut ends = 0;
        while ends < WINDOW {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::other("server closed mid-window"));
            }
            if line.trim_end() == "END" {
                ends += 1;
            }
        }
        served += WINDOW as u64;
    }
    stream.write_all(b"quit\r\n")?;
    Ok(served)
}
