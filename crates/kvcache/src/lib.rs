//! A memcached-style key-value cache with two storage engines.
//!
//! The paper's real-world evaluation patches memcached: stock memcached 1.4
//! protects its item hash table with a single global lock (`cache_lock`),
//! while the patched version adds a **relativistic GET fast path** — lookups
//! run inside an RCU read-side critical section, copy the value out, and
//! never take the lock; SETs, deletions, expiry and eviction still use the
//! lock. This crate rebuilds that experiment end to end in Rust:
//!
//! * [`protocol`] — a subset of the memcached **text protocol** (GET / SET /
//!   DELETE plus a few diagnostics) with an incremental parser suitable for
//!   a streaming socket.
//! * [`Item`] — a stored value: flags, optional expiry, payload bytes.
//! * [`CacheEngine`] — the storage-engine trait the server dispatches to.
//! * [`LockEngine`] — the **default** engine: one global mutex around a hash
//!   map plus LRU bookkeeping, the `cache_lock` architecture.
//! * [`RpEngine`] — the **relativistic** engine: the index is an
//!   [`rp_hash::RpHashMap`]; GETs are wait-free lookups that copy the value
//!   inside the read-side critical section; writes serialise on the map's
//!   writer lock; expiry is lazy and eviction is approximate-LRU, both on
//!   the slow path.
//! * [`ShardedRpEngine`] — the **sharded relativistic** engine: the index
//!   is an [`rp_shard::ShardedRpMap`], so SETs and index resizes only
//!   contend within one shard and multi-key GETs use the batched,
//!   shard-grouped read path. Index resizes run on a background `rp-maint`
//!   maintenance thread by default, so SETs never wait for grace periods;
//!   `RP_KV_MAINT=off` reverts to inline resizing.
//! * [`SplitOrderEngine`] — the **split-ordered** engine: the index is an
//!   [`rp_splitorder::SplitOrderMap`] (lock-free split-ordered list), so
//!   SETs and DELETEs never serialise on a writer lock and index growth is
//!   a single pointer publication with no grace-period wait — the
//!   competing resize philosophy, behind the same trait.
//! * [`server`] / [`client`] — the TCP front ends and a small blocking
//!   client speaking the protocol, used by the end-to-end tests, the
//!   `kv_server` example and (optionally) the memcached figure harness.
//!   [`ServerConfig`] picks between the thread-per-connection baseline
//!   ([`server::CacheServer`]) and the `rp-net` epoll event loop
//!   ([`EventServer`]), which serves any number of connections from a
//!   fixed worker pool with incremental request framing, pipelined
//!   responses and write backpressure. Event-loop workers serve GETs
//!   through the **QSBR read path** by default ([`ReadSide`]): each worker
//!   registers a `rp_hash::QsbrReadHandle` at startup, lookups are
//!   entirely barrier-free, one quiescent state is announced per event
//!   batch, and workers go offline while parked in `epoll_wait`;
//!   `--read-side ebr` restores the guard path.
//! * [`cli`] — flag/env parsing for the `kvcached` binary, including the
//!   `--maint-*` knobs that tune the background resize maintenance thread.
//!
//! The `fig_memcached` benchmark in `rp-bench` drives both engines with an
//! mc-benchmark-style closed-loop workload and reports requests/second for
//! GETs and SETs separately, reproducing the paper's memcached figure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod item;
mod lock_engine;
pub mod protocol;
mod rp_engine;
mod sharded_engine;
mod splitorder_engine;

pub mod cli;
pub mod client;
pub mod event_server;
pub mod server;
pub mod telemetry;

pub use client::{CacheClient, RetryClient, RetryPolicy};
pub use engine::{CacheEngine, CacheStats, EngineReadCtx, ReadSide, StoreOutcome};
pub use event_server::{EventServer, KvService};
pub use item::Item;
pub use lock_engine::LockEngine;
pub use rp_engine::RpEngine;
pub use server::{start_server, ServerConfig, ServerHandle, ServerMode};
pub use sharded_engine::ShardedRpEngine;
pub use splitorder_engine::SplitOrderEngine;
