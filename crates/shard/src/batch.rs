//! Batched multi-key operations.
//!
//! Every batched operation follows the same shape: hash all keys once,
//! group them by destination shard, then visit each shard exactly once —
//! one guard pin per shard for reads, one writer-lock acquisition per shard
//! for writes. Grouping preserves the caller's result ordering by carrying
//! the original index through the per-shard buckets.

use std::borrow::Borrow;
use std::hash::{BuildHasher, Hash};

use rp_hash::QsbrReadHandle;

use crate::map::ShardedRpMap;

impl<K, V, S> ShardedRpMap<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher,
{
    /// Looks up every key in `keys`, returning the values in the same order.
    ///
    /// Equivalent to calling [`ShardedRpMap::get_cloned`] per key, but keys
    /// are grouped by shard first and each shard is visited under a single
    /// guard pin, amortising the read-side entry/exit fence across the
    /// batch.
    ///
    /// # Examples
    ///
    /// ```
    /// use rp_shard::ShardedRpMap;
    ///
    /// let map: ShardedRpMap<u64, &'static str> = ShardedRpMap::with_shards(4);
    /// map.insert(1, "one");
    /// map.insert(2, "two");
    ///
    /// // Results come back in caller order, misses as `None`.
    /// assert_eq!(
    ///     map.multi_get(&[2, 7, 1]),
    ///     vec![Some("two"), None, Some("one")],
    /// );
    /// ```
    pub fn multi_get<Q>(&self, keys: &[Q]) -> Vec<Option<V>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq,
        V: Clone,
    {
        let mut results: Vec<Option<V>> = Vec::with_capacity(keys.len());
        results.resize_with(keys.len(), || None);

        // Group (hash, caller index) by shard. A Vec-of-Vecs keeps the
        // grouping allocation proportional to the batch, not the shard
        // count² — empty shards cost one empty Vec.
        let mut groups: Vec<Vec<(u64, usize)>> = vec![Vec::new(); self.shard_count()];
        for (idx, key) in keys.iter().enumerate() {
            let hash = self.hash_of(key);
            groups[self.shard_of_hash(hash)].push((hash, idx));
        }

        for (shard_idx, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // One pin covers every lookup in this shard; it is dropped
            // before moving on so a huge batch never holds one read-side
            // critical section across all shards (which would delay grace
            // periods for concurrent resizes).
            let guard = rp_rcu::pin();
            let shard = self.shard(shard_idx);
            for (hash, idx) in group {
                results[idx] = shard.get_prehashed(hash, &keys[idx], &guard).cloned();
            }
        }
        results
    }

    /// Looks up every key in `keys` (given by reference, so unsized key
    /// views like `str` work) and applies `f` to each found value *inside*
    /// that shard's read-side critical section, returning the outputs in
    /// caller order.
    ///
    /// This is the batched form of the relativistic "copy out what you
    /// need" pattern ([`rp_hash::RpHashMap::get_with`]): the values
    /// themselves need not be `Clone`.
    pub fn multi_get_with<Q, F, R>(&self, keys: &[&Q], mut f: F) -> Vec<Option<R>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        F: FnMut(&V) -> R,
    {
        let mut results: Vec<Option<R>> = Vec::with_capacity(keys.len());
        results.resize_with(keys.len(), || None);

        let mut groups: Vec<Vec<(u64, usize)>> = vec![Vec::new(); self.shard_count()];
        for (idx, key) in keys.iter().enumerate() {
            let hash = self.hash_of(*key);
            groups[self.shard_of_hash(hash)].push((hash, idx));
        }

        for (shard_idx, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let guard = rp_rcu::pin();
            let shard = self.shard(shard_idx);
            for (hash, idx) in group {
                results[idx] = shard.get_prehashed(hash, keys[idx], &guard).map(&mut f);
            }
        }
        results
    }

    /// Looks up every key in `keys` through the QSBR read path, returning
    /// cloned values in caller order.
    ///
    /// Where [`ShardedRpMap::multi_get`] pins one EBR guard per shard
    /// visited (amortising the entry/exit fences), the QSBR batch needs no
    /// per-shard protection at all: the whole batch runs inside **one
    /// quiescent window** — the shared borrow of `handle` — so per-shard
    /// costs drop to the lookups themselves. Announce a quiescent state
    /// between batches, not within one.
    ///
    /// # Examples
    ///
    /// ```
    /// use rp_hash::QsbrReadHandle;
    /// use rp_shard::ShardedRpMap;
    ///
    /// let map: ShardedRpMap<u64, &'static str> = ShardedRpMap::with_shards(4);
    /// map.insert(1, "one");
    /// map.insert(2, "two");
    ///
    /// let mut handle = QsbrReadHandle::register();
    /// assert_eq!(
    ///     map.multi_get_qsbr(&[2, 7, 1], &handle),
    ///     vec![Some("two"), None, Some("one")],
    /// );
    /// handle.quiescent_state();
    /// ```
    pub fn multi_get_qsbr<Q>(&self, keys: &[Q], handle: &QsbrReadHandle) -> Vec<Option<V>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq,
        V: Clone,
    {
        keys.iter()
            .map(|key| {
                let hash = self.hash_of(key);
                self.shard(self.shard_of_hash(hash))
                    .get_prehashed(hash, key, handle)
                    .cloned()
            })
            .collect()
    }

    /// The QSBR counterpart of [`ShardedRpMap::multi_get_with`]: looks up
    /// every key under the single quiescent window of `handle` and applies
    /// `f` to each found value, returning outputs in caller order. The
    /// values need not be `Clone`.
    pub fn multi_get_with_qsbr<Q, F, R>(
        &self,
        keys: &[&Q],
        handle: &QsbrReadHandle,
        mut f: F,
    ) -> Vec<Option<R>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        F: FnMut(&V) -> R,
    {
        keys.iter()
            .map(|key| {
                let hash = self.hash_of(*key);
                self.shard(self.shard_of_hash(hash))
                    .get_prehashed(hash, *key, handle)
                    .map(&mut f)
            })
            .collect()
    }

    /// Inserts every `(key, value)` pair, returning how many keys were
    /// newly inserted (as opposed to replaced).
    ///
    /// Entries are grouped by shard and each shard's group is applied under
    /// a single writer-lock acquisition ([`rp_hash::RpHashMap::insert_many_prehashed`]),
    /// so a batch pays `O(shards touched)` lock round-trips instead of
    /// `O(entries)`. Writes to different shards still serialise only within
    /// their shard.
    ///
    /// If the batch contains duplicate keys, later entries win, matching a
    /// sequential insert loop.
    pub fn multi_put(&self, entries: impl IntoIterator<Item = (K, V)>) -> usize {
        let mut groups: Vec<Vec<(u64, K, V)>> =
            (0..self.shard_count()).map(|_| Vec::new()).collect();
        for (key, value) in entries {
            let hash = self.hash_of(&key);
            groups[self.shard_of_hash(hash)].push((hash, key, value));
        }
        let mut newly = 0;
        for (shard_idx, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            newly += self.shard(shard_idx).insert_many_prehashed(group);
            self.maybe_request_resize(shard_idx);
        }
        newly
    }

    /// Removes every key in `keys`, returning how many were present.
    ///
    /// Keys are grouped by shard and each shard's group is applied under a
    /// single writer-lock acquisition
    /// ([`rp_hash::RpHashMap::remove_many_prehashed`]), matching
    /// [`ShardedRpMap::multi_put`]: a batch pays `O(shards touched)` lock
    /// round-trips instead of `O(keys)`.
    pub fn multi_remove<Q>(&self, keys: &[Q]) -> usize
    where
        K: Borrow<Q>,
        Q: Hash + Eq,
    {
        let mut groups: Vec<Vec<(u64, usize)>> = vec![Vec::new(); self.shard_count()];
        for (idx, key) in keys.iter().enumerate() {
            let hash = self.hash_of(key);
            groups[self.shard_of_hash(hash)].push((hash, idx));
        }
        let mut removed = 0;
        for (shard_idx, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            removed += self
                .shard(shard_idx)
                .remove_many_prehashed(group.iter().map(|&(hash, idx)| (hash, &keys[idx])));
            self.maybe_request_resize(shard_idx);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use crate::ShardedRpMap;

    type Map = ShardedRpMap<u64, u64>;

    #[test]
    fn multi_get_matches_per_key_get() {
        let map = Map::with_shards(8);
        for i in 0..500 {
            map.insert(i, i + 1);
        }
        let keys: Vec<u64> = (0..600).collect();
        let batched = map.multi_get(&keys);
        for (key, got) in keys.iter().zip(&batched) {
            assert_eq!(*got, map.get_cloned(key), "key {key}");
        }
        assert_eq!(batched.len(), keys.len());
    }

    #[test]
    fn multi_get_preserves_caller_order() {
        let map = Map::with_shards(4);
        map.insert(10, 100);
        map.insert(20, 200);
        let got = map.multi_get(&[20, 99, 10, 20]);
        assert_eq!(got, vec![Some(200), None, Some(100), Some(200)]);
    }

    #[test]
    fn multi_put_counts_new_keys_and_replaces() {
        let map = Map::with_shards(4);
        map.insert(1, 0);
        let newly = map.multi_put(vec![(1, 11), (2, 22), (3, 33)]);
        assert_eq!(newly, 2, "key 1 is a replace");
        assert_eq!(map.len(), 3);
        assert_eq!(map.get_cloned(&1), Some(11));
        assert_eq!(map.get_cloned(&3), Some(33));
        map.check_invariants().unwrap();
    }

    #[test]
    fn multi_put_duplicate_keys_last_wins() {
        let map = Map::with_shards(4);
        let newly = map.multi_put(vec![(7, 1), (7, 2), (7, 3)]);
        assert_eq!(newly, 1);
        assert_eq!(map.get_cloned(&7), Some(3));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn multi_get_qsbr_matches_multi_get() {
        let map = Map::with_shards(8);
        for i in 0..300 {
            map.insert(i, i * 7);
        }
        let keys: Vec<u64> = (0..400).collect();
        let mut handle = rp_hash::QsbrReadHandle::register();
        let qsbr = map.multi_get_qsbr(&keys, &handle);
        handle.quiescent_state();
        assert_eq!(qsbr, map.multi_get(&keys));
        let key_refs: Vec<&u64> = keys.iter().collect();
        let with = map.multi_get_with_qsbr(&key_refs, &handle, |v| *v + 1);
        for (i, got) in with.iter().enumerate() {
            assert_eq!(*got, qsbr[i].map(|v| v + 1));
        }
    }

    #[test]
    fn multi_remove_counts_hits() {
        let map = Map::with_shards(4);
        for i in 0..10 {
            map.insert(i, i);
        }
        let removed = map.multi_remove(&[0, 1, 2, 42]);
        assert_eq!(removed, 3);
        assert_eq!(map.len(), 7);
    }

    #[test]
    fn empty_batches_are_noops() {
        let map = Map::with_shards(4);
        assert!(map.multi_get(&[]).is_empty());
        assert_eq!(map.multi_put(Vec::new()), 0);
        assert_eq!(map.multi_remove(&[]), 0);
    }

    #[test]
    fn large_batch_spans_every_shard() {
        let map = Map::with_shards(16);
        let entries: Vec<(u64, u64)> = (0..2048).map(|i| (i, i * 3)).collect();
        assert_eq!(map.multi_put(entries), 2048);
        let stats = map.stats();
        assert!(
            stats.shard_lens.iter().all(|&l| l > 0),
            "batch left shards empty: {:?}",
            stats.shard_lens
        );
        let keys: Vec<u64> = (0..2048).collect();
        let got = map.multi_get(&keys);
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, v)| *v == Some(i as u64 * 3)));
    }
}
