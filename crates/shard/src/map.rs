//! The sharded relativistic hash map.

use std::borrow::Borrow;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use rp_hash::{FnvBuildHasher, QsbrReadHandle, ReadProtect, ResizePolicy, ResizeStep, RpHashMap};
use rp_maint::{
    MaintConfig, MaintHandle, MaintStats, MaintStep, MaintTarget, MaintThread, StepMode,
};
use rp_rcu::{GraceSync, RcuDomain, RcuGuard};

use crate::policy::ShardPolicy;
use crate::stats::ShardStats;

/// Per-shard resize request state on the maintained path.
const RESIZE_IDLE: u8 = 0;
/// A resize has been requested (or is being driven); writers stop
/// re-requesting until the maintainer returns the flag to idle.
const RESIZE_REQUESTED: u8 = 1;

/// The shard array plus the per-shard maintenance request flags.
///
/// Split out of [`ShardedRpMap`] so that a background [`MaintThread`] can
/// share ownership of the shards (via `Arc`) with the map handle itself.
pub(crate) struct ShardCore<K, V, S> {
    shards: Box<[RpHashMap<K, V, S>]>,
    /// One request flag per shard ([`RESIZE_IDLE`] / [`RESIZE_REQUESTED`]).
    resize_flags: Box<[AtomicU8]>,
    /// Load-factor thresholds the maintained path uses to *request* resizes
    /// (the shards' own inline automatic resizing is disabled there).
    trigger: ResizePolicy,
}

impl<K, V, S> ShardCore<K, V, S> {
    fn new(shards: Box<[RpHashMap<K, V, S>]>, trigger: ResizePolicy) -> Self {
        let resize_flags = (0..shards.len())
            .map(|_| AtomicU8::new(RESIZE_IDLE))
            .collect();
        ShardCore {
            shards,
            resize_flags,
            trigger,
        }
    }
}

impl<K, V, S> MaintTarget for ShardCore<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher + Send + Sync + 'static,
{
    fn units(&self) -> usize {
        self.shards.len()
    }

    fn step(&self, unit: usize, mode: StepMode) -> MaintStep {
        /// One `advance_resize` step, translated to maintenance terms.
        fn advance<K, V, S>(shard: &RpHashMap<K, V, S>) -> MaintStep
        where
            K: Hash + Eq + Send + Sync + 'static,
            V: Send + Sync + 'static,
            S: BuildHasher,
        {
            match shard.advance_resize() {
                ResizeStep::Grace => MaintStep::Grace,
                ResizeStep::Splice => MaintStep::Splice,
                // The request flag stays set; the driver keeps stepping this
                // unit, and the next call re-arms or disarms it.
                ResizeStep::Finished => MaintStep::Finished,
                // Someone drove the resize to completion inline (e.g. a
                // manual `resize_to`) between our check and the advance.
                ResizeStep::Idle => MaintStep::Idle,
            }
        }

        let shard = &self.shards[unit];
        // An in-progress resize always takes priority: it must reach
        // `Finished` before anything else can happen to this shard (and
        // before a shutdown may complete).
        if shard.resize_in_progress() {
            return advance(shard);
        }
        if mode == StepMode::Drain {
            // Nothing in flight: a drain must not begin new work.
            self.resize_flags[unit].store(RESIZE_IDLE, Ordering::Release);
            return MaintStep::Idle;
        }
        // Begin-or-disarm. Disarming must re-check the trigger afterwards:
        // a writer may have crossed a threshold just before we stored
        // RESIZE_IDLE — its CAS failed against the still-set flag, so no
        // request was queued, and without the re-check the shard would stay
        // over/under-loaded until some later write happened to re-fire.
        // Two passes always suffice (disarm, then begin after re-arming);
        // the bound keeps a trigger/begin policy disagreement — which
        // `ResizePolicy::should_expand` rules out — from ever spinning.
        for _attempt in 0..2 {
            if self.resize_flags[unit].load(Ordering::Acquire) == RESIZE_REQUESTED {
                let len = shard.len();
                let buckets = shard.num_buckets();
                if self.trigger.should_expand(len, buckets) && shard.begin_expand() {
                    return MaintStep::Began;
                }
                if self.trigger.should_shrink(len, buckets) && shard.begin_shrink() {
                    return MaintStep::Began;
                }
                if shard.resize_in_progress() {
                    // `begin_*` lost a race against an inline resize (e.g. a
                    // manual `resize_to`); help advance it instead of
                    // spinning — the flag stays set for re-evaluation.
                    return advance(shard);
                }
                // Spurious or stale request (the load factor moved back),
                // or a trigger the shard cannot act on.
                self.resize_flags[unit].store(RESIZE_IDLE, Ordering::Release);
            }
            let len = shard.len();
            let buckets = shard.num_buckets();
            if !(self.trigger.should_expand(len, buckets)
                || self.trigger.should_shrink(len, buckets))
                || self.resize_flags[unit]
                    .compare_exchange(
                        RESIZE_IDLE,
                        RESIZE_REQUESTED,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_err()
            {
                return MaintStep::Idle;
            }
            // The trigger is (still) crossed and nobody else has the
            // request in hand: service it ourselves on the next pass.
        }
        // Re-armed but could not begin: leave the flag idle so writers can
        // request again rather than wedging the shard.
        self.resize_flags[unit].store(RESIZE_IDLE, Ordering::Release);
        MaintStep::Idle
    }
}

/// A power-of-two array of independent [`RpHashMap`] shards.
///
/// Lookups are the paper's wait-free relativistic lookups, unchanged; a
/// single guard from [`ShardedRpMap::pin`] (or [`rp_rcu::pin`]) covers reads
/// in every shard. Updates and resizes only contend within one shard, so
/// write throughput scales with the shard count until the memory system
/// saturates.
///
/// Shard routing uses the top `log2(shards)` bits of the key's 64-bit hash;
/// the shard's buckets use the low bits. Both decisions share one hashing
/// pass: the outer map hashes, then hands the hash down through the
/// `*_prehashed` entry points of [`RpHashMap`].
///
/// With [`ShardedRpMap::with_maintenance`], resizes move off the writer
/// path entirely: writers that cross a load-factor threshold only *request*
/// a resize and continue, and a background [`MaintThread`] drives the
/// incremental zip/unzip state machine, absorbing every grace-period wait.
pub struct ShardedRpMap<K, V, S = FnvBuildHasher> {
    core: Arc<ShardCore<K, V, S>>,
    /// `log2(shards.len())`; 0 means a single shard.
    shard_bits: u32,
    hasher: S,
    policy: ShardPolicy,
    /// Background maintenance, if enabled. Dropping the map drops the
    /// handle, which shuts the thread down after draining in-flight resizes.
    maint: Option<MaintHandle>,
}

impl<K, V> ShardedRpMap<K, V, FnvBuildHasher> {
    /// Creates a map with the default policy (16 shards, manual resize).
    pub fn new() -> Self {
        Self::with_policy(ShardPolicy::default())
    }

    /// Creates a map with `shards` shards and defaults for everything else.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_policy(ShardPolicy::with_shards(shards))
    }

    /// Creates a map with the given policy and the deterministic FNV hasher
    /// (the workspace default, so shard routing is reproducible).
    pub fn with_policy(policy: ShardPolicy) -> Self {
        Self::with_policy_and_hasher(policy, FnvBuildHasher)
    }
}

impl<K, V> ShardedRpMap<K, V, FnvBuildHasher>
where
    K: std::hash::Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Creates a map whose resizes are driven by a background maintenance
    /// thread instead of by the writers that trigger them.
    ///
    /// On this path a writer that pushes a shard past one of the policy's
    /// load-factor thresholds (`per_shard.auto_expand` / `auto_shrink` must
    /// be set for the respective direction) only **requests** a resize — a
    /// queue push and a condvar wakeup — and continues immediately. The
    /// maintenance thread begins the resize and advances the incremental
    /// zip/unzip state machine step by step, absorbing every grace-period
    /// wait; writer-side deferred reclamation is disabled too (the thread
    /// runs it instead). The net effect: **writers never wait for
    /// readers** — no `synchronize` ever runs on an insert/remove path.
    ///
    /// Dropping the map drops the embedded [`MaintHandle`], which completes
    /// any in-flight resize before the thread exits — no resize is ever
    /// left half-published. Use [`ShardedRpMap::stop_maintenance`] to do
    /// that explicitly while keeping the map.
    ///
    /// # Examples
    ///
    /// ```
    /// use rp_shard::{ShardPolicy, ShardedRpMap};
    /// use rp_maint::MaintConfig;
    ///
    /// let mut map: ShardedRpMap<u64, u64> =
    ///     ShardedRpMap::with_maintenance(ShardPolicy::automatic(4), MaintConfig::default());
    /// assert!(map.maintained());
    ///
    /// for i in 0..100 {
    ///     map.insert(i, i * 7); // resize triggers only *request* work
    /// }
    /// assert_eq!(map.multi_get(&[3, 999]), vec![Some(21), None]);
    ///
    /// // Shut the maintainer down deterministically; nothing is left
    /// // half-resized.
    /// map.stop_maintenance();
    /// assert!(!map.maintained());
    /// map.check_invariants().unwrap();
    /// ```
    pub fn with_maintenance(policy: ShardPolicy, config: MaintConfig) -> Self {
        Self::with_maintenance_and_hasher(policy, FnvBuildHasher, config)
    }
}

impl<K, V> Default for ShardedRpMap<K, V, FnvBuildHasher> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S: BuildHasher + Clone> ShardedRpMap<K, V, S> {
    /// Creates a map with the given policy and hasher.
    ///
    /// The hasher is cloned into every shard, so a clone **must** hash
    /// identically to the original (true for `FnvBuildHasher`,
    /// `RandomState`, and every `BuildHasher` whose clone shares its keys) —
    /// shard routing and in-shard bucket selection use the same hash value.
    pub fn with_policy_and_hasher(policy: ShardPolicy, hasher: S) -> Self {
        let (policy, shard_bits) = Self::normalize(policy);
        let shards = Self::make_shards(&policy, &hasher, policy.per_shard);
        ShardedRpMap {
            core: Arc::new(ShardCore::new(shards, policy.per_shard)),
            shard_bits,
            hasher,
            policy,
            maint: None,
        }
    }

    fn normalize(policy: ShardPolicy) -> (ShardPolicy, u32) {
        // Store the normalized policy so `policy().shards` always agrees
        // with `shard_count()`.
        let policy = ShardPolicy {
            shards: policy.effective_shards(),
            ..policy
        };
        let shard_bits = policy.shards.trailing_zeros();
        (policy, shard_bits)
    }

    fn make_shards(
        policy: &ShardPolicy,
        hasher: &S,
        per_shard: ResizePolicy,
    ) -> Box<[RpHashMap<K, V, S>]> {
        (0..policy.shards)
            .map(|_| {
                RpHashMap::with_buckets_hasher_and_policy(
                    policy.initial_buckets_per_shard,
                    hasher.clone(),
                    per_shard,
                )
            })
            .collect()
    }
}

impl<K, V, S> ShardedRpMap<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher + Clone + Send + Sync + 'static,
{
    /// [`ShardedRpMap::with_maintenance`] with an explicit hasher (see
    /// [`ShardedRpMap::with_policy_and_hasher`] for the hasher contract).
    pub fn with_maintenance_and_hasher(
        policy: ShardPolicy,
        hasher: S,
        config: MaintConfig,
    ) -> Self {
        let (policy, shard_bits) = Self::normalize(policy);
        // The maintained path disables everything that would make a writer
        // wait for readers: inline automatic resizing (requests go to the
        // maintainer instead, judged against the *original* thresholds) and
        // writer-side deferred reclamation (the maintainer's heartbeat runs
        // it).
        let quiet = ResizePolicy {
            auto_expand: false,
            auto_shrink: false,
            reclaim_threshold: usize::MAX,
            ..policy.per_shard
        };
        let shards = Self::make_shards(&policy, &hasher, quiet);
        let core = Arc::new(ShardCore::new(shards, policy.per_shard));
        let maint = MaintThread::spawn(Arc::clone(&core) as Arc<dyn MaintTarget>, config);
        ShardedRpMap {
            core,
            shard_bits,
            hasher,
            policy,
            maint: Some(maint),
        }
    }
}

impl<K, V, S> ShardedRpMap<K, V, S> {
    /// Enters a read-side critical section covering every shard.
    pub fn pin(&self) -> RcuGuard<'static> {
        rp_rcu::pin()
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// The policy this map was built with.
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    /// Direct access to one shard (benchmarks and tests drive per-shard
    /// resizes through this).
    pub fn shard(&self, index: usize) -> &RpHashMap<K, V, S> {
        &self.core.shards[index]
    }

    /// All shards, in routing order.
    pub fn shards(&self) -> &[RpHashMap<K, V, S>] {
        &self.core.shards
    }

    /// Number of entries across all shards (a racy snapshot under
    /// concurrent updates, like [`RpHashMap::len`]).
    pub fn len(&self) -> usize {
        self.core.shards.iter().map(|s| s.len()).sum()
    }

    /// Returns `true` if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.core.shards.iter().all(|s| s.is_empty())
    }

    /// Total bucket count across all shards.
    pub fn num_buckets(&self) -> usize {
        self.core.shards.iter().map(|s| s.num_buckets()).sum()
    }

    /// Aggregate load factor (`len / num_buckets`).
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.num_buckets() as f64
    }

    /// The RCU domain protecting this map's readers (the global domain; see
    /// the crate docs for why shards share it).
    pub fn domain(&self) -> &'static RcuDomain {
        RcuDomain::global()
    }

    /// Snapshot of every shard's operation/resize counters and occupancy,
    /// plus the maintenance thread's counters when background resizes are
    /// enabled.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            per_shard: self.core.shards.iter().map(|s| s.stats()).collect(),
            shard_lens: self.core.shards.iter().map(|s| s.len()).collect(),
            maint: self.maint.as_ref().map(|m| m.stats()),
        }
    }

    /// Returns `true` if this map's resizes are driven by a background
    /// maintenance thread (see [`ShardedRpMap::with_maintenance`]).
    pub fn maintained(&self) -> bool {
        self.maint.is_some()
    }

    /// The maintenance thread's counters, if background resizes are
    /// enabled.
    pub fn maint_stats(&self) -> Option<MaintStats> {
        self.maint.as_ref().map(|m| m.stats())
    }

    /// Shuts the maintenance thread down (draining any in-flight resize to
    /// completion) and reverts the map to inline resizing semantics for
    /// subsequent manual resize calls. Idempotent; a no-op for maps built
    /// without maintenance.
    ///
    /// Writer-side deferred reclamation — disabled while the maintenance
    /// thread was the designated reclaimer — is re-enabled with the
    /// policy's original threshold, so retired nodes cannot accumulate
    /// without bound afterwards. Note that the load-factor triggers stay
    /// inert — the shards were built with inline automatic resizing
    /// disabled — so the map keeps its current shape unless resized
    /// manually.
    pub fn stop_maintenance(&mut self) {
        if let Some(handle) = self.maint.take() {
            handle.shutdown();
            for shard in self.core.shards.iter() {
                shard.set_reclaim_threshold(self.core.trigger.reclaim_threshold);
            }
        }
    }

    /// Routes a 64-bit hash to its shard index (the top `log2(shards)`
    /// bits).
    #[inline]
    pub(crate) fn shard_of_hash(&self, hash: u64) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (hash >> (64 - self.shard_bits)) as usize
        }
    }

    /// On the maintained path, requests a background resize for `shard_idx`
    /// if its load factor has crossed a trigger threshold. Writers call
    /// this after updates; it never blocks and never waits for readers.
    #[inline]
    pub(crate) fn maybe_request_resize(&self, shard_idx: usize) {
        let Some(maint) = &self.maint else {
            return;
        };
        let shard = &self.core.shards[shard_idx];
        let len = shard.len();
        let buckets = shard.num_buckets();
        let trigger = &self.core.trigger;
        if (trigger.should_expand(len, buckets) || trigger.should_shrink(len, buckets))
            && self.core.resize_flags[shard_idx]
                .compare_exchange(
                    RESIZE_IDLE,
                    RESIZE_REQUESTED,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            maint.request(shard_idx);
        }
    }
}

impl<K, V, S> ShardedRpMap<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher,
{
    /// Hashes `key` once; the result drives both shard routing (high bits)
    /// and, handed down pre-computed, in-shard bucket selection (low bits).
    #[inline]
    pub(crate) fn hash_of<Q>(&self, key: &Q) -> u64
    where
        Q: Hash + ?Sized,
    {
        self.hasher.hash_one(key)
    }

    /// The shard index `key` routes to.
    pub fn shard_for_key<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Hash + ?Sized,
    {
        self.shard_of_hash(self.hash_of(key))
    }

    /// Looks up `key` (wait-free; see [`RpHashMap::get`]). Accepts either
    /// read-side protection witness: an EBR guard from
    /// [`ShardedRpMap::pin`], or an online QSBR handle (see
    /// [`ShardedRpMap::get_qsbr`]). One witness covers every shard — the
    /// hash is computed once and routes to the right shard internally.
    pub fn get<'g, Q, P>(&'g self, key: &Q, protect: &'g P) -> Option<&'g V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        P: ReadProtect,
    {
        let hash = self.hash_of(key);
        self.core.shards[self.shard_of_hash(hash)].get_prehashed(hash, key, protect)
    }

    /// Looks up `key` through the QSBR read path: barrier-free shard
    /// routing plus the in-shard barrier-free lookup. The returned
    /// reference borrows the handle, so the owning thread cannot announce a
    /// quiescent state while it is alive.
    pub fn get_qsbr<'g, Q>(&'g self, key: &Q, handle: &'g QsbrReadHandle) -> Option<&'g V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key, handle)
    }

    /// Looks up `key`, returning references to the stored key and value.
    pub fn get_key_value<'g, Q, P>(&'g self, key: &Q, protect: &'g P) -> Option<(&'g K, &'g V)>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        P: ReadProtect,
    {
        let hash = self.hash_of(key);
        self.core.shards[self.shard_of_hash(hash)].get_key_value_prehashed(hash, key, protect)
    }

    /// The hash this map's hasher produces for `key` — what
    /// [`ShardedRpMap::get_matching_prehashed`] expects, driving both shard
    /// routing (high bits) and the in-shard bucket selection (low bits).
    pub fn hash_one<Q>(&self, key: &Q) -> u64
    where
        Q: Hash + ?Sized,
    {
        self.hash_of(key)
    }

    /// The "raw entry" lookup (see
    /// [`RpHashMap::get_matching_prehashed`]): routes `hash` to its shard
    /// and finds the entry whose key satisfies `matches`, without requiring
    /// a probe key type that `K` can [`Borrow`] — e.g. a `&[u8]` slice
    /// probing a `String`-keyed map without allocating. `hash` must be what
    /// [`ShardedRpMap::hash_one`] produces for any key `matches` accepts.
    pub fn get_matching_prehashed<'g, P, F>(
        &'g self,
        hash: u64,
        matches: F,
        protect: &'g P,
    ) -> Option<&'g V>
    where
        P: ReadProtect,
        F: FnMut(&K) -> bool,
    {
        self.core.shards[self.shard_of_hash(hash)].get_matching_prehashed(hash, matches, protect)
    }

    /// Looks up `key` and clones the value.
    pub fn get_cloned<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        let guard = rp_rcu::pin();
        self.get(key, &guard).cloned()
    }

    /// Returns `true` if the map contains `key`.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let guard = rp_rcu::pin();
        self.get(key, &guard).is_some()
    }

    /// Inserts `key → value` into its shard. Returns `true` if the key was
    /// newly inserted. Only writers of the same shard contend.
    ///
    /// On the maintained path a load-factor trigger only *requests* a
    /// background resize; the insert itself never waits for readers.
    pub fn insert(&self, key: K, value: V) -> bool {
        let hash = self.hash_of(&key);
        let shard_idx = self.shard_of_hash(hash);
        let newly = self.core.shards[shard_idx].insert_prehashed(hash, key, value);
        self.maybe_request_resize(shard_idx);
        newly
    }

    /// Removes `key` from its shard. Returns `true` if it was present.
    pub fn remove<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let hash = self.hash_of(key);
        let shard_idx = self.shard_of_hash(hash);
        let removed = self.core.shards[shard_idx].remove_prehashed(hash, key);
        self.maybe_request_resize(shard_idx);
        removed
    }

    /// Removes every entry for which `f` returns `false`, shard by shard.
    pub fn retain<F>(&self, mut f: F)
    where
        F: FnMut(&K, &V) -> bool,
    {
        for (idx, shard) in self.core.shards.iter().enumerate() {
            shard.retain(&mut f);
            // Bulk removal can drop a shard far below the shrink trigger;
            // on the maintained path that must request a resize like any
            // other write (inline auto-shrink is disabled there).
            self.maybe_request_resize(idx);
        }
    }

    /// Removes all entries.
    pub fn clear(&self) {
        for (idx, shard) in self.core.shards.iter().enumerate() {
            shard.clear();
            self.maybe_request_resize(idx);
        }
    }

    /// Iterates over all entries in all shards under one guard.
    ///
    /// Entries present for the whole iteration are yielded exactly once;
    /// concurrent inserts/removes may or may not be observed. Shards are
    /// visited in routing order, and concurrent *resizes of other shards*
    /// never disturb the iteration (resize is shard-local).
    pub fn iter<'g, P: ReadProtect>(
        &'g self,
        protect: &'g P,
    ) -> impl Iterator<Item = (&'g K, &'g V)> {
        self.core.shards.iter().flat_map(move |s| s.iter(protect))
    }

    /// Collects all entries into a `Vec` (cloning), for tests and examples.
    pub fn to_vec(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let guard = rp_rcu::pin();
        self.iter(&guard)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Doubles every shard (each one an independent unzip expansion).
    pub fn expand_all(&self) {
        for shard in self.core.shards.iter() {
            shard.expand();
        }
    }

    /// Halves every shard (each one an independent zip shrink).
    pub fn shrink_all(&self) {
        for shard in self.core.shards.iter() {
            shard.shrink();
        }
    }

    /// Resizes the map to approximately `total_buckets` buckets overall by
    /// resizing each shard to its even share.
    pub fn resize_total_to(&self, total_buckets: usize) {
        let per_shard = (total_buckets / self.core.shards.len()).max(1);
        for shard in self.core.shards.iter() {
            shard.resize_to(per_shard);
        }
    }

    /// Checks every shard's structural invariants plus the routing
    /// invariant: each key's hash must route to the shard that stores it.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, shard) in self.core.shards.iter().enumerate() {
            shard
                .check_invariants()
                .map_err(|e| format!("shard {i}: {e}"))?;
            let guard = rp_rcu::pin();
            for (key, _) in shard.iter(&guard) {
                let routed = self.shard_of_hash(self.hash_of(key));
                if routed != i {
                    return Err(format!(
                        "key in shard {i} routes to shard {routed} (hash {:#x})",
                        self.hash_of(key)
                    ));
                }
            }
        }
        Ok(())
    }

    /// Catches up on automatic-resize work the writer paths postponed (see
    /// [`RpHashMap::maintain`]), shard by shard. Returns `true` if any
    /// resize work was performed.
    ///
    /// On the maintained path this is a no-op — the background
    /// [`MaintThread`] already absorbs postponed work; writers only ever
    /// *request*. It exists for unmaintained maps whose writers all run on
    /// threads that cannot wait for readers (e.g. QSBR event-loop
    /// workers): such a caller invokes this from a quiescent point
    /// instead.
    pub fn maintain(&self) -> bool {
        if self.maint.is_some() {
            return false;
        }
        let mut worked = false;
        for shard in self.core.shards.iter() {
            worked |= shard.maintain();
        }
        worked
    }

    /// Flushes retired nodes: waits for a grace period of every read-side
    /// flavor with registered readers and frees everything retired before
    /// the call.
    pub fn flush_retired(&self) {
        GraceSync::global().synchronize_and_reclaim();
    }
}

impl<K, V, S> std::fmt::Debug for ShardedRpMap<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRpMap")
            .field("shards", &self.core.shards.len())
            .field(
                "len",
                &self.core.shards.iter().map(|s| s.len()).sum::<usize>(),
            )
            .field(
                "buckets",
                &self
                    .core
                    .shards
                    .iter()
                    .map(|s| s.num_buckets())
                    .sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Map = ShardedRpMap<u64, u64>;

    #[test]
    fn new_map_shape_matches_policy() {
        let map = Map::new();
        assert_eq!(map.shard_count(), 16);
        assert!(map.is_empty());
        assert_eq!(map.num_buckets(), 16 * 16);
        let map = Map::with_shards(5);
        assert_eq!(map.shard_count(), 8, "shard count rounds to a power of two");
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let map = Map::with_shards(4);
        for i in 0..100 {
            assert!(map.insert(i, i * 2));
        }
        assert_eq!(map.len(), 100);
        let guard = map.pin();
        for i in 0..100 {
            assert_eq!(map.get(&i, &guard), Some(&(i * 2)));
        }
        assert_eq!(map.get(&1000, &guard), None);
        drop(guard);
        assert!(map.remove(&7));
        assert!(!map.remove(&7));
        assert_eq!(map.len(), 99);
        map.check_invariants().unwrap();
    }

    #[test]
    fn matching_prehashed_routes_to_the_right_shard() {
        let map: ShardedRpMap<String, u64> = ShardedRpMap::with_shards(8);
        for i in 0..64 {
            map.insert(format!("key-{i}"), i);
        }
        let guard = map.pin();
        for i in 0..64_u64 {
            let name = format!("key-{i}");
            let probe = name.as_bytes();
            let hash = map.hash_one(name.as_str());
            assert_eq!(
                map.get_matching_prehashed(hash, |k| k.as_bytes() == probe, &guard),
                Some(&i),
                "{name}"
            );
        }
        let hash = map.hash_one("missing");
        assert_eq!(
            map.get_matching_prehashed(hash, |k| k.as_bytes() == b"missing", &guard),
            None
        );
    }

    #[test]
    fn keys_route_consistently() {
        let map = Map::with_shards(8);
        for i in 0..256 {
            map.insert(i, i);
        }
        for i in 0..256_u64 {
            let s = map.shard_for_key(&i);
            assert!(s < 8);
            assert!(
                map.shard(s).contains_key(&i),
                "key {i} not in its shard {s}"
            );
        }
        map.check_invariants().unwrap();
    }

    #[test]
    fn shards_fill_roughly_evenly() {
        let map = Map::with_shards(16);
        for i in 0..4096 {
            map.insert(i, i);
        }
        let stats = map.stats();
        assert_eq!(stats.len(), 4096);
        assert!(
            stats.imbalance() < 1.5,
            "shard imbalance {} too high: {:?}",
            stats.imbalance(),
            stats.shard_lens
        );
    }

    #[test]
    fn single_shard_degenerates_to_plain_map() {
        let map = Map::with_shards(1);
        assert_eq!(map.shard_count(), 1);
        map.insert(1, 10);
        assert_eq!(map.get_cloned(&1), Some(10));
        assert_eq!(map.shard_for_key(&1), 0);
        map.check_invariants().unwrap();
    }

    #[test]
    fn per_shard_resizes_are_independent() {
        let map = Map::with_shards(4);
        for i in 0..512 {
            map.insert(i, i);
        }
        let before: Vec<usize> = map.shards().iter().map(|s| s.num_buckets()).collect();
        map.shard(0).expand();
        map.shard(2).resize_to(128);
        let after: Vec<usize> = map.shards().iter().map(|s| s.num_buckets()).collect();
        assert_eq!(after[0], before[0] * 2);
        assert_eq!(after[1], before[1]);
        assert_eq!(after[2], 128);
        assert_eq!(after[3], before[3]);
        let guard = map.pin();
        for i in 0..512 {
            assert_eq!(map.get(&i, &guard), Some(&i));
        }
        drop(guard);
        map.check_invariants().unwrap();
        assert_eq!(map.stats().shards_resized(), 2);
    }

    #[test]
    fn expand_all_and_resize_total_cover_every_shard() {
        let map = Map::with_shards(4);
        for i in 0..64 {
            map.insert(i, i);
        }
        let before = map.num_buckets();
        map.expand_all();
        assert_eq!(map.num_buckets(), before * 2);
        map.resize_total_to(4 * 32);
        assert_eq!(map.num_buckets(), 4 * 32);
        map.shrink_all();
        assert_eq!(map.num_buckets(), 4 * 16);
        assert_eq!(map.len(), 64);
        map.check_invariants().unwrap();
    }

    #[test]
    fn retain_clear_and_iter_cover_all_shards() {
        let map = Map::with_shards(8);
        for i in 0..200 {
            map.insert(i, i);
        }
        map.retain(|k, _| k % 2 == 0);
        assert_eq!(map.len(), 100);
        let mut contents = map.to_vec();
        contents.sort_unstable();
        assert!(contents.iter().all(|(k, _)| k % 2 == 0));
        assert_eq!(contents.len(), 100);
        map.clear();
        assert!(map.is_empty());
        map.flush_retired();
    }

    #[test]
    fn automatic_policy_expands_hot_shards() {
        let map: Map = ShardedRpMap::with_policy(ShardPolicy {
            shards: 4,
            initial_buckets_per_shard: 4,
            per_shard: rp_hash::ResizePolicy {
                auto_expand: true,
                max_load_factor: 1.0,
                ..rp_hash::ResizePolicy::default()
            },
        });
        for i in 0..1024 {
            map.insert(i, i);
        }
        assert!(
            map.stats().total().expands >= 4,
            "expected per-shard auto-expansion, stats: {:?}",
            map.stats().total()
        );
        assert!(map.num_buckets() > 16);
        map.check_invariants().unwrap();
    }

    #[test]
    fn debug_shows_shape() {
        let map = Map::with_shards(2);
        map.insert(1, 1);
        let s = format!("{map:?}");
        assert!(s.contains("shards"), "{s}");
    }
}
