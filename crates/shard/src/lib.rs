//! A sharded relativistic hash map: parallel writes and resizes on top of
//! wait-free relativistic readers.
//!
//! [`rp_hash::RpHashMap`] gives readers wait-free, resize-transparent
//! lookups, but serialises every update and resize on a single writer mutex
//! — the first scalability wall on a many-core write-heavy workload.
//! `rp-shard` removes it by partitioning the key space across a power-of-two
//! array of independent `RpHashMap` shards:
//!
//! * **Shard routing** uses the *high* bits of the same 64-bit hash the
//!   table's buckets use the *low* bits of, so one hashing pass serves both
//!   decisions (the shards receive the hash pre-computed and never rehash).
//! * **Writes and resizes are shard-local.** Each shard has its own writer
//!   mutex, its own [`rp_hash::ResizePolicy`] and its own deferred-
//!   reclamation threshold, so updates to different shards — including
//!   grow/shrink operations — proceed fully in parallel (the per-partition
//!   resize idea from Malakhov's concurrent rehashing, applied to the
//!   paper's unzip/zip algorithms).
//! * **Readers are oblivious to sharding.** All shards share the
//!   process-wide RCU read domain, so a single [`ShardedRpMap::pin`] guard
//!   covers lookups in *any* shard — which is exactly what makes the batched
//!   [`ShardedRpMap::multi_get`] sound: one guard acquisition is amortised
//!   across every key a batch touches in a shard.
//! * **Batched operations** ([`ShardedRpMap::multi_get`],
//!   [`ShardedRpMap::multi_put`], [`ShardedRpMap::multi_remove`]) group keys
//!   by shard first, then visit each shard once — one guard pin per shard
//!   per read batch, one writer-lock acquisition per shard per write batch.
//! * **Background resize maintenance**
//!   ([`ShardedRpMap::with_maintenance`]): writers that cross a load-factor
//!   threshold only *request* a resize; an `rp-maint` thread drives the
//!   incremental zip/unzip state machine and absorbs every grace-period
//!   wait, so maintained writers never wait for readers.
//!
//! A note on domains: per-shard *grace-period domains* would not buy
//! anything here — readers enter through the global [`rp_rcu::pin`], so any
//! domain's grace period must wait for the same set of reader threads.
//! Sharding instead isolates everything that actually contends: writer
//! locks, resize decisions, and reclamation batching.
//!
//! # Example
//!
//! ```
//! use rp_shard::ShardedRpMap;
//!
//! let map: ShardedRpMap<u64, &'static str> = ShardedRpMap::with_shards(4);
//! map.insert(1, "one");
//! map.insert(2, "two");
//!
//! let guard = map.pin();
//! assert_eq!(map.get(&1, &guard), Some(&"one"));
//! drop(guard);
//!
//! // Batched reads group keys by shard and pin once per shard.
//! assert_eq!(map.multi_get(&[1, 2, 3]), vec![Some("one"), Some("two"), None]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod batch;
mod map;
mod policy;
mod stats;

pub use map::ShardedRpMap;
pub use policy::ShardPolicy;
pub use stats::ShardStats;

/// Re-export of the guard type readers use to delimit lookups.
pub use rp_rcu::RcuGuard;

/// Re-exports of the background-maintenance types used with
/// [`ShardedRpMap::with_maintenance`].
pub use rp_maint::{MaintConfig, MaintStats};
