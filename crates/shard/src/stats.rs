//! Aggregated statistics across shards.

use rp_hash::MapStats;
use rp_maint::MaintStats;

/// A point-in-time snapshot of every shard's counters plus the aggregate,
/// built by [`crate::ShardedRpMap::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// One [`MapStats`] per shard, in shard order.
    pub per_shard: Vec<MapStats>,
    /// Entry count per shard at snapshot time, in shard order.
    pub shard_lens: Vec<usize>,
    /// Counters of the background maintenance thread — steps run, grace
    /// waits absorbed, max writer-observed resize debt — when the map was
    /// built with [`crate::ShardedRpMap::with_maintenance`].
    pub maint: Option<MaintStats>,
}

impl ShardStats {
    /// Sums the per-shard counters into a single [`MapStats`].
    pub fn total(&self) -> MapStats {
        let mut total = MapStats::default();
        for s in &self.per_shard {
            total.expands += s.expands;
            total.shrinks += s.shrinks;
            total.unzip_rounds += s.unzip_rounds;
            total.unzip_splices += s.unzip_splices;
            total.resize_grace_periods += s.resize_grace_periods;
            total.inserts += s.inserts;
            total.replaces += s.replaces;
            total.removes += s.removes;
        }
        total
    }

    /// Number of shards covered by this snapshot.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Total entries across all shards at snapshot time.
    pub fn len(&self) -> usize {
        self.shard_lens.iter().sum()
    }

    /// Returns `true` if every shard was empty at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ratio of the fullest shard to the mean shard occupancy (1.0 =
    /// perfectly balanced). Useful for checking that the high hash bits
    /// spread the key distribution.
    pub fn imbalance(&self) -> f64 {
        let total = self.len();
        if total == 0 || self.shard_lens.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.shard_lens.len() as f64;
        let max = *self.shard_lens.iter().max().expect("non-empty") as f64;
        max / mean
    }

    /// Shards that performed at least one expand or shrink.
    pub fn shards_resized(&self) -> usize {
        self.per_shard
            .iter()
            .filter(|s| s.expands + s.shrinks > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_shards() {
        let stats = ShardStats {
            per_shard: vec![
                MapStats {
                    inserts: 3,
                    expands: 1,
                    ..MapStats::default()
                },
                MapStats {
                    inserts: 2,
                    removes: 1,
                    ..MapStats::default()
                },
            ],
            shard_lens: vec![3, 1],
            maint: None,
        };
        let total = stats.total();
        assert_eq!(total.inserts, 5);
        assert_eq!(total.removes, 1);
        assert_eq!(total.resizes(), 1);
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.shards(), 2);
        assert_eq!(stats.shards_resized(), 1);
        assert!((stats.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_report_balanced() {
        let stats = ShardStats::default();
        assert!(stats.is_empty());
        assert!((stats.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(stats.total(), MapStats::default());
    }
}
