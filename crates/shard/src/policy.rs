//! Shard-count and per-shard resize policy.

use rp_hash::ResizePolicy;

/// Controls how a [`crate::ShardedRpMap`] is partitioned and how each shard
/// resizes itself.
///
/// The per-shard behaviour reuses [`rp_hash::ResizePolicy`] unchanged: every
/// shard runs the paper's zip/shrink and unzip/expand algorithms
/// independently, triggered by its *own* load factor. A hot shard can double
/// while a cold one shrinks, with no coordination between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPolicy {
    /// Number of shards (rounded up to a power of two, clamped to
    /// `1..=MAX_SHARDS`).
    pub shards: usize,
    /// Buckets each shard starts with (rounded up to a power of two by the
    /// shard's own policy).
    pub initial_buckets_per_shard: usize,
    /// Resize policy applied independently by every shard.
    pub per_shard: ResizePolicy,
}

/// Upper bound on the shard count (2^10; beyond this the per-shard state
/// outweighs any contention win).
pub const MAX_SHARDS: usize = 1 << 10;

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy {
            shards: 16,
            initial_buckets_per_shard: 16,
            per_shard: ResizePolicy::default(),
        }
    }
}

impl ShardPolicy {
    /// A policy with `shards` shards and defaults for everything else.
    pub fn with_shards(shards: usize) -> Self {
        ShardPolicy {
            shards,
            ..ShardPolicy::default()
        }
    }

    /// A policy whose shards grow and shrink automatically.
    pub fn automatic(shards: usize) -> Self {
        ShardPolicy {
            shards,
            per_shard: ResizePolicy::automatic(),
            ..ShardPolicy::default()
        }
    }

    /// A policy sized for an expected total entry count: enough initial
    /// buckets that the target load factor is met without any resizes, split
    /// evenly across shards.
    pub fn for_capacity(shards: usize, expected_entries: usize) -> Self {
        let shards = clamp_shards(shards);
        let per_shard_entries = expected_entries.div_ceil(shards).max(1);
        ShardPolicy {
            shards,
            initial_buckets_per_shard: per_shard_entries.next_power_of_two(),
            per_shard: ResizePolicy::automatic(),
        }
    }

    /// The effective (power-of-two, clamped) shard count.
    pub fn effective_shards(&self) -> usize {
        clamp_shards(self.shards)
    }
}

pub(crate) fn clamp_shards(requested: usize) -> usize {
    requested.clamp(1, MAX_SHARDS).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts_round_to_powers_of_two() {
        assert_eq!(clamp_shards(0), 1);
        assert_eq!(clamp_shards(1), 1);
        assert_eq!(clamp_shards(3), 4);
        assert_eq!(clamp_shards(16), 16);
        assert_eq!(clamp_shards(usize::MAX), MAX_SHARDS);
        assert_eq!(ShardPolicy::with_shards(5).effective_shards(), 8);
    }

    #[test]
    fn for_capacity_sizes_buckets_per_shard() {
        let p = ShardPolicy::for_capacity(4, 1000);
        assert_eq!(p.shards, 4);
        assert_eq!(p.initial_buckets_per_shard, 256); // ceil(1000/4)=250 -> 256
        assert!(p.per_shard.auto_expand);
    }

    #[test]
    fn default_is_sixteen_manual_shards() {
        let p = ShardPolicy::default();
        assert_eq!(p.effective_shards(), 16);
        assert!(!p.per_shard.auto_expand);
    }
}
