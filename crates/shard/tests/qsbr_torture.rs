//! rcutorture-style stress for the QSBR read path, on the *maintained*
//! sharded map.
//!
//! The storm itself lives in `rp_workload::torture` and runs against every
//! resizable map in the workspace (see `rp-workload`'s `torture_suite`);
//! this test keeps the sharded-specific configuration — a background
//! maintenance thread whose resizes race the harness's inline resize
//! cycler — plus the grace-period-latency assertion that needs a stalled
//! reader, which only makes sense once per process.
//!
//! Duration is controlled by `RP_TORTURE_SECS` (default 2 — fast enough
//! for tier-1; CI runs a longer mode explicitly).

use std::sync::mpsc;
use std::time::{Duration, Instant};

use rp_hash::QsbrReadHandle;
use rp_maint::MaintConfig;
use rp_rcu::qsbr::QsbrDomain;
use rp_shard::{ShardPolicy, ShardedRpMap};
use rp_workload::torture::{torture_storm, Payload, TortureConfig};

/// The maintained storm map: auto-expand and auto-shrink enabled so the
/// harness's volatile churn crosses both thresholds, with resizes executed
/// by the background `rp-maint` thread (racing the harness's inline resize
/// cycler — both paths must be invisible to readers).
fn storm_map() -> ShardedRpMap<u64, Payload> {
    ShardedRpMap::with_maintenance(
        ShardPolicy {
            shards: 4,
            initial_buckets_per_shard: 16,
            per_shard: rp_hash::ResizePolicy {
                auto_expand: true,
                auto_shrink: true,
                max_load_factor: 2.0,
                min_load_factor: 0.25,
                min_buckets: 16,
                ..rp_hash::ResizePolicy::default()
            },
        },
        MaintConfig::default(),
    )
}

#[test]
fn qsbr_torture() {
    let map = storm_map();
    let outcome = torture_storm(&map, &TortureConfig::default());
    assert!(outcome.resize_transitions >= 1);
    // The maintained map additionally reports completed resizes through its
    // stats; inline + background together must have finished at least one.
    let resizes =
        map.stats().total().resizes() + map.maint_stats().map(|m| m.resizes_finished).unwrap_or(0);
    assert!(
        resizes >= 1,
        "the storm never completed a resize — the torture tested nothing"
    );
}

#[test]
fn stalled_reader_blocks_synchronize_for_its_stall() {
    const STALL: Duration = Duration::from_millis(120);
    const MINIMUM_OBSERVED: Duration = Duration::from_millis(100);

    let (ready_tx, ready_rx) = mpsc::channel();
    let stalled = std::thread::spawn(move || {
        let mut handle = QsbrReadHandle::register();
        // Online, with a (conceptual) reference in hand, and *no* quiescent
        // state for the whole stall: writers must wait out the full window.
        ready_tx.send(()).unwrap();
        std::thread::sleep(STALL);
        handle.quiescent_state();
        drop(handle);
    });

    ready_rx.recv().unwrap();
    let started = Instant::now();
    QsbrDomain::global().synchronize();
    let waited = started.elapsed();
    stalled.join().unwrap();
    assert!(
        waited >= MINIMUM_OBSERVED,
        "synchronize returned after {waited:?} despite a reader stalled for {STALL:?} — \
         the grace period is vacuous"
    );
}
