//! rcutorture-style stress for the QSBR read path.
//!
//! Modeled on the kernel's rcutorture: a population of readers in steady
//! read-side activity, writers continuously replacing tagged values, and
//! the structure resizing under everyone the whole time. The assertions are
//! the RCU contract itself:
//!
//! * **No freed or torn value is ever observed** — every payload carries a
//!   checksum over its key and generation; a use-after-free or torn read
//!   fails the checksum (or crashes, which the test also counts as a
//!   failure).
//! * **No key is ever absent mid-move** — every *stable* key is inserted
//!   once before the storm and only ever replaced, so a reader must find
//!   it in every lookup, at some generation (old or new), no matter how
//!   many zip/unzip splices are in flight.
//! * **Grace periods are real, not vacuous** — a deliberately stalled
//!   reader (online, no quiescent state for over 100 ms) must block
//!   `synchronize` for at least that long.
//!
//! Duration is controlled by `RP_TORTURE_SECS` (default 2 — fast enough
//! for tier-1; CI runs a short mode explicitly and the acceptance run uses
//! 30).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use rp_hash::QsbrReadHandle;
use rp_maint::MaintConfig;
use rp_rcu::qsbr::QsbrDomain;
use rp_shard::{ShardPolicy, ShardedRpMap};

const MAGIC: u64 = 0x9E37_79B9_7F4A_7C15;
const STABLE_KEYS: u64 = 512;
const QSBR_READERS: usize = 3;
const WRITERS: usize = 2;
/// Volatile keys churned per writer cycle — sized to push shards across
/// the expand threshold on insert and back across the shrink threshold on
/// removal, so maintenance-driven resizes cycle continuously.
const VOLATILE_PER_WRITER: u64 = 2048;

#[derive(Clone)]
struct Payload {
    key: u64,
    gen: u64,
    check: u64,
}

impl Payload {
    fn new(key: u64, gen: u64) -> Payload {
        Payload {
            key,
            gen,
            check: key ^ gen.rotate_left(17) ^ MAGIC,
        }
    }

    fn verify(&self, expected_key: u64) {
        assert_eq!(
            self.key, expected_key,
            "reader observed a payload for the wrong key (chain corruption)"
        );
        assert_eq!(
            self.check,
            self.key ^ self.gen.rotate_left(17) ^ MAGIC,
            "reader observed a torn or freed payload (key {}, gen {})",
            self.key,
            self.gen
        );
    }
}

fn torture_duration() -> Duration {
    let secs: f64 = std::env::var("RP_TORTURE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    Duration::from_secs_f64(secs.max(0.1))
}

fn storm_map() -> ShardedRpMap<u64, Payload> {
    ShardedRpMap::with_maintenance(
        ShardPolicy {
            shards: 4,
            initial_buckets_per_shard: 16,
            per_shard: rp_hash::ResizePolicy {
                auto_expand: true,
                auto_shrink: true,
                max_load_factor: 2.0,
                min_load_factor: 0.25,
                min_buckets: 16,
                ..rp_hash::ResizePolicy::default()
            },
        },
        MaintConfig::default(),
    )
}

/// A simple xorshift so reader key choice is cheap and deterministic per
/// seed.
fn next_rand(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn qsbr_torture() {
    let map = Arc::new(storm_map());
    let gen_counter = Arc::new(AtomicU64::new(1));
    for key in 0..STABLE_KEYS {
        map.insert(key, Payload::new(key, 0));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + torture_duration();

    std::thread::scope(|s| {
        // QSBR readers: steady barrier-free lookups, quiescent once per
        // "batch", periodically offline (a parked worker), periodically
        // holding several references across lookups (a pipelined batch).
        for seed in 0..QSBR_READERS as u64 {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut handle = QsbrReadHandle::register();
                let mut rng = 0xDEAD_BEEF ^ (seed + 1);
                let mut ops = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    if ops % 32 == 31 {
                        // Hold a window of references open across several
                        // lookups before verifying them all — the borrows
                        // keep `handle` pinned (no quiescent state can be
                        // announced), so all eight must stay valid.
                        let keys: Vec<u64> =
                            (0..8).map(|_| next_rand(&mut rng) % STABLE_KEYS).collect();
                        let held: Vec<(u64, &Payload)> = keys
                            .iter()
                            .map(|&k| {
                                (
                                    k,
                                    map.get_qsbr(&k, &handle)
                                        .expect("stable key absent mid-move"),
                                )
                            })
                            .collect();
                        for (k, payload) in held {
                            payload.verify(k);
                        }
                    } else {
                        let k = next_rand(&mut rng) % STABLE_KEYS;
                        map.get_qsbr(&k, &handle)
                            .expect("stable key absent mid-move")
                            .verify(k);
                    }
                    ops += 1;
                    if ops.is_multiple_of(128) {
                        handle.quiescent_state();
                    }
                    if ops.is_multiple_of(8192) {
                        // A parked worker: offline while "blocked".
                        handle.offline_scope(std::thread::yield_now);
                    }
                }
            });
        }

        // One EBR reader alongside: grace periods must cover both flavors
        // at once.
        {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = 0xFEED_F00D_u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = next_rand(&mut rng) % STABLE_KEYS;
                    let guard = map.pin();
                    map.get(&k, &guard)
                        .expect("stable key absent mid-move (EBR)")
                        .verify(k);
                }
            });
        }

        // Writers: continuously replace stable keys at fresh generations
        // and churn a volatile block up (forcing expand requests) and back
        // down (forcing shrink requests), so the maintenance thread cycles
        // zip/unzip resizes for the whole run.
        for w in 0..WRITERS as u64 {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            let gen_counter = Arc::clone(&gen_counter);
            s.spawn(move || {
                let volatile_base = (1 << 32) + w * VOLATILE_PER_WRITER;
                while !stop.load(Ordering::Relaxed) {
                    for key in (w..STABLE_KEYS).step_by(WRITERS) {
                        let gen = gen_counter.fetch_add(1, Ordering::Relaxed);
                        map.insert(key, Payload::new(key, gen));
                    }
                    for i in 0..VOLATILE_PER_WRITER {
                        map.insert(volatile_base + i, Payload::new(volatile_base + i, 0));
                    }
                    for i in 0..VOLATILE_PER_WRITER {
                        map.remove(&(volatile_base + i));
                    }
                }
            });
        }

        // An explicit resize cycler drives inline zip/unzip concurrently
        // with the maintenance thread's background resizes (both paths
        // race readers; both must be invisible to them).
        {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut round = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    let shard = map.shard((round % 4) as usize);
                    shard.resize_to(if round.is_multiple_of(2) { 128 } else { 32 });
                    round += 1;
                }
            });
        }

        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::SeqCst);
    });

    // Quiesced: every stable key still present at some valid generation.
    let ceiling = gen_counter.load(Ordering::SeqCst);
    let mut handle = QsbrReadHandle::register();
    for key in 0..STABLE_KEYS {
        let payload = map
            .get_qsbr(&key, &handle)
            .expect("stable key lost after the storm");
        payload.verify(key);
        assert!(
            payload.gen < ceiling,
            "generation {} was never issued (ceiling {ceiling})",
            payload.gen
        );
    }
    handle.quiescent_state();
    drop(handle);

    let resizes =
        map.stats().total().resizes() + map.maint_stats().map(|m| m.resizes_finished).unwrap_or(0);
    assert!(
        resizes >= 1,
        "the storm never completed a resize — the torture tested nothing"
    );
    map.check_invariants().unwrap();
    map.flush_retired();
}

#[test]
fn stalled_reader_blocks_synchronize_for_its_stall() {
    const STALL: Duration = Duration::from_millis(120);
    const MINIMUM_OBSERVED: Duration = Duration::from_millis(100);

    let (ready_tx, ready_rx) = mpsc::channel();
    let stalled = std::thread::spawn(move || {
        let mut handle = QsbrReadHandle::register();
        // Online, with a (conceptual) reference in hand, and *no* quiescent
        // state for the whole stall: writers must wait out the full window.
        ready_tx.send(()).unwrap();
        std::thread::sleep(STALL);
        handle.quiescent_state();
        drop(handle);
    });

    ready_rx.recv().unwrap();
    let started = Instant::now();
    QsbrDomain::global().synchronize();
    let waited = started.elapsed();
    stalled.join().unwrap();
    assert!(
        waited >= MINIMUM_OBSERVED,
        "synchronize returned after {waited:?} despite a reader stalled for {STALL:?} — \
         the grace period is vacuous"
    );
}
