//! Concurrent correctness: readers iterate and look up a stable key set at
//! full speed while multiple shards resize continuously and writers churn
//! other shards. The ISSUE's required scenario — two shards resizing while
//! readers iterate — plus a broader mixed-workload hammer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rp_shard::{ShardPolicy, ShardedRpMap};

const STABLE: u64 = 2048;

fn stable_map(shards: usize) -> Arc<ShardedRpMap<u64, u64>> {
    let map = Arc::new(ShardedRpMap::with_policy(ShardPolicy {
        shards,
        initial_buckets_per_shard: 64,
        ..ShardPolicy::default()
    }));
    for k in 0..STABLE {
        map.insert(k, k + 1);
    }
    map
}

#[test]
fn readers_iterate_while_two_shards_resize() {
    let map = stable_map(8);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Two resizer threads each continuously toggle a different shard
    // between a small and a large bucket count.
    for shard_idx in [1_usize, 6] {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut round = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                let target = if round.is_multiple_of(2) { 512 } else { 16 };
                map.shard(shard_idx).resize_to(target);
                round += 1;
            }
            round
        }));
    }

    // Readers iterate the whole map (crossing the resizing shards) and
    // verify the stable key set is always complete.
    for _ in 0..3 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut sweeps = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                let guard = map.pin();
                let count = map.iter(&guard).count();
                // Iteration must never observe a torn table: every stable
                // key is present throughout, so the count is exactly STABLE
                // (no concurrent writers in this test).
                assert_eq!(count as u64, STABLE, "iteration dropped entries mid-resize");
                drop(guard);
                sweeps += 1;
            }
            sweeps
        }));
    }

    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::SeqCst);
    let mut background_progress = Vec::new();
    for h in handles {
        background_progress.push(h.join().unwrap());
    }
    assert!(
        background_progress.iter().all(|&p| p > 0),
        "every resizer and reader must make progress: {background_progress:?}"
    );

    map.check_invariants().unwrap();
    let resized = map.stats().shards_resized();
    assert!(
        resized >= 2,
        "expected ≥2 shards to have resized, got {resized}"
    );
    map.flush_retired();
}

#[test]
fn mixed_workload_with_batches_and_per_shard_resizes() {
    let map = stable_map(16);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Point readers verify stable keys.
    for seed in 0..2_u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut k = seed;
            while !stop.load(Ordering::Relaxed) {
                k = (k * 25214903917 + 11) % STABLE;
                assert_eq!(map.get_cloned(&k), Some(k + 1), "stable key {k} missing");
            }
        }));
    }

    // A batch reader checks multi_get against the stable contract.
    {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut base = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                let keys: Vec<u64> = (0..64).map(|i| (base + i * 31) % STABLE).collect();
                for (key, got) in keys.iter().zip(map.multi_get(&keys)) {
                    assert_eq!(got, Some(key + 1), "multi_get missed stable key {key}");
                }
                base = base.wrapping_add(7);
            }
        }));
    }

    // A batch writer churns volatile keys above the stable range.
    {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0_u64;
            while !stop.load(Ordering::Relaxed) {
                let batch: Vec<(u64, u64)> =
                    (0..32).map(|j| (STABLE + ((i + j) % 512), i)).collect();
                map.multi_put(batch);
                if i % 2 == 1 {
                    let keys: Vec<u64> = (0..32).map(|j| STABLE + ((i + j) % 512)).collect();
                    map.multi_remove(&keys);
                }
                i += 1;
            }
        }));
    }

    // A resizer walks across every shard.
    {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut round = 0_usize;
            while !stop.load(Ordering::Relaxed) {
                let shard = round % map.shard_count();
                let target = if round.is_multiple_of(2) { 256 } else { 32 };
                map.shard(shard).resize_to(target);
                round += 1;
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }

    for k in 0..STABLE {
        assert_eq!(
            map.get_cloned(&k),
            Some(k + 1),
            "stable key {k} after stress"
        );
    }
    map.check_invariants().unwrap();
    map.flush_retired();
}
