//! Integration tests for background resize maintenance: the acceptance
//! property is that on the maintained path **writer threads never wait for
//! readers** — no `synchronize` runs inside `insert`/`remove` — while the
//! maintenance thread resizes storming shards under iterating readers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rp_hash::ResizePolicy;
use rp_maint::MaintConfig;
use rp_shard::{ShardPolicy, ShardedRpMap};

fn maintained_map(shards: usize) -> ShardedRpMap<u64, u64> {
    ShardedRpMap::with_maintenance(
        ShardPolicy {
            shards,
            initial_buckets_per_shard: 8,
            per_shard: ResizePolicy {
                auto_expand: true,
                auto_shrink: true,
                max_load_factor: 2.0,
                min_load_factor: 0.25,
                min_buckets: 8,
                ..ResizePolicy::default()
            },
        },
        MaintConfig::default(),
    )
}

/// Keys that route to shard 0 of `map`, so a storm can target one shard.
fn shard0_keys(map: &ShardedRpMap<u64, u64>, n: usize) -> Vec<u64> {
    (0_u64..)
        .filter(|k| map.shard_for_key(k) == 0)
        .take(n)
        .collect()
}

#[test]
fn writer_storm_never_synchronizes() {
    let map = Arc::new(maintained_map(4));
    let keys = Arc::new(shard0_keys(&map, 3000));

    // Seed a stable prefix so iterating readers always see entries.
    for &k in &keys[..200] {
        map.insert(k, k);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..2 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let guard = map.pin();
                let mut seen = 0_usize;
                for _ in map.iter(&guard) {
                    seen += 1;
                }
                assert!(seen >= 1, "seeded entries must stay visible");
            }
        }));
    }

    // Two writers storm shard 0 far past the expand trigger (8 buckets,
    // load factor 2.0 → the trigger fires from entry 17 on and keeps
    // firing), then churn with removes to exercise the shrink direction.
    // Each writer asserts it never waited for a grace period.
    let mut writers = Vec::new();
    for w in 0..2_usize {
        let map = Arc::clone(&map);
        let keys = Arc::clone(&keys);
        writers.push(std::thread::spawn(move || {
            let before = rp_rcu::thread_synchronize_count();
            let mine: Vec<u64> = keys[200..].iter().copied().skip(w).step_by(2).collect();
            for &k in &mine {
                map.insert(k, k * 2);
            }
            for &k in mine.iter().rev().take(mine.len() / 2) {
                assert!(map.remove(&k));
            }
            rp_rcu::thread_synchronize_count() - before
        }));
    }
    let grace_waits: Vec<u64> = writers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(
        grace_waits,
        vec![0, 0],
        "writers on the maintained path must never call synchronize"
    );

    // The maintenance thread must have resized shard 0 in the background.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = map.stats();
        if stats.per_shard[0].expands >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "maintenance thread never expanded the stormed shard: {:?} / {:?}",
            stats.per_shard[0],
            stats.maint
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    stop.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }

    let maint = map.maint_stats().expect("maintained map exposes stats");
    assert!(maint.requests >= 1, "writers must have requested resizes");
    assert!(maint.grace_waits >= 1, "the maintainer absorbs grace waits");
    assert!(maint.steps >= maint.grace_waits);
    assert!(map.stats().maint.is_some(), "ShardStats carries MaintStats");

    // Every surviving key is intact and the table is structurally sound
    // (check_invariants completes any still-running resize first).
    map.check_invariants().unwrap();
    let guard = map.pin();
    for &k in &keys[..200] {
        assert_eq!(map.get(&k, &guard), Some(&k));
    }
}

#[test]
fn shutdown_leaves_no_half_published_resize() {
    let mut map = maintained_map(2);
    // Storm both shards so resizes are requested and (very likely) still in
    // flight when we shut down; wait until at least one has begun.
    for k in 0..2000_u64 {
        map.insert(k, k);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while map.maint_stats().expect("maintained").began == 0 {
        assert!(
            Instant::now() < deadline,
            "no resize ever began: {:?}",
            map.maint_stats()
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // The shutdown handshake must drain any in-progress resize; nothing may
    // be left half-published.
    map.stop_maintenance();
    assert!(!map.maintained());
    for (i, shard) in map.shards().iter().enumerate() {
        assert!(
            !shard.resize_in_progress(),
            "shard {i} left mid-resize after MaintHandle drop"
        );
    }
    map.check_invariants().unwrap();
    let guard = map.pin();
    for k in 0..2000_u64 {
        assert_eq!(map.get(&k, &guard), Some(&k), "key {k} lost");
    }
}

#[test]
fn drop_mid_storm_is_clean() {
    // Dropping the whole map while the maintainer is mid-resize exercises
    // the MaintHandle-drop handshake plus RpHashMap::drop; miri-style
    // double-free/leak bugs would crash or trip the allocator here.
    for _ in 0..5 {
        let map = maintained_map(2);
        for k in 0..1500_u64 {
            map.insert(k, k);
        }
        drop(map);
    }
}

#[test]
fn maintained_batches_match_plain_semantics() {
    let maintained = maintained_map(4);
    let plain: ShardedRpMap<u64, u64> = ShardedRpMap::with_shards(4);

    let entries: Vec<(u64, u64)> = (0..1024).map(|k| (k, k * 3)).collect();
    assert_eq!(
        maintained.multi_put(entries.clone()),
        plain.multi_put(entries)
    );
    let keys: Vec<u64> = (0..1200).collect();
    assert_eq!(maintained.multi_get(&keys), plain.multi_get(&keys));
    let victims: Vec<u64> = (0..1024).step_by(3).collect();
    assert_eq!(
        maintained.multi_remove(&victims),
        plain.multi_remove(&victims)
    );
    assert_eq!(maintained.len(), plain.len());
    maintained.check_invariants().unwrap();
    maintained.flush_retired();
}
