//! Property-based tests: the sharded relativistic map must behave exactly
//! like `std::collections::HashMap` under arbitrary operation sequences —
//! including batched operations and per-shard resizes interleaved anywhere
//! — and its structural + routing invariants must hold after every
//! sequence. Mirrors `crates/hash/tests/model_proptest.rs`.

use std::collections::HashMap;

use proptest::prelude::*;

use rp_shard::{ShardPolicy, ShardedRpMap};

/// One step of a generated workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Lookup(u16),
    MultiPut(Vec<(u16, u32)>),
    MultiGet(Vec<u16>),
    MultiRemove(Vec<u16>),
    ExpandShard(u8),
    ShrinkShard(u8),
    ResizeShardTo(u8, u16),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        4 => any::<u16>().prop_map(Op::Remove),
        8 => any::<u16>().prop_map(Op::Lookup),
        3 => proptest::collection::vec((any::<u16>(), any::<u32>()), 1..24).prop_map(Op::MultiPut),
        3 => proptest::collection::vec(any::<u16>(), 1..24).prop_map(Op::MultiGet),
        2 => proptest::collection::vec(any::<u16>(), 1..24).prop_map(Op::MultiRemove),
        1 => any::<u8>().prop_map(Op::ExpandShard),
        1 => any::<u8>().prop_map(Op::ShrinkShard),
        1 => (any::<u8>(), 1_u16..256).prop_map(|(s, n)| Op::ResizeShardTo(s, n)),
        1 => Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn behaves_like_std_hashmap(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let map: ShardedRpMap<u16, u32> = ShardedRpMap::with_policy(ShardPolicy {
            shards: 8,
            initial_buckets_per_shard: 2,
            ..ShardPolicy::default()
        });
        let mut model: HashMap<u16, u32> = HashMap::new();
        let shards = map.shard_count();

        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let newly = map.insert(*k, *v);
                    let model_newly = model.insert(*k, *v).is_none();
                    prop_assert_eq!(newly, model_newly, "insert({}, {})", k, v);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(map.remove(k), model.remove(k).is_some(), "remove({})", k);
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(map.get_cloned(k), model.get(k).copied(), "lookup({})", k);
                }
                Op::MultiPut(entries) => {
                    let newly = map.multi_put(entries.clone());
                    let mut model_newly = 0;
                    for (k, v) in entries {
                        if model.insert(*k, *v).is_none() {
                            model_newly += 1;
                        }
                    }
                    prop_assert_eq!(newly, model_newly, "multi_put({:?})", entries);
                }
                Op::MultiGet(keys) => {
                    let got = map.multi_get(keys);
                    for (key, value) in keys.iter().zip(&got) {
                        prop_assert_eq!(
                            value.as_ref(),
                            model.get(key),
                            "multi_get disagreed with model for key {}",
                            key
                        );
                        // The acceptance criterion: batched reads must be
                        // identical to per-key reads.
                        prop_assert_eq!(
                            value.clone(),
                            map.get_cloned(key),
                            "multi_get disagreed with get for key {}",
                            key
                        );
                    }
                }
                Op::MultiRemove(keys) => {
                    let removed = map.multi_remove(keys);
                    let mut model_removed = 0;
                    for k in keys {
                        if model.remove(k).is_some() {
                            model_removed += 1;
                        }
                    }
                    prop_assert_eq!(removed, model_removed, "multi_remove({:?})", keys);
                }
                Op::ExpandShard(s) => map.shard(*s as usize % shards).expand(),
                Op::ShrinkShard(s) => map.shard(*s as usize % shards).shrink(),
                Op::ResizeShardTo(s, n) => map.shard(*s as usize % shards).resize_to(*n as usize),
                Op::Clear => {
                    map.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }

        // Structural + routing invariants hold after any sequence.
        map.check_invariants().map_err(TestCaseError::fail)?;

        // Final contents match exactly.
        let mut contents = map.to_vec();
        contents.sort_unstable();
        let mut expected: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        expected.sort_unstable();
        prop_assert_eq!(contents, expected);
    }

    #[test]
    fn per_shard_resizes_never_lose_or_duplicate_entries(
        keys in proptest::collection::hash_set(any::<u32>(), 1..300),
        resizes in proptest::collection::vec((any::<u8>(), 1_u16..512), 1..16),
    ) {
        let map: ShardedRpMap<u32, u32> = ShardedRpMap::with_policy(ShardPolicy {
            shards: 4,
            initial_buckets_per_shard: 2,
            ..ShardPolicy::default()
        });
        for &k in &keys {
            map.insert(k, k.wrapping_mul(3));
        }
        for &(shard, target) in &resizes {
            map.shard(shard as usize % 4).resize_to(target as usize);
            prop_assert_eq!(map.len(), keys.len());
        }
        map.check_invariants().map_err(TestCaseError::fail)?;
        let guard = map.pin();
        for &k in &keys {
            prop_assert_eq!(map.get(&k, &guard).copied(), Some(k.wrapping_mul(3)));
        }
        prop_assert_eq!(map.iter(&guard).count(), keys.len());
    }

    #[test]
    fn shard_counts_do_not_change_semantics(
        entries in proptest::collection::vec((any::<u16>(), any::<u32>()), 1..200)
    ) {
        let one: ShardedRpMap<u16, u32> = ShardedRpMap::with_shards(1);
        let many: ShardedRpMap<u16, u32> = ShardedRpMap::with_shards(64);
        for &(k, v) in &entries {
            prop_assert_eq!(one.insert(k, v), many.insert(k, v));
        }
        prop_assert_eq!(one.len(), many.len());
        let guard = one.pin();
        for &(k, _) in &entries {
            prop_assert_eq!(one.get(&k, &guard), many.get(&k, &guard));
        }
        one.check_invariants().map_err(TestCaseError::fail)?;
        many.check_invariants().map_err(TestCaseError::fail)?;
    }
}
