//! Property-based equivalence: every table implementation in the workspace
//! (the relativistic map and all baselines) must produce identical results
//! for arbitrary operation sequences, because the benchmark harness treats
//! them as drop-in replacements for one another.

use std::collections::HashMap;

use proptest::prelude::*;

use rp_baselines::{BucketLockTable, ConcurrentMap, DddsTable, MutexTable, RwLockTable, XuTable};
use rp_hash::{FnvBuildHasher, RpHashMap};

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Lookup(u16),
    Resize(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => any::<u16>().prop_map(Op::Remove),
        6 => any::<u16>().prop_map(Op::Lookup),
        1 => (1_u16..256).prop_map(Op::Resize),
    ]
}

fn implementations() -> Vec<Box<dyn ConcurrentMap<u16, u32>>> {
    vec![
        Box::new(RpHashMap::<u16, u32, FnvBuildHasher>::with_buckets_and_hasher(8, FnvBuildHasher)),
        Box::new(DddsTable::<u16, u32>::with_buckets(8)),
        Box::new(RwLockTable::<u16, u32>::with_buckets(8)),
        Box::new(MutexTable::<u16, u32>::with_buckets(8)),
        Box::new(BucketLockTable::<u16, u32>::with_buckets(8)),
        Box::new(XuTable::<u16, u32>::with_buckets(8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn all_implementations_agree(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let maps = implementations();
        let mut model: HashMap<u16, u32> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let expected = model.insert(k, v).is_none();
                    for map in &maps {
                        prop_assert_eq!(
                            map.insert(k, v),
                            expected,
                            "{}: insert({}, {})",
                            map.name(),
                            k,
                            v
                        );
                    }
                }
                Op::Remove(k) => {
                    let expected = model.remove(&k).is_some();
                    for map in &maps {
                        prop_assert_eq!(map.remove(&k), expected, "{}: remove({})", map.name(), k);
                    }
                }
                Op::Lookup(k) => {
                    let expected = model.get(&k).copied();
                    for map in &maps {
                        prop_assert_eq!(map.lookup(&k), expected, "{}: lookup({})", map.name(), k);
                    }
                }
                Op::Resize(n) => {
                    for map in &maps {
                        if map.supports_resize() {
                            map.resize_to(n as usize);
                        }
                    }
                }
            }
            for map in &maps {
                prop_assert_eq!(map.len(), model.len(), "{}: len", map.name());
            }
        }
    }
}
