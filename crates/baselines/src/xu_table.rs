//! Herbert Xu's dual-chain resizable hash table (related-work baseline).
//!
//! In Xu's design every node carries **two** sets of chain pointers, so two
//! bucket arrays can link the same nodes simultaneously. A resize builds the
//! new table's linkage through the spare pointer set while readers keep
//! following the active one, publishes the new table, flips which pointer
//! set is active, and waits for a single grace period. The cost the paper
//! calls out is memory: twice the per-node pointer overhead, all the time —
//! the relativistic unzip algorithm achieves resizing with a single pointer
//! per node.

use std::hash::{BuildHasher, Hash};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use parking_lot::Mutex;

use rp_hash::FnvBuildHasher;
use rp_rcu::RcuDomain;

use crate::traits::ConcurrentMap;

struct XNode<K, V> {
    /// Two independent chain linkages; `active` selects which one readers
    /// follow.
    next: [AtomicPtr<XNode<K, V>>; 2],
    hash: u64,
    key: K,
    value: V,
}

struct XBuckets<K, V> {
    mask: usize,
    heads: Box<[AtomicPtr<XNode<K, V>>]>,
}

impl<K, V> XBuckets<K, V> {
    fn new(n: usize) -> Box<Self> {
        let n = n.max(1).next_power_of_two();
        Box::new(XBuckets {
            mask: n - 1,
            heads: (0..n)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        })
    }
}

/// A resizable concurrent hash table with per-node dual chain pointers.
pub struct XuTable<K, V, S = FnvBuildHasher> {
    /// Which linkage (0 or 1) readers currently follow.
    active: AtomicUsize,
    /// Bucket arrays per linkage; the inactive slot is null outside resizes.
    tables: [AtomicPtr<XBuckets<K, V>>; 2],
    writer: Mutex<()>,
    len: AtomicUsize,
    hasher: S,
}

// SAFETY: same sharing pattern as the other tables in this crate: `&K`/`&V`
// are handed to reader threads and nodes are reclaimed on arbitrary threads.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send> Send for XuTable<K, V, S> {}
// SAFETY: see above.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Sync> Sync for XuTable<K, V, S> {}

impl<K, V> XuTable<K, V, FnvBuildHasher> {
    /// Creates an empty table with `buckets` buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        Self::with_buckets_and_hasher(buckets, FnvBuildHasher)
    }
}

impl<K, V, S> XuTable<K, V, S> {
    /// Creates an empty table with `buckets` buckets and the given hasher.
    pub fn with_buckets_and_hasher(buckets: usize, hasher: S) -> Self {
        XuTable {
            active: AtomicUsize::new(0),
            tables: [
                AtomicPtr::new(Box::into_raw(XBuckets::new(buckets))),
                AtomicPtr::new(std::ptr::null_mut()),
            ],
            writer: Mutex::new(()),
            len: AtomicUsize::new(0),
            hasher,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of buckets.
    pub fn num_buckets(&self) -> usize {
        let active = self.active.load(Ordering::Acquire);
        // SAFETY: the active slot always holds a live bucket array, retired
        // only after a grace period following a flip; we read only the
        // immutable mask.
        unsafe { &*self.tables[active].load(Ordering::Acquire) }.mask + 1
    }

    /// Per-node chain-pointer overhead in units of `usize` (for the memory
    /// ablation bench): this design pays two words per node where the
    /// relativistic table pays one.
    pub const fn next_pointers_per_node() -> usize {
        2
    }
}

impl<K, V, S> XuTable<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher,
{
    fn hash_of(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// Looks up `key`, cloning the value out.
    pub fn get_cloned(&self, key: &K) -> Option<V> {
        let hash = self.hash_of(key);
        let _guard = rp_rcu::pin();
        let active = self.active.load(Ordering::Acquire);
        // SAFETY: the active bucket array and the nodes reachable from it
        // are retired only after a grace period; the guard keeps them alive.
        let table = unsafe { &*self.tables[active].load(Ordering::Acquire) };
        let mut cur = table.heads[(hash as usize) & table.mask].load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: as above.
            let node = unsafe { &*cur };
            if node.hash == hash && &node.key == key {
                return Some(node.value.clone());
            }
            cur = node.next[active].load(Ordering::Acquire);
        }
        None
    }

    /// Inserts `key → value`; returns `true` if the key was newly inserted.
    pub fn insert_kv(&self, key: K, value: V) -> bool {
        let hash = self.hash_of(&key);
        let _w = self.writer.lock();
        let active = self.active.load(Ordering::Acquire);
        let existed = self.remove_locked(active, hash, &key);
        // SAFETY: writer lock held; the active array cannot be retired.
        let table = unsafe { &*self.tables[active].load(Ordering::Acquire) };
        let bucket = (hash as usize) & table.mask;
        let node = Box::into_raw(Box::new(XNode {
            next: [
                AtomicPtr::new(std::ptr::null_mut()),
                AtomicPtr::new(std::ptr::null_mut()),
            ],
            hash,
            key,
            value,
        }));
        // SAFETY: freshly allocated, unpublished.
        unsafe { &*node }.next[active].store(
            table.heads[bucket].load(Ordering::Acquire),
            Ordering::Relaxed,
        );
        table.heads[bucket].store(node, Ordering::Release);
        if !existed {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        !existed
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove_key(&self, key: &K) -> bool {
        let hash = self.hash_of(key);
        let _w = self.writer.lock();
        let active = self.active.load(Ordering::Acquire);
        let removed = self.remove_locked(active, hash, key);
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Unlinks `key` from the active linkage. Writer lock must be held.
    fn remove_locked(&self, active: usize, hash: u64, key: &K) -> bool {
        // SAFETY: writer lock held.
        let table = unsafe { &*self.tables[active].load(Ordering::Acquire) };
        let bucket = (hash as usize) & table.mask;
        let mut prev: Option<NonNull<XNode<K, V>>> = None;
        let mut cur = table.heads[bucket].load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: reachable node protected by the writer lock.
            let node = unsafe { &*cur };
            let next = node.next[active].load(Ordering::Acquire);
            if node.hash == hash && &node.key == key {
                match prev {
                    // SAFETY: predecessor node, alive under the lock.
                    Some(p) => unsafe { p.as_ref() }.next[active].store(next, Ordering::Release),
                    None => table.heads[bucket].store(next, Ordering::Release),
                }
                // SAFETY: unlinked, allocated by `Box::into_raw`, readers
                // pin the global domain.
                unsafe { RcuDomain::global().defer_free(cur) };
                return true;
            }
            prev = NonNull::new(cur);
            cur = next;
        }
        false
    }

    /// Resizes the table to `buckets` buckets by building the spare linkage
    /// and flipping the active index (one grace period, no per-node copies).
    pub fn resize(&self, buckets: usize) {
        let _w = self.writer.lock();
        let active = self.active.load(Ordering::Acquire);
        let inactive = 1 - active;
        // SAFETY: writer lock held.
        let old_table = unsafe { &*self.tables[active].load(Ordering::Acquire) };
        let new_table = XBuckets::<K, V>::new(buckets);

        // Build the new linkage through the spare pointer set. Readers keep
        // traversing the active linkage, which we never touch.
        for head in old_table.heads.iter() {
            let mut cur = head.load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: reachable node under the writer lock.
                let node = unsafe { &*cur };
                let bucket = (node.hash as usize) & new_table.mask;
                node.next[inactive].store(
                    new_table.heads[bucket].load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                new_table.heads[bucket].store(cur, Ordering::Relaxed);
                cur = node.next[active].load(Ordering::Acquire);
            }
        }

        // Publish the new bucket array, flip the active index, and wait for
        // readers still traversing the old linkage.
        self.tables[inactive].store(Box::into_raw(new_table), Ordering::Release);
        self.active.store(inactive, Ordering::Release);
        RcuDomain::global().synchronize();

        // The old bucket array is no longer referenced; the nodes live on.
        let old_ptr = self.tables[active].swap(std::ptr::null_mut(), Ordering::AcqRel);
        // SAFETY: unpublished after a grace period, uniquely owned.
        drop(unsafe { Box::from_raw(old_ptr) });
    }
}

impl<K, V, S> Drop for XuTable<K, V, S> {
    fn drop(&mut self) {
        let active = self.active.load(Ordering::Relaxed);
        // Free the nodes through the active linkage, then both arrays.
        let active_ptr = self.tables[active].load(Ordering::Relaxed);
        if !active_ptr.is_null() {
            // SAFETY: exclusive access; every live node is reachable from
            // the active linkage exactly once.
            let table = unsafe { &*active_ptr };
            for head in table.heads.iter() {
                let mut cur = head.load(Ordering::Relaxed);
                while !cur.is_null() {
                    // SAFETY: as above.
                    let node = unsafe { Box::from_raw(cur) };
                    cur = node.next[active].load(Ordering::Relaxed);
                }
            }
        }
        for slot in &self.tables {
            let ptr = slot.load(Ordering::Relaxed);
            if !ptr.is_null() {
                // SAFETY: exclusive access; arrays are freed exactly once.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

impl<K, V, S> ConcurrentMap<K, V> for XuTable<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Send + Sync,
{
    fn name(&self) -> &'static str {
        "xu-dual-chain"
    }

    fn insert(&self, key: K, value: V) -> bool {
        self.insert_kv(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_key(key)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn len(&self) -> usize {
        XuTable::len(self)
    }

    fn num_buckets(&self) -> usize {
        XuTable::num_buckets(self)
    }

    fn resize_to(&self, buckets: usize) {
        self.resize(buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic_operations() {
        let t: XuTable<u64, u64> = XuTable::with_buckets(8);
        assert!(t.insert_kv(1, 10));
        assert!(!t.insert_kv(1, 11));
        assert_eq!(t.get_cloned(&1), Some(11));
        assert_eq!(t.get_cloned(&2), None);
        assert!(t.remove_key(&1));
        assert!(t.is_empty());
    }

    #[test]
    fn resize_preserves_entries_without_copying() {
        let t: XuTable<u64, u64> = XuTable::with_buckets(4);
        for i in 0..100 {
            t.insert_kv(i, i + 1);
        }
        t.resize(64);
        assert_eq!(t.num_buckets(), 64);
        for i in 0..100 {
            assert_eq!(t.get_cloned(&i), Some(i + 1));
        }
        t.resize(8);
        assert_eq!(t.num_buckets(), 8);
        for i in 0..100 {
            assert_eq!(t.get_cloned(&i), Some(i + 1));
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn lookups_survive_continuous_resizing() {
        let t: Arc<XuTable<u64, u64>> = Arc::new(XuTable::with_buckets(16));
        for i in 0..256 {
            t.insert_kv(i, i);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|seed| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut key = seed as u64;
                    while !stop.load(Ordering::Relaxed) {
                        key = (key * 17 + 3) % 256;
                        assert_eq!(t.get_cloned(&key), Some(key));
                    }
                })
            })
            .collect();
        for round in 0..20 {
            t.resize(if round % 2 == 0 { 64 } else { 16 });
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        RcuDomain::global().synchronize_and_reclaim();
    }

    #[test]
    fn updates_after_resize_work() {
        let t: XuTable<u64, u64> = XuTable::with_buckets(4);
        for i in 0..32 {
            t.insert_kv(i, i);
        }
        t.resize(32);
        for i in 0..16 {
            assert!(t.remove_key(&i));
        }
        for i in 32..40 {
            assert!(t.insert_kv(i, i));
        }
        assert_eq!(t.len(), 24);
        for i in 16..40 {
            assert_eq!(t.get_cloned(&i), Some(i));
        }
    }

    #[test]
    fn overhead_constant_reports_two_pointers() {
        assert_eq!(XuTable::<u64, u64>::next_pointers_per_node(), 2);
    }
}
