//! A global mutex-protected hash table (memcached's `cache_lock` shape).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

use parking_lot::Mutex;

use rp_hash::FnvBuildHasher;

use crate::traits::ConcurrentMap;

/// A hash table protected by a single global mutex.
///
/// Every operation — including lookups — acquires the mutex, exactly like
/// stock memcached 1.4's `cache_lock`-protected item hash table that the
/// paper's memcached experiment contrasts with the relativistic GET fast
/// path.
pub struct MutexTable<K, V, S = FnvBuildHasher> {
    inner: Mutex<HashMap<K, V, S>>,
    buckets_hint: usize,
}

impl<K, V> MutexTable<K, V, FnvBuildHasher>
where
    K: Hash + Eq,
{
    /// Creates an empty table sized for roughly `buckets` entries.
    pub fn with_buckets(buckets: usize) -> Self {
        Self::with_buckets_and_hasher(buckets, FnvBuildHasher)
    }
}

impl<K, V, S> MutexTable<K, V, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    /// Creates an empty table with the given capacity hint and hasher.
    pub fn with_buckets_and_hasher(buckets: usize, hasher: S) -> Self {
        MutexTable {
            inner: Mutex::new(HashMap::with_capacity_and_hasher(buckets, hasher)),
            buckets_hint: buckets.max(1).next_power_of_two(),
        }
    }

    /// Looks up `key` under the mutex.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.inner.lock().get(key).cloned()
    }

    /// Inserts `key → value` under the mutex.
    pub fn insert_kv(&self, key: K, value: V) -> bool {
        self.inner.lock().insert(key, value).is_none()
    }

    /// Removes `key` under the mutex.
    pub fn remove_key(&self, key: &K) -> bool {
        self.inner.lock().remove(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K, V, S> ConcurrentMap<K, V> for MutexTable<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Send + Sync,
{
    fn name(&self) -> &'static str {
        "mutex"
    }

    fn insert(&self, key: K, value: V) -> bool {
        self.insert_kv(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_key(key)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn len(&self) -> usize {
        MutexTable::len(self)
    }

    fn num_buckets(&self) -> usize {
        self.buckets_hint
    }

    fn supports_resize(&self) -> bool {
        // `HashMap` resizes itself internally; there is no published bucket
        // array to resize online.
        false
    }

    fn resize_to(&self, _buckets: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let t: MutexTable<u64, String> = MutexTable::with_buckets(16);
        assert!(t.insert_kv(1, "one".into()));
        assert!(!t.insert_kv(1, "uno".into()));
        assert_eq!(t.get_cloned(&1).as_deref(), Some("uno"));
        assert!(t.remove_key(&1));
        assert!(t.is_empty());
    }

    #[test]
    fn trait_impl_reports_no_resize_support() {
        let t: MutexTable<u64, u64> = MutexTable::with_buckets(16);
        assert!(!ConcurrentMap::supports_resize(&t));
        t.resize_to(1024); // must be a harmless no-op
        assert_eq!(ConcurrentMap::name(&t), "mutex");
    }
}
