//! The DDDS ("Dynamic Dynamic Data Structures") resizable-table baseline.
//!
//! The paper characterises DDDS as follows: during a resize, readers must
//! check **both** the old and the new table, and must retry (wait) when a
//! resize transition races with their two-table check. The common case (no
//! resize in progress) is fast, but lookups slow down significantly while a
//! resize runs — which is exactly the behaviour the paper's
//! continuous-resize figure shows.
//!
//! This implementation follows that description:
//!
//! * A resize **copies** every entry from the old bucket array into a new
//!   one (fresh nodes), in contrast to the relativistic algorithm which
//!   relinks the existing nodes in place.
//! * While the copy is in progress (`seq` is odd), lookups search the new
//!   table first and fall back to the old one.
//! * A sequence counter detects the resize transitions; a lookup that
//!   straddles one retries.
//! * Node reclamation reuses the workspace's RCU domain (the original DDDS
//!   sits on equivalent kernel lifetime machinery), so readers can traverse
//!   chains without per-bucket locks; the *algorithmic* differences under
//!   study — two-table lookups, retries and full-copy resizes — are
//!   preserved.

use std::hash::{BuildHasher, Hash};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use parking_lot::Mutex;

use rp_hash::FnvBuildHasher;
use rp_rcu::{RcuDomain, RcuGuard};

use crate::traits::ConcurrentMap;

struct DNode<K, V> {
    next: AtomicPtr<DNode<K, V>>,
    hash: u64,
    key: K,
    value: V,
}

struct DBuckets<K, V> {
    mask: usize,
    heads: Box<[AtomicPtr<DNode<K, V>>]>,
}

impl<K, V> DBuckets<K, V> {
    fn new(n: usize) -> Box<Self> {
        let n = n.max(1).next_power_of_two();
        Box::new(DBuckets {
            mask: n - 1,
            heads: (0..n)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        })
    }
}

/// A resizable concurrent hash table in the DDDS style (see module docs).
pub struct DddsTable<K, V, S = FnvBuildHasher> {
    /// Resize sequence counter: odd while a resize is in progress.
    seq: AtomicUsize,
    /// The table new entries go into (and the only table outside resizes).
    current: AtomicPtr<DBuckets<K, V>>,
    /// The table being drained; null outside resizes.
    old: AtomicPtr<DBuckets<K, V>>,
    writer: Mutex<()>,
    len: AtomicUsize,
    hasher: S,
}

// SAFETY: same reasoning as for `RpHashMap` — `&K`/`&V` are shared with
// reader threads and nodes are dropped on whichever thread reclaims them, so
// both must be `Send + Sync`; the hasher is shared by reference.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send> Send for DddsTable<K, V, S> {}
// SAFETY: see above.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Sync> Sync for DddsTable<K, V, S> {}

impl<K, V> DddsTable<K, V, FnvBuildHasher> {
    /// Creates an empty table with `buckets` buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        Self::with_buckets_and_hasher(buckets, FnvBuildHasher)
    }
}

impl<K, V, S> DddsTable<K, V, S> {
    /// Creates an empty table with `buckets` buckets and the given hasher.
    pub fn with_buckets_and_hasher(buckets: usize, hasher: S) -> Self {
        DddsTable {
            seq: AtomicUsize::new(0),
            current: AtomicPtr::new(Box::into_raw(DBuckets::new(buckets))),
            old: AtomicPtr::new(std::ptr::null_mut()),
            writer: Mutex::new(()),
            len: AtomicUsize::new(0),
            hasher,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of buckets.
    pub fn num_buckets(&self) -> usize {
        // SAFETY: `current` always points to a live bucket array; it is only
        // retired after a grace period and we only read the immutable mask.
        unsafe { &*self.current.load(Ordering::Acquire) }.mask + 1
    }

    /// Returns `true` while a resize is in progress.
    pub fn resize_in_progress(&self) -> bool {
        self.seq.load(Ordering::Acquire) % 2 == 1
    }
}

impl<K, V, S> DddsTable<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher,
{
    fn hash_of<Q>(&self, key: &Q) -> u64
    where
        Q: Hash + ?Sized,
    {
        self.hasher.hash_one(key)
    }

    fn search<'g>(
        buckets: &'g DBuckets<K, V>,
        hash: u64,
        key: &K,
        _guard: &'g RcuGuard<'_>,
    ) -> Option<&'g V> {
        let mut cur = buckets.heads[(hash as usize) & buckets.mask].load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: nodes and bucket arrays are retired through the global
            // RCU domain only after being unpublished, and the guard keeps
            // the grace period open, so the node is alive and immutable
            // (except for `next`, which we load atomically).
            let node = unsafe { &*cur };
            if node.hash == hash && &node.key == key {
                return Some(&node.value);
            }
            cur = node.next.load(Ordering::Acquire);
        }
        None
    }

    /// Looks up `key`, cloning the value out.
    ///
    /// Outside a resize this is a single-table search plus two sequence
    /// loads. During a resize it searches both tables; if the resize
    /// transitions underneath it, it retries.
    pub fn get_cloned(&self, key: &K) -> Option<V> {
        let hash = self.hash_of(key);
        let guard = rp_rcu::pin();
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            // SAFETY: published bucket array, protected by the guard (see
            // `search`).
            let current = unsafe { &*self.current.load(Ordering::Acquire) };
            let mut found = Self::search(current, hash, key, &guard).cloned();
            if found.is_none() {
                let old = self.old.load(Ordering::Acquire);
                if !old.is_null() {
                    // SAFETY: as above; the old array is retired only after
                    // a grace period following its unpublication.
                    found = Self::search(unsafe { &*old }, hash, key, &guard).cloned();
                }
            }
            let s2 = self.seq.load(Ordering::Acquire);
            if s1 == s2 {
                return found;
            }
            // A resize started or finished between our two observations; the
            // entry may have moved between tables — retry.
        }
    }

    /// Inserts `key → value`; returns `true` if the key was newly inserted.
    pub fn insert_kv(&self, key: K, value: V) -> bool {
        let hash = self.hash_of(&key);
        let _w = self.writer.lock();
        // Remove any existing occurrence (in either table) first, then push
        // a fresh node to the current table's bucket head.
        let existed = self.remove_locked(hash, &key);
        // SAFETY: writer lock held; `current` cannot be retired concurrently.
        let current = unsafe { &*self.current.load(Ordering::Acquire) };
        let bucket = (hash as usize) & current.mask;
        let node = Box::into_raw(Box::new(DNode {
            next: AtomicPtr::new(current.heads[bucket].load(Ordering::Acquire)),
            hash,
            key,
            value,
        }));
        current.heads[bucket].store(node, Ordering::Release);
        if !existed {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        !existed
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove_key(&self, key: &K) -> bool {
        let hash = self.hash_of(key);
        let _w = self.writer.lock();
        let removed = self.remove_locked(hash, key);
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Unlinks `key` from whichever table currently holds it. Writer lock
    /// must be held. Does not adjust `len`.
    fn remove_locked(&self, hash: u64, key: &K) -> bool {
        let mut removed = false;
        for table_ptr in [
            self.current.load(Ordering::Acquire),
            self.old.load(Ordering::Acquire),
        ] {
            if table_ptr.is_null() {
                continue;
            }
            // SAFETY: writer lock held; tables are only retired by `resize`,
            // which also requires the writer lock.
            let table = unsafe { &*table_ptr };
            let bucket = (hash as usize) & table.mask;
            let mut prev: Option<NonNull<DNode<K, V>>> = None;
            let mut cur = table.heads[bucket].load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: reachable node, protected by the writer lock.
                let node = unsafe { &*cur };
                let next = node.next.load(Ordering::Acquire);
                if node.hash == hash && &node.key == key {
                    match prev {
                        // SAFETY: predecessor node, alive under the lock.
                        Some(p) => unsafe { p.as_ref() }.next.store(next, Ordering::Release),
                        None => table.heads[bucket].store(next, Ordering::Release),
                    }
                    // SAFETY: unlinked, allocated by `Box::into_raw`,
                    // readers pin the global domain.
                    unsafe { RcuDomain::global().defer_free(cur) };
                    removed = true;
                    break;
                }
                prev = NonNull::new(cur);
                cur = next;
            }
        }
        removed
    }

    /// Resizes the table to `buckets` buckets by copying every entry into a
    /// fresh bucket array.
    ///
    /// Lookups issued while this runs pay the two-table search and possible
    /// retries; the copy itself allocates a new node per entry.
    pub fn resize(&self, buckets: usize) {
        let _w = self.writer.lock();
        let new = Box::into_raw(DBuckets::<K, V>::new(buckets));
        let old = self.current.load(Ordering::Acquire);

        // Enter the resize window: readers now check both tables.
        self.old.store(old, Ordering::Release);
        self.current.store(new, Ordering::Release);
        self.seq.fetch_add(1, Ordering::AcqRel); // odd: resize in progress

        // SAFETY: writer lock held; `old` and `new` stay valid for the whole
        // copy (they are only retired below / by a later resize).
        let (old_ref, new_ref) = unsafe { (&*old, &*new) };
        for head in old_ref.heads.iter() {
            let mut cur = head.load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: reachable node under the writer lock.
                let node = unsafe { &*cur };
                let bucket = (node.hash as usize) & new_ref.mask;
                let copy = Box::into_raw(Box::new(DNode {
                    next: AtomicPtr::new(new_ref.heads[bucket].load(Ordering::Acquire)),
                    hash: node.hash,
                    key: node.key.clone(),
                    value: node.value.clone(),
                }));
                new_ref.heads[bucket].store(copy, Ordering::Release);
                cur = node.next.load(Ordering::Acquire);
            }
        }

        // Leave the resize window and retire the old table (array + nodes)
        // after a grace period.
        self.old.store(std::ptr::null_mut(), Ordering::Release);
        self.seq.fetch_add(1, Ordering::AcqRel); // even again

        let domain = RcuDomain::global();
        for head in old_ref.heads.iter() {
            let mut cur = head.load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: the old table is unpublished (readers that still
                // see it are covered by the grace period); every node in it
                // has been copied, so these originals are garbage.
                let next = unsafe { &*cur }.next.load(Ordering::Acquire);
                // SAFETY: allocated by `Box::into_raw`, unreachable to new
                // readers, freed after a grace period.
                unsafe { domain.defer_free(cur) };
                cur = next;
            }
        }
        // SAFETY: `old` is unpublished and unique; freeing it is deferred
        // until after a grace period.
        unsafe { domain.defer_free(old) };
        domain.reclaim_if_pending(4096);
    }
}

impl<K, V, S> Drop for DddsTable<K, V, S> {
    fn drop(&mut self) {
        // Exclusive access; free whatever the two table slots still own.
        for slot in [&self.current, &self.old] {
            let table_ptr = slot.load(Ordering::Relaxed);
            if table_ptr.is_null() {
                continue;
            }
            // SAFETY: exclusive access; the array and its nodes are owned by
            // the table and freed exactly once (retired nodes were unlinked
            // and are owned by the RCU domain instead).
            let table = unsafe { Box::from_raw(table_ptr) };
            for head in table.heads.iter() {
                let mut cur = head.load(Ordering::Relaxed);
                while !cur.is_null() {
                    // SAFETY: as above.
                    let node = unsafe { Box::from_raw(cur) };
                    cur = node.next.load(Ordering::Relaxed);
                }
            }
        }
    }
}

impl<K, V, S> ConcurrentMap<K, V> for DddsTable<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Send + Sync,
{
    fn name(&self) -> &'static str {
        "ddds"
    }

    fn insert(&self, key: K, value: V) -> bool {
        self.insert_kv(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_key(key)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn len(&self) -> usize {
        DddsTable::len(self)
    }

    fn num_buckets(&self) -> usize {
        DddsTable::num_buckets(self)
    }

    fn resize_to(&self, buckets: usize) {
        self.resize(buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic_operations() {
        let t: DddsTable<u64, u64> = DddsTable::with_buckets(8);
        assert!(t.insert_kv(1, 10));
        assert!(!t.insert_kv(1, 11));
        assert_eq!(t.get_cloned(&1), Some(11));
        assert_eq!(t.get_cloned(&2), None);
        assert!(t.remove_key(&1));
        assert!(!t.remove_key(&1));
        assert!(t.is_empty());
    }

    #[test]
    fn resize_preserves_entries() {
        let t: DddsTable<u64, u64> = DddsTable::with_buckets(8);
        for i in 0..200 {
            t.insert_kv(i, i * 7);
        }
        t.resize(64);
        assert_eq!(t.num_buckets(), 64);
        assert_eq!(t.len(), 200);
        for i in 0..200 {
            assert_eq!(t.get_cloned(&i), Some(i * 7));
        }
        t.resize(4);
        assert_eq!(t.num_buckets(), 4);
        for i in 0..200 {
            assert_eq!(t.get_cloned(&i), Some(i * 7));
        }
        RcuDomain::global().synchronize_and_reclaim();
    }

    #[test]
    fn lookups_survive_continuous_resizing() {
        let t: Arc<DddsTable<u64, u64>> = Arc::new(DddsTable::with_buckets(16));
        for i in 0..512 {
            t.insert_kv(i, i);
        }
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..3)
            .map(|seed| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut key = seed as u64;
                    while !stop.load(Ordering::Relaxed) {
                        key = (key * 31 + 7) % 512;
                        assert_eq!(t.get_cloned(&key), Some(key), "reader missed key {key}");
                    }
                })
            })
            .collect();

        let resizer = {
            let t = Arc::clone(&t);
            thread::spawn(move || {
                for round in 0..30 {
                    t.resize(if round % 2 == 0 { 64 } else { 16 });
                }
            })
        };

        resizer.join().unwrap();
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        RcuDomain::global().synchronize_and_reclaim();
    }

    #[test]
    fn resize_in_progress_flag_settles() {
        let t: DddsTable<u64, u64> = DddsTable::with_buckets(4);
        assert!(!t.resize_in_progress());
        t.resize(16);
        assert!(!t.resize_in_progress());
    }
}
