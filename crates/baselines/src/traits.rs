//! The common interface the benchmark harness drives.

use std::hash::Hash;

use rp_hash::RpHashMap;
use rp_shard::ShardedRpMap;
use rp_splitorder::SplitOrderMap;

/// A concurrent map abstraction over every hash-table implementation in the
/// workspace (the relativistic table and all baselines).
///
/// The benchmark harness and the cross-implementation equivalence tests are
/// written against this trait so every design runs the exact same workload.
pub trait ConcurrentMap<K, V>: Send + Sync
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Human-readable name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Inserts `key → value`; returns `true` if the key was newly inserted.
    fn insert(&self, key: K, value: V) -> bool;

    /// Removes `key`; returns `true` if it was present.
    fn remove(&self, key: &K) -> bool;

    /// Looks up `key`, cloning the value out.
    fn lookup(&self, key: &K) -> Option<V>;

    /// Returns `true` if `key` is present.
    fn contains(&self, key: &K) -> bool {
        self.lookup(key).is_some()
    }

    /// Number of entries.
    fn len(&self) -> usize;

    /// Returns `true` if the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of buckets.
    fn num_buckets(&self) -> usize;

    /// Whether this implementation supports online resizing.
    fn supports_resize(&self) -> bool {
        true
    }

    /// Resizes the table to approximately `buckets` buckets (a no-op for
    /// fixed-size implementations; see [`ConcurrentMap::supports_resize`]).
    fn resize_to(&self, buckets: usize);
}

impl<K, V, S> ConcurrentMap<K, V> for RpHashMap<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: std::hash::BuildHasher + Send + Sync,
{
    fn name(&self) -> &'static str {
        "rp"
    }

    fn insert(&self, key: K, value: V) -> bool {
        RpHashMap::insert(self, key, value)
    }

    fn remove(&self, key: &K) -> bool {
        RpHashMap::remove(self, key)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn len(&self) -> usize {
        RpHashMap::len(self)
    }

    fn num_buckets(&self) -> usize {
        RpHashMap::num_buckets(self)
    }

    fn resize_to(&self, buckets: usize) {
        RpHashMap::resize_to(self, buckets)
    }
}

impl<K, V, S> ConcurrentMap<K, V> for ShardedRpMap<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: std::hash::BuildHasher + Send + Sync,
{
    fn name(&self) -> &'static str {
        "rp-shard"
    }

    fn insert(&self, key: K, value: V) -> bool {
        ShardedRpMap::insert(self, key, value)
    }

    fn remove(&self, key: &K) -> bool {
        ShardedRpMap::remove(self, key)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn len(&self) -> usize {
        ShardedRpMap::len(self)
    }

    fn num_buckets(&self) -> usize {
        ShardedRpMap::num_buckets(self)
    }

    fn resize_to(&self, buckets: usize) {
        self.resize_total_to(buckets)
    }
}

impl<K, V, S> ConcurrentMap<K, V> for SplitOrderMap<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: std::hash::BuildHasher + Send + Sync,
{
    fn name(&self) -> &'static str {
        "splitorder"
    }

    fn insert(&self, key: K, value: V) -> bool {
        SplitOrderMap::insert(self, key, value)
    }

    fn remove(&self, key: &K) -> bool {
        SplitOrderMap::remove(self, key)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn len(&self) -> usize {
        SplitOrderMap::len(self)
    }

    fn num_buckets(&self) -> usize {
        SplitOrderMap::num_buckets(self)
    }

    fn resize_to(&self, buckets: usize) {
        SplitOrderMap::resize_to(self, buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_hash::FnvBuildHasher;

    fn exercise(map: &dyn ConcurrentMap<u64, u64>) {
        assert!(map.is_empty());
        assert!(map.insert(1, 10));
        assert!(!map.insert(1, 11));
        assert!(map.insert(2, 20));
        assert_eq!(map.lookup(&1), Some(11));
        assert_eq!(map.lookup(&3), None);
        assert!(map.contains(&2));
        assert_eq!(map.len(), 2);
        assert!(map.remove(&1));
        assert!(!map.remove(&1));
        assert_eq!(map.len(), 1);
        if map.supports_resize() {
            map.resize_to(64);
            assert_eq!(map.lookup(&2), Some(20));
        }
    }

    #[test]
    fn rp_hash_map_implements_the_trait() {
        let map: RpHashMap<u64, u64, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(8, FnvBuildHasher);
        exercise(&map);
        assert_eq!(ConcurrentMap::name(&map), "rp");
    }

    #[test]
    fn sharded_rp_map_implements_the_trait() {
        let map: ShardedRpMap<u64, u64> = ShardedRpMap::with_shards(4);
        exercise(&map);
        assert_eq!(ConcurrentMap::name(&map), "rp-shard");
    }

    #[test]
    fn split_order_map_implements_the_trait() {
        let map: SplitOrderMap<u64, u64> = SplitOrderMap::with_buckets(8);
        exercise(&map);
        assert_eq!(ConcurrentMap::name(&map), "splitorder");
    }
}
