//! Baseline concurrent hash tables the paper compares against.
//!
//! The paper's evaluation pits the relativistic resizable hash table against
//! two alternative designs (plus, in related work, a third):
//!
//! * [`DddsTable`] — "Dynamic Dynamic Data Structures": a resizable table
//!   whose readers must consult both the old and the new bucket array while
//!   a resize is in progress and retry when a resize transition races with
//!   them. Fast when idle, markedly slower during resizes.
//! * [`RwLockTable`] — a single global reader-writer lock around a plain
//!   bucket array. Readers serialise on the lock's cache line, so lookup
//!   throughput does not scale with reader threads.
//! * [`XuTable`] — Herbert Xu's dual-chain design: every node carries two
//!   sets of chain pointers so that two bucket arrays can share nodes; a
//!   resize builds the second linkage and flips which one readers follow.
//!   Resizes need only one grace period, at the cost of doubling the
//!   per-node pointer overhead.
//!
//! Two further baselines round out the comparison space used by the
//! memcached experiment and the ablation benches:
//!
//! * [`MutexTable`] — a single global mutex (memcached's `cache_lock`).
//! * [`BucketLockTable`] — per-bucket reader-writer locks (fine-grained
//!   locking without RCU).
//!
//! All of them implement the [`ConcurrentMap`] trait so the benchmark
//! harness and the equivalence tests can drive them interchangeably.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bucket_lock;
mod ddds;
mod mutex_table;
mod rwlock_table;
mod traits;
mod xu_table;

pub use bucket_lock::BucketLockTable;
pub use ddds::DddsTable;
pub use mutex_table::MutexTable;
pub use rwlock_table::RwLockTable;
pub use traits::ConcurrentMap;
pub use xu_table::XuTable;
