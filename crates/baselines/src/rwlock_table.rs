//! A global reader-writer-locked hash table (the paper's `rwlock` baseline).

use std::hash::{BuildHasher, Hash};

use parking_lot::RwLock;

use rp_hash::FnvBuildHasher;

use crate::traits::ConcurrentMap;

/// A hash table protected by one process-wide reader-writer lock.
///
/// Lookups take the lock in shared mode, so they never block each other
/// logically — but every acquisition performs an atomic read-modify-write on
/// the lock word, which serialises readers on a single cache line. This is
/// the design whose lookup throughput the paper shows staying flat (or
/// degrading) as reader threads are added.
pub struct RwLockTable<K, V, S = FnvBuildHasher> {
    inner: RwLock<Inner<K, V>>,
    hasher: S,
}

struct Inner<K, V> {
    mask: usize,
    len: usize,
    buckets: Vec<Vec<(K, V)>>,
}

impl<K, V> Inner<K, V> {
    fn new(buckets: usize) -> Self {
        let buckets = buckets.max(1).next_power_of_two();
        Inner {
            mask: buckets - 1,
            len: 0,
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
        }
    }
}

impl<K, V> RwLockTable<K, V, FnvBuildHasher> {
    /// Creates an empty table with `buckets` buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        Self::with_buckets_and_hasher(buckets, FnvBuildHasher)
    }
}

impl<K, V, S> RwLockTable<K, V, S> {
    /// Creates an empty table with `buckets` buckets and the given hasher.
    pub fn with_buckets_and_hasher(buckets: usize, hasher: S) -> Self {
        RwLockTable {
            inner: RwLock::new(Inner::new(buckets)),
            hasher,
        }
    }
}

impl<K, V, S> RwLockTable<K, V, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    fn bucket_of(&self, inner: &Inner<K, V>, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) & inner.mask
    }

    /// Looks up `key` under the read lock.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let inner = self.inner.read();
        let b = self.bucket_of(&inner, key);
        inner.buckets[b]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Inserts `key → value` under the write lock.
    pub fn insert_kv(&self, key: K, value: V) -> bool {
        let mut inner = self.inner.write();
        let b = self.bucket_of(&inner, &key);
        if let Some(slot) = inner.buckets[b].iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
            false
        } else {
            inner.buckets[b].push((key, value));
            inner.len += 1;
            true
        }
    }

    /// Removes `key` under the write lock.
    pub fn remove_key(&self, key: &K) -> bool {
        let mut inner = self.inner.write();
        let b = self.bucket_of(&inner, key);
        if let Some(pos) = inner.buckets[b].iter().position(|(k, _)| k == key) {
            inner.buckets[b].swap_remove(pos);
            inner.len -= 1;
            true
        } else {
            false
        }
    }

    /// Rebuilds the table with `buckets` buckets under the write lock.
    ///
    /// Readers are blocked for the full duration of the rebuild, in contrast
    /// to the relativistic table.
    pub fn rebuild(&self, buckets: usize) {
        let mut inner = self.inner.write();
        let mut next = Inner::new(buckets);
        next.len = inner.len;
        for bucket in inner.buckets.drain(..) {
            for (k, v) in bucket {
                let b = (self.hasher.hash_one(&k) as usize) & next.mask;
                next.buckets[b].push((k, v));
            }
        }
        *inner = next;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.read().len
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.inner.read().buckets.len()
    }
}

impl<K, V, S> ConcurrentMap<K, V> for RwLockTable<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Send + Sync,
{
    fn name(&self) -> &'static str {
        "rwlock"
    }

    fn insert(&self, key: K, value: V) -> bool {
        self.insert_kv(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_key(key)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn len(&self) -> usize {
        RwLockTable::len(self)
    }

    fn num_buckets(&self) -> usize {
        RwLockTable::num_buckets(self)
    }

    fn resize_to(&self, buckets: usize) {
        self.rebuild(buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_operations() {
        let t: RwLockTable<u64, u64> = RwLockTable::with_buckets(8);
        assert!(t.insert_kv(1, 10));
        assert!(!t.insert_kv(1, 11));
        assert_eq!(t.get_cloned(&1), Some(11));
        assert_eq!(t.get_cloned(&2), None);
        assert!(t.remove_key(&1));
        assert!(!t.remove_key(&1));
        assert!(t.is_empty());
    }

    #[test]
    fn rebuild_preserves_entries() {
        let t: RwLockTable<u64, u64> = RwLockTable::with_buckets(4);
        for i in 0..100 {
            t.insert_kv(i, i * 3);
        }
        t.rebuild(64);
        assert_eq!(t.num_buckets(), 64);
        assert_eq!(t.len(), 100);
        for i in 0..100 {
            assert_eq!(t.get_cloned(&i), Some(i * 3));
        }
        t.rebuild(2);
        assert_eq!(t.num_buckets(), 2);
        for i in 0..100 {
            assert_eq!(t.get_cloned(&i), Some(i * 3));
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let t: Arc<RwLockTable<u64, u64>> = Arc::new(RwLockTable::with_buckets(64));
        for i in 0..1000 {
            t.insert_kv(i, i);
        }
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        assert_eq!(t.get_cloned(&(i % 1000)), Some(i % 1000));
                    }
                })
            })
            .collect();
        for h in readers {
            h.join().unwrap();
        }
    }
}
