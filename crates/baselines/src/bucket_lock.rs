//! A per-bucket-locked hash table (fine-grained locking baseline).

use std::hash::{BuildHasher, Hash};

use parking_lot::RwLock;

use rp_hash::FnvBuildHasher;

use crate::traits::ConcurrentMap;

/// A fixed-size hash table with one reader-writer lock per bucket.
///
/// Fine-grained locking restores disjoint-access parallelism (readers of
/// different buckets do not contend), but every lookup still performs an
/// atomic read-modify-write on its bucket's lock word, and the table cannot
/// be resized without stopping the world — the two shortcomings the paper's
/// design removes.
pub struct BucketLockTable<K, V, S = FnvBuildHasher> {
    mask: usize,
    #[allow(clippy::type_complexity)]
    buckets: Box<[RwLock<Vec<(K, V)>>]>,
    len: std::sync::atomic::AtomicUsize,
    hasher: S,
}

impl<K, V> BucketLockTable<K, V, FnvBuildHasher> {
    /// Creates an empty table with `buckets` buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        Self::with_buckets_and_hasher(buckets, FnvBuildHasher)
    }
}

impl<K, V, S> BucketLockTable<K, V, S> {
    /// Creates an empty table with `buckets` buckets and the given hasher.
    pub fn with_buckets_and_hasher(buckets: usize, hasher: S) -> Self {
        let buckets = buckets.max(1).next_power_of_two();
        BucketLockTable {
            mask: buckets - 1,
            buckets: (0..buckets).map(|_| RwLock::new(Vec::new())).collect(),
            len: std::sync::atomic::AtomicUsize::new(0),
            hasher,
        }
    }
}

impl<K, V, S> BucketLockTable<K, V, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    fn bucket_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) & self.mask
    }

    /// Looks up `key` under its bucket's read lock.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let bucket = self.buckets[self.bucket_of(key)].read();
        bucket
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Inserts `key → value` under its bucket's write lock.
    pub fn insert_kv(&self, key: K, value: V) -> bool {
        let mut bucket = self.buckets[self.bucket_of(&key)].write();
        if let Some(slot) = bucket.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
            false
        } else {
            bucket.push((key, value));
            self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            true
        }
    }

    /// Removes `key` under its bucket's write lock.
    pub fn remove_key(&self, key: &K) -> bool {
        let mut bucket = self.buckets[self.bucket_of(key)].write();
        if let Some(pos) = bucket.iter().position(|(k, _)| k == key) {
            bucket.swap_remove(pos);
            self.len.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of buckets (fixed at construction time).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }
}

impl<K, V, S> ConcurrentMap<K, V> for BucketLockTable<K, V, S>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Send + Sync,
{
    fn name(&self) -> &'static str {
        "bucket-lock"
    }

    fn insert(&self, key: K, value: V) -> bool {
        self.insert_kv(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_key(key)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn len(&self) -> usize {
        BucketLockTable::len(self)
    }

    fn num_buckets(&self) -> usize {
        BucketLockTable::num_buckets(self)
    }

    fn supports_resize(&self) -> bool {
        false
    }

    fn resize_to(&self, _buckets: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_operations() {
        let t: BucketLockTable<u64, u64> = BucketLockTable::with_buckets(8);
        assert!(t.insert_kv(1, 10));
        assert!(!t.insert_kv(1, 11));
        assert_eq!(t.get_cloned(&1), Some(11));
        assert!(t.remove_key(&1));
        assert!(t.is_empty());
        assert_eq!(t.num_buckets(), 8);
    }

    #[test]
    fn concurrent_mixed_workload() {
        let t: Arc<BucketLockTable<u64, u64>> = Arc::new(BucketLockTable::with_buckets(64));
        let threads: Vec<_> = (0..4)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let base = tid * 1000;
                    for i in 0..500_u64 {
                        t.insert_kv(base + i, i);
                    }
                    for i in 0..500_u64 {
                        assert_eq!(t.get_cloned(&(base + i)), Some(i));
                    }
                    for i in 0..250_u64 {
                        assert!(t.remove_key(&(base + i)));
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 4 * 250);
    }
}
