//! A fixed-capacity, allocation-free slow-request log.
//!
//! The sampled serving path times each phase of a request — decode, index
//! (the engine call), serialize — and hands the finished span here. Spans
//! whose total service time clears a runtime-adjustable threshold are kept
//! in a ring read back by `STATS SLOW`, so "the cache got slow" can be
//! answered with *which opcode, which key, which phase* instead of a
//! histogram tail.
//!
//! Recording follows the same per-slot seqlock discipline as
//! [`crate::TraceRing`]: one relaxed `fetch_add` claims a slot, relaxed
//! stores fill it, and a release store of the sequence publishes it.
//! Nothing allocates and nothing blocks; a scrape racing a wrap sees the
//! old span or the new one, never a blend.

use std::sync::atomic::{AtomicU64, Ordering};

/// Slow-log opcode tag: a GET (single- or multi-key).
pub const OP_GET: u64 = 1;
/// Slow-log opcode tag: a SET.
pub const OP_SET: u64 = 2;
/// Slow-log opcode tag: a DELETE.
pub const OP_DELETE: u64 = 3;
/// Slow-log opcode tag: everything else (stats, version, …).
pub const OP_OTHER: u64 = 4;

/// Stable label for a slow-log opcode tag (`STATS SLOW` output).
pub fn op_label(op: u64) -> &'static str {
    match op {
        OP_GET => "get",
        OP_SET => "set",
        OP_DELETE => "delete",
        _ => "other",
    }
}

/// One request-scoped span: who served the request, what it was, and where
/// the time went. `total_ns` covers the request's whole service time;
/// `decode_ns`/`index_ns`/`serialize_ns` are the measured phases (decode is
/// 0 on paths that cannot attribute it, e.g. the threaded server).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SlowSpan {
    /// Ordinal of the worker that served the request.
    pub worker: u64,
    /// The worker-local request id (the worker's post-increment request
    /// counter — monotone per worker, exact even under sampling).
    pub request_id: u64,
    /// Opcode tag ([`OP_GET`], [`OP_SET`], [`OP_DELETE`], [`OP_OTHER`]).
    pub op: u64,
    /// Hash of the (first) key, 0 when the request has no key.
    pub key_hash: u64,
    /// Total service time, nanoseconds.
    pub total_ns: u64,
    /// Time spent in the final protocol-decode step, nanoseconds.
    pub decode_ns: u64,
    /// Time spent in the engine (index lookup / mutation), nanoseconds.
    pub index_ns: u64,
    /// Time spent serializing the response, nanoseconds.
    pub serialize_ns: u64,
}

/// One entry read back from the log: the span plus its log bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowEntry {
    /// 1-based global sequence number.
    pub seq: u64,
    /// Microseconds since telemetry start ([`crate::now_us`]).
    pub at_us: u64,
    /// The recorded span.
    pub span: SlowSpan,
}

#[derive(Default)]
struct SlowSlot {
    /// 0 = never written; otherwise the entry's 1-based sequence number.
    seq: AtomicU64,
    at_us: AtomicU64,
    worker: AtomicU64,
    request_id: AtomicU64,
    op: AtomicU64,
    key_hash: AtomicU64,
    total_ns: AtomicU64,
    decode_ns: AtomicU64,
    index_ns: AtomicU64,
    serialize_ns: AtomicU64,
}

/// Default slow-log capacity (entries retained before wrapping).
pub const DEFAULT_SLOW_CAPACITY: usize = 64;

/// Default slow threshold: spans at or above 1 ms total are logged.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 1_000_000;

/// The fixed-capacity slow-request log. See the module docs.
pub struct SlowLog {
    threshold_ns: AtomicU64,
    head: AtomicU64,
    slots: Box<[SlowSlot]>,
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new(DEFAULT_SLOW_CAPACITY)
    }
}

impl SlowLog {
    /// Creates a log holding `capacity` entries (rounded up to a power of
    /// two, minimum 2) with the default threshold. This is the log's only
    /// allocation.
    pub fn new(capacity: usize) -> SlowLog {
        let n = capacity.max(2).next_power_of_two();
        SlowLog {
            threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NS),
            head: AtomicU64::new(0),
            slots: (0..n).map(|_| SlowSlot::default()).collect(),
        }
    }

    /// Number of entries the log retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current slow threshold, nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Sets the slow threshold (spans with `total_ns >= ns` are logged).
    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Records the span if its total meets the threshold; returns whether
    /// it was logged. The fast path (span under threshold) is a single
    /// relaxed load.
    pub fn record(&self, span: &SlowSpan) -> bool {
        if span.total_ns < self.threshold_ns() {
            return false;
        }
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim as usize) & (self.slots.len() - 1)];
        // Invalidate while the fields are in flux, then publish.
        slot.seq.store(0, Ordering::Release);
        slot.at_us.store(crate::now_us(), Ordering::Relaxed);
        slot.worker.store(span.worker, Ordering::Relaxed);
        slot.request_id.store(span.request_id, Ordering::Relaxed);
        slot.op.store(span.op, Ordering::Relaxed);
        slot.key_hash.store(span.key_hash, Ordering::Relaxed);
        slot.total_ns.store(span.total_ns, Ordering::Relaxed);
        slot.decode_ns.store(span.decode_ns, Ordering::Relaxed);
        slot.index_ns.store(span.index_ns, Ordering::Relaxed);
        slot.serialize_ns
            .store(span.serialize_ns, Ordering::Relaxed);
        slot.seq.store(claim + 1, Ordering::Release);
        true
    }

    /// Slow spans ever logged (including ones the ring has wrapped over).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Reads the retained entries, oldest first. Slots mid-write (or torn
    /// by a racing wrap) are skipped. Allocates the result vector — this
    /// is the scrape path, not the hot path.
    pub fn entries(&self) -> Vec<SlowEntry> {
        let mut entries = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 {
                continue;
            }
            let entry = SlowEntry {
                seq: before,
                at_us: slot.at_us.load(Ordering::Relaxed),
                span: SlowSpan {
                    worker: slot.worker.load(Ordering::Relaxed),
                    request_id: slot.request_id.load(Ordering::Relaxed),
                    op: slot.op.load(Ordering::Relaxed),
                    key_hash: slot.key_hash.load(Ordering::Relaxed),
                    total_ns: slot.total_ns.load(Ordering::Relaxed),
                    decode_ns: slot.decode_ns.load(Ordering::Relaxed),
                    index_ns: slot.index_ns.load(Ordering::Relaxed),
                    serialize_ns: slot.serialize_ns.load(Ordering::Relaxed),
                },
            };
            if slot.seq.load(Ordering::Acquire) != before {
                continue;
            }
            entries.push(entry);
        }
        entries.sort_unstable_by_key(|entry| entry.seq);
        entries
    }

    /// Forgets every retained entry and restarts the sequence numbering.
    /// The threshold is configuration, not data — it survives.
    pub fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("capacity", &self.capacity())
            .field("threshold_ns", &self.threshold_ns())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(total_ns: u64) -> SlowSpan {
        SlowSpan {
            worker: 1,
            request_id: 17,
            op: OP_GET,
            key_hash: 0xdead_beef,
            total_ns,
            decode_ns: 10,
            index_ns: 20,
            serialize_ns: 30,
        }
    }

    #[test]
    fn threshold_filters_and_fields_round_trip() {
        let log = SlowLog::new(8);
        log.set_threshold_ns(1000);
        assert!(!log.record(&span(999)), "under threshold is dropped");
        assert!(log.record(&span(1000)), "at threshold is kept");
        assert_eq!(log.recorded(), 1);
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].seq, 1);
        assert_eq!(entries[0].span, span(1000));
    }

    #[test]
    fn wraparound_keeps_the_newest_entries() {
        let log = SlowLog::new(4);
        log.set_threshold_ns(0);
        for i in 0..10 {
            let mut s = span(1_000_000);
            s.request_id = i;
            log.record(&s);
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(
            entries
                .iter()
                .map(|e| e.span.request_id)
                .collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(log.recorded(), 10);
    }

    #[test]
    fn reset_clears_entries_but_keeps_the_threshold() {
        let log = SlowLog::new(4);
        log.set_threshold_ns(123);
        log.record(&span(1_000_000));
        log.reset();
        assert!(log.entries().is_empty());
        assert_eq!(log.recorded(), 0);
        assert_eq!(log.threshold_ns(), 123);
    }

    #[test]
    fn op_labels_are_stable() {
        assert_eq!(op_label(OP_GET), "get");
        assert_eq!(op_label(OP_SET), "set");
        assert_eq!(op_label(OP_DELETE), "delete");
        assert_eq!(op_label(OP_OTHER), "other");
        assert_eq!(op_label(99), "other");
    }
}
