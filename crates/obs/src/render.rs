//! Prometheus-style text rendering, written through a caller-supplied
//! byte sink.
//!
//! The sink trait mirrors the serving stack's `BufWrite` seam (this crate
//! is dependency-free, so it declares its own single-method trait and the
//! server provides a one-line adapter): rendering writes header and value
//! bytes straight into the connection's output queue, formatting integers
//! into a stack buffer — the scrape path allocates only in the sink's own
//! segment management, never per metric.

use crate::histogram::Snapshot;

/// A byte sink metrics are rendered into. Implemented for `Vec<u8>`; the
/// server adapts its pooled connection buffer.
pub trait MetricSink {
    /// Appends raw bytes.
    fn put_bytes(&mut self, bytes: &[u8]);
}

impl MetricSink for Vec<u8> {
    fn put_bytes(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// Writes `value` in decimal without allocating.
pub fn put_u64(sink: &mut impl MetricSink, value: u64) {
    let mut digits = [0_u8; 20];
    let mut at = digits.len();
    let mut rest = value;
    loop {
        at -= 1;
        digits[at] = b'0' + (rest % 10) as u8;
        rest /= 10;
        if rest == 0 {
            break;
        }
    }
    sink.put_bytes(&digits[at..]);
}

fn header(sink: &mut impl MetricSink, name: &str, help: &str, kind: &str) {
    sink.put_bytes(b"# HELP ");
    sink.put_bytes(name.as_bytes());
    sink.put_bytes(b" ");
    sink.put_bytes(help.as_bytes());
    sink.put_bytes(b"\n# TYPE ");
    sink.put_bytes(name.as_bytes());
    sink.put_bytes(b" ");
    sink.put_bytes(kind.as_bytes());
    sink.put_bytes(b"\n");
}

fn sample(sink: &mut impl MetricSink, name: &str, suffix: &str, value: u64) {
    sink.put_bytes(name.as_bytes());
    sink.put_bytes(suffix.as_bytes());
    sink.put_bytes(b" ");
    put_u64(sink, value);
    sink.put_bytes(b"\n");
}

/// Renders one counter in Prometheus exposition format.
pub fn counter(sink: &mut impl MetricSink, name: &str, help: &str, value: u64) {
    header(sink, name, help, "counter");
    sample(sink, name, "", value);
}

/// Renders one gauge in Prometheus exposition format.
pub fn gauge(sink: &mut impl MetricSink, name: &str, help: &str, value: u64) {
    header(sink, name, help, "gauge");
    sample(sink, name, "", value);
}

/// Quantiles every histogram summary reports.
const QUANTILES: [(&str, f64); 4] = [
    ("{quantile=\"0.5\"}", 0.50),
    ("{quantile=\"0.9\"}", 0.90),
    ("{quantile=\"0.99\"}", 0.99),
    ("{quantile=\"0.999\"}", 0.999),
];

/// Renders a histogram snapshot as a Prometheus summary: four quantiles,
/// `_sum` (approximate, see [`Snapshot::sum_approx`]), `_count`, and a
/// non-standard `_max` sample (the highest occupied bucket's upper bound).
pub fn summary(sink: &mut impl MetricSink, name: &str, help: &str, snap: &Snapshot) {
    header(sink, name, help, "summary");
    for (label, q) in QUANTILES {
        sample(sink, name, label, snap.percentile(q));
    }
    sample(sink, name, "_sum", snap.sum_approx());
    sample(sink, name, "_count", snap.count());
    sample(sink, name, "_max", snap.max());
}

/// An in-progress JSON object written through a [`MetricSink`]: tracks
/// comma placement so callers emit fields in order without bookkeeping.
/// Keys are written verbatim (metric names never need escaping) and every
/// value is an unsigned integer or a nested object, which is all the
/// telemetry schema contains — the `STATS JSON` view stays a single stable
/// line that scrapers can parse without a JSON library.
pub struct JsonObject<'a, S: MetricSink> {
    sink: &'a mut S,
    first: bool,
}

impl<'a, S: MetricSink> JsonObject<'a, S> {
    /// Opens an object (writes `{`).
    pub fn begin(sink: &'a mut S) -> JsonObject<'a, S> {
        sink.put_bytes(b"{");
        JsonObject { sink, first: true }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.sink.put_bytes(b",");
        }
        self.first = false;
        self.sink.put_bytes(b"\"");
        self.sink.put_bytes(name.as_bytes());
        self.sink.put_bytes(b"\":");
    }

    /// Writes one integer field.
    pub fn field(&mut self, name: &str, value: u64) {
        self.key(name);
        put_u64(self.sink, value);
    }

    /// Opens a nested object under `name`; close it with [`end`] before
    /// touching this object again.
    ///
    /// [`end`]: JsonObject::end
    pub fn nested(&mut self, name: &str) -> JsonObject<'_, S> {
        self.key(name);
        JsonObject::begin(self.sink)
    }

    /// Writes a histogram snapshot as a nested object carrying the same
    /// samples as the Prometheus [`summary`] form.
    pub fn summary(&mut self, name: &str, snap: &Snapshot) {
        let mut s = self.nested(name);
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
            s.field(label, snap.percentile(q));
        }
        s.field("sum", snap.sum_approx());
        s.field("count", snap.count());
        s.field("max", snap.max());
        s.end();
    }

    /// Closes the object (writes `}`).
    pub fn end(self) {
        self.sink.put_bytes(b"}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn u64_formatting_is_exact() {
        for (value, want) in [
            (0_u64, "0"),
            (7, "7"),
            (10, "10"),
            (12345, "12345"),
            (u64::MAX, "18446744073709551615"),
        ] {
            let mut out = Vec::new();
            put_u64(&mut out, value);
            assert_eq!(out, want.as_bytes());
        }
    }

    #[test]
    fn counter_and_gauge_render_exact_text() {
        let mut out = Vec::new();
        counter(&mut out, "kv_requests_total", "Requests served.", 42);
        gauge(&mut out, "net_connections", "Open connections.", 3);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "# HELP kv_requests_total Requests served.\n\
             # TYPE kv_requests_total counter\n\
             kv_requests_total 42\n\
             # HELP net_connections Open connections.\n\
             # TYPE net_connections gauge\n\
             net_connections 3\n"
        );
    }

    #[test]
    fn summary_renders_quantiles_count_sum_max() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1000);
        }
        let mut out = Vec::new();
        summary(&mut out, "kv_get_latency_ns", "GET latency.", &h.snapshot());
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with(
            "# HELP kv_get_latency_ns GET latency.\n# TYPE kv_get_latency_ns summary\n"
        ));
        assert!(text.contains("kv_get_latency_ns{quantile=\"0.5\"} "));
        assert!(text.contains("kv_get_latency_ns{quantile=\"0.999\"} "));
        assert!(text.contains("kv_get_latency_ns_count 100\n"));
        assert!(text.contains("kv_get_latency_ns_max "));
    }

    #[test]
    fn json_object_renders_exact_bytes() {
        let h = Histogram::new();
        h.record(1000);
        let snap = h.snapshot();
        let mut out = Vec::new();
        let mut root = JsonObject::begin(&mut out);
        root.field("a", 1);
        {
            let mut inner = root.nested("b");
            inner.field("c", 2);
            inner.end();
        }
        root.summary("lat", &snap);
        root.end();
        let text = String::from_utf8(out).unwrap();
        let p = snap.percentile(0.50);
        let sum = snap.sum_approx();
        let max = snap.max();
        assert_eq!(
            text,
            format!(
                "{{\"a\":1,\"b\":{{\"c\":2}},\"lat\":{{\"p50\":{p},\"p90\":{p},\
                 \"p99\":{p},\"p999\":{p},\"sum\":{sum},\"count\":1,\"max\":{max}}}}}"
            )
        );
    }
}
