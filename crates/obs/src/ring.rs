//! A fixed-capacity, allocation-free ring of timestamped trace events.
//!
//! Discrete events that are too rare for a histogram but too interesting
//! to drop — a resize phase transition, a grace period with its wait
//! duration, a backpressure trip — are pushed into a shared ring and read
//! back by `STATS TRACE`. Recording claims a slot with one relaxed
//! `fetch_add` on the head and then fills the slot's atomics; nothing
//! allocates, and an arbitrarily old ring simply wraps.
//!
//! Readers use each slot's sequence number as a torn-read guard: a slot is
//! reported only if its sequence reads the same before and after the field
//! loads, so a scrape racing a wrap sees either the old event or the new
//! one, never a blend.

use std::sync::atomic::{AtomicU64, Ordering};

/// What kind of event a trace entry records.
///
/// The set is closed (this crate is the telemetry schema for the whole
/// workspace), which keeps slot storage a plain integer — no pointers, no
/// unsafe reconstruction at scrape time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum TraceKind {
    /// An EBR grace period completed; value = wait nanoseconds.
    GraceEbr = 1,
    /// A QSBR grace period completed; value = wait nanoseconds.
    GraceQsbr = 2,
    /// An incremental resize started; value = 1 for expand, 0 for shrink.
    ResizeBegin = 3,
    /// A resize absorbed a grace-period wait; value = wait nanoseconds.
    ResizeGrace = 4,
    /// A resize finished; value = total steps is unknown, records 0.
    ResizeFinish = 5,
    /// The maintenance thread ran a work slice; value = slice nanoseconds.
    MaintSlice = 6,
    /// A connection tripped the output-queue watermark; value = queued
    /// bytes.
    Backpressure = 7,
    /// An idle connection was reaped; value = idle milliseconds (0 when
    /// unknown).
    IdleReap = 8,
    /// A connection was shed at the `max_connections` limit; value = the
    /// connection count at the time.
    ConnShed = 9,
    /// `STATS RESET` zeroed the telemetry; value = 0.
    StatsReset = 10,
    /// A grace period exceeded the stall threshold; value packs the
    /// elapsed nanoseconds with the stalled read-side flavor — build and
    /// split it with [`pack_stall`] / [`unpack_stall`].
    GraceStall = 11,
    /// An accepted connection was lost to an OS-level setup failure
    /// (nonblocking toggle or epoll registration); value = the raw OS
    /// error code.
    AcceptError = 12,
    /// A connection handler panicked; the connection was shed and the
    /// worker kept serving. Value = the connection's fd.
    ConnPanic = 13,
    /// `accept()` hit fd-table exhaustion (EMFILE/ENFILE) and the
    /// listener was backed off; value = the raw OS error code.
    AcceptBackoff = 14,
    /// A maintenance worker panicked mid-slice and was recovered; value =
    /// the unit index it was working on.
    MaintPanic = 15,
    /// A draining connection never drained and was force-closed at the
    /// drain deadline; value = queued bytes abandoned.
    DrainExpired = 16,
}

/// Flavor tag for a [`TraceKind::GraceStall`] value: the EBR side stalled.
pub const STALL_FLAVOR_EBR: u64 = 1;
/// Flavor tag for a [`TraceKind::GraceStall`] value: the QSBR side stalled.
pub const STALL_FLAVOR_QSBR: u64 = 2;

/// Packs a stall's elapsed nanoseconds and read-side flavor into one trace
/// value (flavor in the low two bits). Elapsed saturates at ~146 years.
pub fn pack_stall(flavor: u64, elapsed_ns: u64) -> u64 {
    (elapsed_ns.min(u64::MAX >> 2) << 2) | (flavor & 0b11)
}

/// Splits a [`pack_stall`] value back into `(flavor, elapsed_ns)`.
pub fn unpack_stall(value: u64) -> (u64, u64) {
    (value & 0b11, value >> 2)
}

impl TraceKind {
    /// Stable label used in `STATS TRACE` output.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::GraceEbr => "grace_ebr",
            TraceKind::GraceQsbr => "grace_qsbr",
            TraceKind::ResizeBegin => "resize_begin",
            TraceKind::ResizeGrace => "resize_grace",
            TraceKind::ResizeFinish => "resize_finish",
            TraceKind::MaintSlice => "maint_slice",
            TraceKind::Backpressure => "backpressure",
            TraceKind::IdleReap => "idle_reap",
            TraceKind::ConnShed => "conn_shed",
            TraceKind::StatsReset => "stats_reset",
            TraceKind::GraceStall => "grace_stall",
            TraceKind::AcceptError => "accept_error",
            TraceKind::ConnPanic => "conn_panic",
            TraceKind::AcceptBackoff => "accept_backoff",
            TraceKind::MaintPanic => "maint_panic",
            TraceKind::DrainExpired => "drain_expired",
        }
    }

    fn from_u64(raw: u64) -> Option<TraceKind> {
        Some(match raw {
            1 => TraceKind::GraceEbr,
            2 => TraceKind::GraceQsbr,
            3 => TraceKind::ResizeBegin,
            4 => TraceKind::ResizeGrace,
            5 => TraceKind::ResizeFinish,
            6 => TraceKind::MaintSlice,
            7 => TraceKind::Backpressure,
            8 => TraceKind::IdleReap,
            9 => TraceKind::ConnShed,
            10 => TraceKind::StatsReset,
            11 => TraceKind::GraceStall,
            12 => TraceKind::AcceptError,
            13 => TraceKind::ConnPanic,
            14 => TraceKind::AcceptBackoff,
            15 => TraceKind::MaintPanic,
            16 => TraceKind::DrainExpired,
            _ => return None,
        })
    }
}

#[derive(Default)]
struct Slot {
    /// 0 = never written; otherwise the event's 1-based sequence number.
    seq: AtomicU64,
    kind: AtomicU64,
    /// Microseconds since process telemetry start.
    at_us: AtomicU64,
    value: AtomicU64,
}

/// One event read back from the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// 1-based global sequence number (total events ever recorded can be
    /// read off the newest event's sequence).
    pub seq: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Microseconds since telemetry start ([`crate::now_us`]).
    pub at_us: u64,
    /// Kind-specific payload (see [`TraceKind`]).
    pub value: u64,
}

/// The fixed-capacity event ring. See the module docs.
pub struct TraceRing {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

/// Default ring capacity (events retained before wrapping).
pub const DEFAULT_RING_CAPACITY: usize = 1024;

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(DEFAULT_RING_CAPACITY)
    }
}

impl TraceRing {
    /// Creates a ring holding `capacity` events (rounded up to a power of
    /// two, minimum 2). This is the ring's only allocation.
    pub fn new(capacity: usize) -> TraceRing {
        let n = capacity.max(2).next_power_of_two();
        TraceRing {
            head: AtomicU64::new(0),
            slots: (0..n).map(|_| Slot::default()).collect(),
        }
    }

    /// Number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records an event. One relaxed `fetch_add` claims the slot; three
    /// relaxed stores fill it; a release store of the sequence publishes
    /// it. Never allocates, never blocks.
    pub fn record(&self, kind: TraceKind, value: u64) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim as usize) & (self.slots.len() - 1)];
        // Invalidate while the fields are in flux, then publish.
        slot.seq.store(0, Ordering::Release);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.at_us.store(crate::now_us(), Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store(claim + 1, Ordering::Release);
    }

    /// Events ever recorded (including ones the ring has since wrapped
    /// over).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Reads the retained events, oldest first. Slots mid-write (or torn
    /// by a racing wrap) are skipped. Allocates the result vector — this
    /// is the scrape path, not the hot path.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 {
                continue;
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let at_us = slot.at_us.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != before {
                continue;
            }
            let Some(kind) = TraceKind::from_u64(kind) else {
                continue;
            };
            events.push(TraceEvent {
                seq: before,
                kind,
                at_us,
                value,
            });
        }
        events.sort_unstable_by_key(|event| event.seq);
        events
    }

    /// Forgets every retained event and restarts the sequence numbering.
    /// Events recorded concurrently land in the fresh era.
    pub fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let ring = TraceRing::new(8);
        ring.record(TraceKind::GraceEbr, 100);
        ring.record(TraceKind::MaintSlice, 200);
        ring.record(TraceKind::Backpressure, 300);
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, TraceKind::GraceEbr);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[2].value, 300);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn wraparound_keeps_only_the_newest_capacity_events() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.record(TraceKind::IdleReap, i);
        }
        let events = ring.events();
        assert_eq!(events.len(), 4, "capacity bounds retention");
        // The newest 4 of 10 events are sequences 7..=10, values 6..=9.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(
            events.iter().map(|e| e.value).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn capacity_rounds_up_and_reset_clears() {
        let ring = TraceRing::new(5);
        assert_eq!(ring.capacity(), 8);
        ring.record(TraceKind::ConnShed, 1);
        ring.reset();
        assert!(ring.events().is_empty());
        assert_eq!(ring.recorded(), 0);
        ring.record(TraceKind::StatsReset, 0);
        assert_eq!(ring.events()[0].seq, 1, "sequence restarts after reset");
    }

    #[test]
    fn stall_values_round_trip_flavor_and_elapsed() {
        let v = pack_stall(STALL_FLAVOR_QSBR, 1_500_000);
        assert_eq!(unpack_stall(v), (STALL_FLAVOR_QSBR, 1_500_000));
        let v = pack_stall(STALL_FLAVOR_EBR, 0);
        assert_eq!(unpack_stall(v), (STALL_FLAVOR_EBR, 0));
        // Saturation keeps the flavor bits intact.
        let v = pack_stall(STALL_FLAVOR_EBR, u64::MAX);
        assert_eq!(unpack_stall(v), (STALL_FLAVOR_EBR, u64::MAX >> 2));
    }

    #[test]
    fn concurrent_recording_never_tears() {
        let ring = std::sync::Arc::new(TraceRing::new(16));
        let mut handles = Vec::new();
        for t in 0..4 {
            let ring = std::sync::Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    ring.record(TraceKind::GraceQsbr, t * 10_000 + i);
                }
            }));
        }
        for _ in 0..200 {
            for event in ring.events() {
                // A torn slot would produce an out-of-range value.
                assert!(event.value % 10_000 < 1000);
                assert_eq!(event.kind, TraceKind::GraceQsbr);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), 4000);
        assert_eq!(ring.events().len(), 16);
    }
}
