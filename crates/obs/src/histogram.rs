//! A concurrently-recordable log-linear histogram.
//!
//! This is `rp-workload`'s `LatencyHistogram` generalized for telemetry:
//! the bucket layout (16 linear sub-buckets per power-of-two octave,
//! ≲6.25% relative error over the full `u64` range) is identical, but the
//! counts are relaxed atomics so any number of threads can record while a
//! scraper reads. Recording one sample is **exactly one relaxed
//! `fetch_add`** on the containing bucket — no total, no max, no lock;
//! those are derived at snapshot time, which is where the laziness the
//! hot path buys is paid for.
//!
//! A scrape taken while writers are recording is a *consistent-enough*
//! view: each bucket is read atomically, so every sample is either fully
//! visible or not yet visible, and the snapshot's total equals the sum of
//! what it saw. Percentiles computed from a snapshot therefore always
//! describe a real (if slightly stale) population.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (16 → log-linear with 4 mantissa bits).
const MINOR_BITS: u32 = 4;
const MINORS: usize = 1 << MINOR_BITS;
/// Values below `MINORS` get exact buckets `0..MINORS`; everything above
/// is log-linear: one group of `MINORS` buckets per octave `4..=63`.
pub(crate) const BUCKETS: usize = MINORS + (64 - MINOR_BITS as usize) * MINORS;

pub(crate) fn bucket_of(value: u64) -> usize {
    if value < MINORS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - MINOR_BITS;
    let minor = ((value >> shift) & (MINORS as u64 - 1)) as usize;
    MINORS + (shift as usize) * MINORS + minor
}

/// Upper bound (inclusive) of the value range bucket `index` covers.
pub(crate) fn bucket_upper(index: usize) -> u64 {
    if index < MINORS {
        return index as u64;
    }
    let shift = ((index - MINORS) / MINORS) as u32;
    let minor = ((index - MINORS) % MINORS) as u128;
    // The top octave's upper bound exceeds u64; saturate.
    let upper = ((MINORS as u128 + minor + 1) << shift) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// A log-linear histogram whose buckets are relaxed atomics.
///
/// The bucket array is heap-allocated **once, at construction** (≈7.6 KiB);
/// recording never allocates. Typical use records nanosecond durations,
/// but any `u64` distribution (batch sizes, queue depths) fits.
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (the only allocation this type makes).
    pub fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the boxed array from a vec.
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> = counts
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec has exactly BUCKETS elements"));
        Histogram { counts }
    }

    /// Records one sample: a single relaxed `fetch_add` on the containing
    /// bucket.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the same sample `count` times (still one `fetch_add`).
    #[inline]
    pub fn record_n(&self, value: u64, count: u64) {
        if count > 0 {
            self.counts[bucket_of(value)].fetch_add(count, Ordering::Relaxed);
        }
    }

    /// Takes a point-in-time copy of the bucket counts. Safe to call while
    /// writers are recording (see the module docs for the consistency
    /// model).
    pub fn snapshot(&self) -> Snapshot {
        let mut counts = vec![0_u64; BUCKETS].into_boxed_slice();
        let mut total = 0_u64;
        for (slot, atomic) in counts.iter_mut().zip(self.counts.iter()) {
            let n = atomic.load(Ordering::Relaxed);
            *slot = n;
            total += n;
        }
        Snapshot { counts, total }
    }

    /// Zeroes every bucket. Samples recorded concurrently with the reset
    /// land in whichever era their bucket write raced into.
    pub fn reset(&self) {
        for bucket in self.counts.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// An owned, immutable copy of a [`Histogram`]'s buckets, with the derived
/// statistics (count, percentiles, approximate sum) computed on demand.
#[derive(Clone)]
pub struct Snapshot {
    counts: Box<[u64]>,
    total: u64,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            counts: vec![0; BUCKETS].into_boxed_slice(),
            total: 0,
        }
    }
}

impl Snapshot {
    /// Number of samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Folds another snapshot into this one (shard aggregation).
    pub fn merge(&mut self, other: &Snapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// The value at or below which `quantile` (in `[0, 1]`) of the samples
    /// fall, reported as the upper bound of the containing bucket (within
    /// ≈6% of the true value). Returns 0 for an empty snapshot.
    pub fn percentile(&self, quantile: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((quantile.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0_u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_upper(index);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// The upper bound of the highest occupied bucket (≈ the maximum
    /// recorded sample, within the bucket's ≈6% width). 0 when empty.
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&count| count > 0)
            .map(bucket_upper)
            .unwrap_or(0)
    }

    /// Approximate sum of all samples, each taken at its bucket's upper
    /// bound (saturating). An upper estimate within the bucket error.
    pub fn sum_approx(&self) -> u64 {
        let mut sum = 0_u64;
        for (index, &count) in self.counts.iter().enumerate() {
            if count > 0 {
                sum = sum.saturating_add(bucket_upper(index).saturating_mul(count));
            }
        }
        sum
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("count", &self.total)
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_cover_u64() {
        let mut last = 0;
        for index in 1..BUCKETS {
            let upper = bucket_upper(index);
            assert!(upper > last, "bucket {index} not monotonic");
            last = upper;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for value in [1_u64, 15, 16, 17, 100, 999, 1_000_000, u64::MAX / 3] {
            let b = bucket_of(value);
            assert!(value <= bucket_upper(b));
            if b > 0 {
                assert!(value > bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn percentiles_match_recorded_population() {
        let h = Histogram::new();
        for value in 1..=10_000_u64 {
            h.record(value);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 10_000);
        let p50 = snap.percentile(0.50) as f64;
        let p99 = snap.percentile(0.99) as f64;
        assert!((p50 / 5_000.0 - 1.0).abs() < 0.07, "p50 = {p50}");
        assert!((p99 / 9_900.0 - 1.0).abs() < 0.07, "p99 = {p99}");
        assert!(snap.max() >= 10_000);
        assert!(snap.sum_approx() >= 10_000 * 10_001 / 2);
    }

    #[test]
    fn merge_and_reset() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(100);
        b.record_n(1_000_000, 3);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.count(), 4);
        assert!(snap.percentile(1.0) >= 1_000_000);
        a.reset();
        assert_eq!(a.snapshot().count(), 0);
    }

    #[test]
    fn empty_snapshot_reports_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.percentile(0.99), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.sum_approx(), 0);
    }
}
