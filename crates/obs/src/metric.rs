//! Scalar metric primitives: counters, gauges, and per-worker shard sets.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter. Recording is one relaxed
/// `fetch_add`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one and returns the post-increment value — the counter doubles
    /// as a sampling tick (e.g. "time every 16th request") at no cost
    /// beyond the `fetch_add` the increment already pays.
    #[inline]
    pub fn inc_and_get(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (`STATS RESET`).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins level metric. Recording is one relaxed store.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge. The owner re-establishes the level on its next
    /// update, so a reset gauge reads 0 only transiently.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Pads a metric to its own cache line so per-worker shards never false
/// share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// A fixed set of per-worker metric shards.
///
/// Each event-loop worker records into its own shard (indexed by worker
/// ordinal, wrapped to the shard count) with zero cross-worker contention;
/// a scrape walks all shards and merges. The shard array is allocated once
/// at construction — steady-state recording touches only the worker's own
/// cache line.
#[derive(Debug)]
pub struct Sharded<T> {
    shards: Box<[CachePadded<T>]>,
}

/// Default shard count: comfortably above the worker counts the server
/// runs with, small enough that scrapes stay cheap.
pub const DEFAULT_SHARDS: usize = 16;

impl<T: Default> Sharded<T> {
    /// Creates `shards` shards (rounded up to a power of two, minimum 1).
    pub fn new(shards: usize) -> Sharded<T> {
        let n = shards.max(1).next_power_of_two();
        Sharded {
            shards: (0..n).map(|_| CachePadded::<T>::default()).collect(),
        }
    }
}

impl<T: Default> Default for Sharded<T> {
    fn default() -> Self {
        Sharded::new(DEFAULT_SHARDS)
    }
}

impl<T> Sharded<T> {
    /// The shard for `worker` (worker ordinals beyond the shard count
    /// wrap — they share a shard, still correctly, just with contention).
    #[inline]
    pub fn for_worker(&self, worker: usize) -> &T {
        &self.shards[worker & (self.shards.len() - 1)].0
    }

    /// Iterates every shard (scrape-time aggregation).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.shards.iter().map(|padded| &padded.0)
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always `false`: a shard set holds at least one shard.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.inc_and_get(), 6);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::default();
        g.set(42);
        assert_eq!(g.get(), 42);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn shards_isolate_workers_and_wrap() {
        let sharded: Sharded<Counter> = Sharded::new(4);
        assert_eq!(sharded.len(), 4);
        sharded.for_worker(0).inc();
        sharded.for_worker(1).add(2);
        sharded.for_worker(4).inc(); // wraps onto shard 0
        let total: u64 = sharded.iter().map(Counter::get).sum();
        assert_eq!(total, 4);
        assert_eq!(sharded.for_worker(0).get(), 2);
        assert!(!sharded.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let sharded: Sharded<Counter> = Sharded::new(3);
        assert_eq!(sharded.len(), 4);
        let sharded: Sharded<Counter> = Sharded::new(0);
        assert_eq!(sharded.len(), 1);
    }
}
