//! # rp-obs
//!
//! An allocation-free telemetry layer for the relativistic serving stack.
//!
//! The paper's central costs are *invisible* ones — grace-period waits,
//! resize phases overlapping readers, maintenance work absorbed off the
//! writer path. This crate makes them observable without perturbing them:
//!
//! * **Hot-path recording is one relaxed atomic.** A [`Counter`] bump, a
//!   [`Gauge`] store, and a [`Histogram`] sample are each a single relaxed
//!   atomic operation; histograms have no total or max on the write side —
//!   everything derived is computed lazily at scrape time.
//! * **Zero heap allocations in steady state.** Every metric is allocated
//!   once, when the global schema is first touched (process start-up).
//!   Recording, including trace-ring writes, never allocates — the serving
//!   stack's 0-allocations-per-GET audit holds with telemetry enabled.
//! * **Per-worker shards.** The hottest metrics (per-opcode latency,
//!   event-batch sizes) are [`Sharded`]: each event-loop worker records
//!   into its own cache line and a scrape merges all shards lazily.
//! * **A trace ring for discrete events.** Resize phase transitions,
//!   grace periods with their wait durations, maintenance slices,
//!   backpressure trips, idle reaps, and connection sheds go into a
//!   fixed-capacity [`TraceRing`] read back by `STATS TRACE`.
//!
//! The crate is dependency-free and sits at the bottom of the workspace:
//! `rp-rcu`, `rp-hash`, `rp-maint`, `rp-net`, and `rp-kvcache` all record
//! into the shared [`Obs`] schema ([`global`]), and the kvcache server
//! renders it live through its `STATS` protocol command
//! ([`Obs::render_prometheus`] via the [`render::MetricSink`] seam).
//!
//! Telemetry defaults to **on**; [`set_enabled`]`(false)` (the server's
//! `--stats off` / `RP_KV_STATS=off`) short-circuits the timed
//! instrumentation points to a single relaxed load.
//!
//! ```
//! use rp_obs::TraceKind;
//!
//! let obs = rp_obs::global();
//! let t = rp_obs::timer();
//! // ... the work being measured ...
//! if let Some(ns) = rp_obs::elapsed_ns(t) {
//!     obs.rcu.sync_ebr_ns.record(ns);
//!     obs.trace.record(TraceKind::GraceEbr, ns);
//! }
//! let mut text = Vec::new();
//! obs.render_prometheus(&mut text);
//! assert!(text.starts_with(b"# HELP"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod histogram;
mod metric;
pub mod render;
mod ring;
pub mod slow;

pub use histogram::{Histogram, Snapshot};
pub use metric::{CachePadded, Counter, Gauge, Sharded, DEFAULT_SHARDS};
pub use render::MetricSink;
pub use ring::{
    pack_stall, unpack_stall, TraceEvent, TraceKind, TraceRing, DEFAULT_RING_CAPACITY,
    STALL_FLAVOR_EBR, STALL_FLAVOR_QSBR,
};
pub use slow::{SlowEntry, SlowLog, SlowSpan};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Global on/off switch, default on. Checked (one relaxed load) by every
/// timed instrumentation point.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is telemetry recording enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables telemetry recording process-wide. Untimed counters
/// keep counting either way (they cost the same as the check would);
/// disabling short-circuits the clock reads around timed sections.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Starts a timing measurement: `Some(now)` when telemetry is enabled,
/// `None` (no clock read) when disabled.
#[inline]
pub fn timer() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Finishes a [`timer`] measurement, returning the elapsed nanoseconds
/// (saturating) — or `None` when the timer was disabled at the start.
#[inline]
pub fn elapsed_ns(start: Option<Instant>) -> Option<u64> {
    start.map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
}

/// Per-request latency sampling rate: the serving hot path times one in
/// this many requests (a request whose post-increment ordinal is divisible
/// by it). Two clock reads per *timed* request are the dominant telemetry
/// cost — at ~1 µs/request they are a few percent of the request itself —
/// so quantiles are estimated from a 1-in-16 sample while every *counter*
/// stays exact. Slow-path timers (grace periods, resize steps, maintenance
/// slices) are rare and remain unsampled.
pub const LATENCY_SAMPLE: u64 = 16;

/// `true` when the request with post-increment ordinal `ordinal` should be
/// timed: the first request and every [`LATENCY_SAMPLE`]-th thereafter
/// (anchoring on 1 means a freshly started server has latency data after
/// its very first request). The compiler folds this to a mask test.
#[inline]
pub fn sample_latency(ordinal: u64) -> bool {
    ordinal % LATENCY_SAMPLE == 1
}

/// Telemetry epoch: the instant the schema (or a timestamp) was first
/// touched.
static START: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the telemetry epoch (trace-event timestamps).
pub fn now_us() -> u64 {
    let start = START.get_or_init(Instant::now);
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Grace-period and reclamation metrics (`rp-rcu`).
#[derive(Debug, Default)]
pub struct RcuObs {
    /// EBR `synchronize` latency through the global funnel, nanoseconds.
    pub sync_ebr_ns: Histogram,
    /// QSBR `synchronize` latency through the global funnel, nanoseconds.
    pub sync_qsbr_ns: Histogram,
    /// Deferred callbacks awaiting a grace period (set when the funnel
    /// queues or reclaims).
    pub reclaim_pending: Gauge,
    /// Deferred callbacks executed after their grace period.
    pub reclaim_executed_total: Counter,
    /// Grace periods flagged by the stall detector as exceeding the
    /// configured threshold.
    pub grace_stalls_total: Counter,
}

/// Incremental-resize metrics (`rp-hash`, aggregated across shards).
#[derive(Debug, Default)]
pub struct ResizeObs {
    /// Duration of each grace-period wait a resize absorbed, nanoseconds.
    pub grace_wait_ns: Histogram,
    /// Duration of each bounded restructuring step (splice/finish work
    /// under the writer lock), nanoseconds.
    pub step_ns: Histogram,
    /// Resizes started (expand or shrink).
    pub begun_total: Counter,
    /// Resizes driven to completion.
    pub finished_total: Counter,
    /// Fullest-shard / mean-shard occupancy ×1000, refreshed at scrape
    /// time (1000 = perfectly balanced).
    pub imbalance_milli: Gauge,
}

/// Background-maintenance metrics (`rp-maint`).
#[derive(Debug, Default)]
pub struct MaintObs {
    /// Duration of each work slice (up to `fairness_slice` resize steps),
    /// nanoseconds.
    pub slice_ns: Histogram,
    /// Resize-work queue depth as last observed by a requester or the
    /// maintenance loop.
    pub queue_depth: Gauge,
    /// Work slices executed.
    pub slices_total: Counter,
    /// Maintenance workers that panicked mid-slice and were recovered
    /// (the in-flight unit is re-queued once; see `rp-maint`).
    pub worker_panics_total: Counter,
}

/// Reactor metrics (`rp-net`).
#[derive(Debug, Default)]
pub struct NetObs {
    /// Connections accepted.
    pub accepts_total: Counter,
    /// Connections shed at admission (the `max_connections` limit or an
    /// exhausted global byte budget).
    pub conns_shed_total: Counter,
    /// Accepted connections lost to OS-level setup failures (nonblocking
    /// toggle, epoll registration).
    pub accept_errors_total: Counter,
    /// Idle connections reaped.
    pub idle_reaped_total: Counter,
    /// Connection handlers that panicked; the connection was shed with a
    /// protocol error reply and the worker kept serving.
    pub conn_panics_total: Counter,
    /// Times the listener was backed off because `accept()` returned
    /// EMFILE/ENFILE (fd-table exhaustion).
    pub accept_backoffs_total: Counter,
    /// Draining connections force-closed at the drain deadline because
    /// the peer never drained the final flush.
    pub drains_expired_total: Counter,
    /// Times a connection's output queue crossed the backpressure
    /// watermark (reads paused until the peer drained).
    pub watermark_trips_total: Counter,
    /// Times a connection's reads were paused because the global byte
    /// budget was exhausted (admission-control backpressure).
    pub backpressure_stalls_total: Counter,
    /// Flush syscalls issued (`writev` batches; one per vectored submit).
    pub flush_syscalls_total: Counter,
    /// Output segments fully flushed. With scatter-gather this exceeds
    /// [`NetObs::flush_syscalls_total`] on pipelined workloads — the
    /// whole point of `writev`.
    pub flush_segments_total: Counter,
    /// Currently open connections.
    pub connections: Gauge,
    /// Bytes currently held in per-connection buffers process-wide (the
    /// level the global byte budget bounds).
    pub bytes_buffered: Gauge,
    /// Readiness events delivered per `epoll_wait` wake (per-worker
    /// shards; epoll occupancy).
    pub batch_size: Sharded<Histogram>,
}

/// One event-loop worker's cache-serving metrics (a shard of
/// [`KvObs::shards`]).
#[derive(Debug, Default)]
pub struct KvWorkerObs {
    /// GET (single- and multi-key) service latency, nanoseconds.
    pub get_ns: Histogram,
    /// SET service latency, nanoseconds.
    pub set_ns: Histogram,
    /// DELETE service latency, nanoseconds.
    pub delete_ns: Histogram,
    /// Everything else (stats, version, …), nanoseconds.
    pub other_ns: Histogram,
    /// Requests served by this worker.
    pub requests: Counter,
    /// Protocol decode errors on this worker's connections.
    pub decode_errors: Counter,
}

/// Cache-protocol metrics (`rp-kvcache`), sharded per worker.
#[derive(Debug, Default)]
pub struct KvObs {
    /// Per-worker shards, merged lazily at scrape time.
    pub shards: Sharded<KvWorkerObs>,
    /// The slow-request log (sampled spans over the threshold),
    /// read back by `STATS SLOW`.
    pub slow: SlowLog,
}

impl KvObs {
    /// Total requests served across workers.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests.get()).sum()
    }

    /// Total decode errors across workers.
    pub fn decode_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.decode_errors.get()).sum()
    }
}

/// The workspace-wide telemetry schema: one group per layer plus the
/// trace ring. Allocated once by [`global`].
#[derive(Debug, Default)]
pub struct Obs {
    /// `rp-rcu` metrics.
    pub rcu: RcuObs,
    /// `rp-hash` resize metrics.
    pub resize: ResizeObs,
    /// `rp-maint` metrics.
    pub maint: MaintObs,
    /// `rp-net` metrics.
    pub net: NetObs,
    /// `rp-kvcache` metrics.
    pub kv: KvObs,
    /// The discrete-event trace ring.
    pub trace: TraceRing,
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// The process-wide telemetry schema. First call allocates every metric;
/// later calls are a single atomic load.
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(Obs::default)
}

impl Obs {
    /// Renders every metric group as Prometheus exposition text. The
    /// caller appends its own engine-level metrics and framing.
    pub fn render_prometheus(&self, sink: &mut impl MetricSink) {
        self.render_kv(sink);
        self.render_net(sink);
        self.render_maint(sink);
        self.render_resize(sink);
        self.render_rcu(sink);
    }

    fn render_kv(&self, sink: &mut impl MetricSink) {
        let mut get = Snapshot::default();
        let mut set = Snapshot::default();
        let mut delete = Snapshot::default();
        let mut other = Snapshot::default();
        for shard in self.kv.shards.iter() {
            get.merge(&shard.get_ns.snapshot());
            set.merge(&shard.set_ns.snapshot());
            delete.merge(&shard.delete_ns.snapshot());
            other.merge(&shard.other_ns.snapshot());
        }
        render::counter(
            sink,
            "kv_requests_total",
            "Cache protocol requests served.",
            self.kv.requests(),
        );
        render::counter(
            sink,
            "kv_decode_errors_total",
            "Protocol decode errors.",
            self.kv.decode_errors(),
        );
        render::summary(sink, "kv_get_latency_ns", "GET service latency.", &get);
        render::summary(sink, "kv_set_latency_ns", "SET service latency.", &set);
        render::summary(
            sink,
            "kv_delete_latency_ns",
            "DELETE service latency.",
            &delete,
        );
        render::summary(
            sink,
            "kv_other_latency_ns",
            "Service latency of remaining opcodes.",
            &other,
        );
    }

    fn render_net(&self, sink: &mut impl MetricSink) {
        render::counter(
            sink,
            "net_accepts_total",
            "Connections accepted.",
            self.net.accepts_total.get(),
        );
        render::counter(
            sink,
            "net_conns_shed_total",
            "Connections shed at admission (connection or byte budget).",
            self.net.conns_shed_total.get(),
        );
        render::counter(
            sink,
            "net_accept_errors_total",
            "Accepted connections lost to OS-level setup failures.",
            self.net.accept_errors_total.get(),
        );
        render::counter(
            sink,
            "net_idle_reaped_total",
            "Idle connections reaped.",
            self.net.idle_reaped_total.get(),
        );
        render::counter(
            sink,
            "net_conn_panics_total",
            "Connection handlers that panicked (connection shed, worker kept).",
            self.net.conn_panics_total.get(),
        );
        render::counter(
            sink,
            "net_accept_backoffs_total",
            "Listener backoffs after accept() hit EMFILE/ENFILE.",
            self.net.accept_backoffs_total.get(),
        );
        render::counter(
            sink,
            "net_drains_expired_total",
            "Draining connections force-closed at the drain deadline.",
            self.net.drains_expired_total.get(),
        );
        render::counter(
            sink,
            "net_watermark_trips_total",
            "Output queues that crossed the backpressure watermark.",
            self.net.watermark_trips_total.get(),
        );
        render::counter(
            sink,
            "net_backpressure_stalls_total",
            "Reads paused because the global byte budget was exhausted.",
            self.net.backpressure_stalls_total.get(),
        );
        render::counter(
            sink,
            "net_flush_syscalls_total",
            "Flush syscalls issued (writev batches).",
            self.net.flush_syscalls_total.get(),
        );
        render::counter(
            sink,
            "net_flush_segments_total",
            "Output segments fully flushed.",
            self.net.flush_segments_total.get(),
        );
        render::gauge(
            sink,
            "net_connections",
            "Currently open connections.",
            self.net.connections.get(),
        );
        render::gauge(
            sink,
            "net_bytes_buffered",
            "Bytes held in per-connection buffers process-wide.",
            self.net.bytes_buffered.get(),
        );
        let mut batch = Snapshot::default();
        for shard in self.net.batch_size.iter() {
            batch.merge(&shard.snapshot());
        }
        render::summary(
            sink,
            "net_batch_size",
            "Readiness events per epoll_wait wake.",
            &batch,
        );
    }

    fn render_maint(&self, sink: &mut impl MetricSink) {
        render::summary(
            sink,
            "maint_slice_ns",
            "Maintenance work-slice duration.",
            &self.maint.slice_ns.snapshot(),
        );
        render::gauge(
            sink,
            "maint_queue_depth",
            "Resize-work queue depth last observed.",
            self.maint.queue_depth.get(),
        );
        render::counter(
            sink,
            "maint_slices_total",
            "Maintenance work slices executed.",
            self.maint.slices_total.get(),
        );
        render::counter(
            sink,
            "maint_worker_panics_total",
            "Maintenance workers recovered after a mid-slice panic.",
            self.maint.worker_panics_total.get(),
        );
    }

    fn render_resize(&self, sink: &mut impl MetricSink) {
        render::summary(
            sink,
            "resize_grace_wait_ns",
            "Grace-period waits absorbed by resizes.",
            &self.resize.grace_wait_ns.snapshot(),
        );
        render::summary(
            sink,
            "resize_step_ns",
            "Bounded resize restructuring steps.",
            &self.resize.step_ns.snapshot(),
        );
        render::counter(
            sink,
            "resize_begun_total",
            "Incremental resizes started.",
            self.resize.begun_total.get(),
        );
        render::counter(
            sink,
            "resize_finished_total",
            "Incremental resizes completed.",
            self.resize.finished_total.get(),
        );
        render::gauge(
            sink,
            "shard_imbalance_milli",
            "Fullest/mean shard occupancy x1000 at scrape time.",
            self.resize.imbalance_milli.get(),
        );
    }

    fn render_rcu(&self, sink: &mut impl MetricSink) {
        render::summary(
            sink,
            "rcu_sync_ebr_ns",
            "EBR synchronize latency.",
            &self.rcu.sync_ebr_ns.snapshot(),
        );
        render::summary(
            sink,
            "rcu_sync_qsbr_ns",
            "QSBR synchronize latency.",
            &self.rcu.sync_qsbr_ns.snapshot(),
        );
        render::gauge(
            sink,
            "rcu_reclaim_pending",
            "Deferred callbacks awaiting a grace period.",
            self.rcu.reclaim_pending.get(),
        );
        render::counter(
            sink,
            "rcu_reclaim_executed_total",
            "Deferred callbacks executed.",
            self.rcu.reclaim_executed_total.get(),
        );
        render::counter(
            sink,
            "rcu_grace_stalls_total",
            "Grace periods flagged as stalled past the threshold.",
            self.rcu.grace_stalls_total.get(),
        );
    }

    /// Renders one worker's shard of the per-worker metrics (the kvcache
    /// server's `STATS WORKER <n>` view): the worker's request and
    /// decode-error counters, its per-opcode latency summaries, and its
    /// epoll batch-size summary. The merged scrape
    /// ([`Obs::render_prometheus`]) aggregates these across workers, which
    /// averages accept-shard imbalance away; this view exposes one shard
    /// verbatim. Worker ordinals beyond the shard count wrap, exactly as
    /// recording does ([`Sharded::for_worker`]).
    pub fn render_worker(&self, worker: usize, sink: &mut impl MetricSink) {
        let shard = self.kv.shards.for_worker(worker);
        render::gauge(
            sink,
            "kv_worker",
            "Worker shard this view covers (ordinals wrap at the shard count).",
            (worker & (self.kv.shards.len() - 1)) as u64,
        );
        render::counter(
            sink,
            "kv_worker_requests_total",
            "Requests served by this worker.",
            shard.requests.get(),
        );
        render::counter(
            sink,
            "kv_worker_decode_errors_total",
            "Protocol decode errors on this worker's connections.",
            shard.decode_errors.get(),
        );
        render::summary(
            sink,
            "kv_worker_get_latency_ns",
            "GET service latency on this worker.",
            &shard.get_ns.snapshot(),
        );
        render::summary(
            sink,
            "kv_worker_set_latency_ns",
            "SET service latency on this worker.",
            &shard.set_ns.snapshot(),
        );
        render::summary(
            sink,
            "kv_worker_delete_latency_ns",
            "DELETE service latency on this worker.",
            &shard.delete_ns.snapshot(),
        );
        render::summary(
            sink,
            "kv_worker_other_latency_ns",
            "Service latency of remaining opcodes on this worker.",
            &shard.other_ns.snapshot(),
        );
        render::summary(
            sink,
            "net_worker_batch_size",
            "Readiness events per epoll_wait wake on this worker.",
            &self.net.batch_size.for_worker(worker).snapshot(),
        );
    }

    /// Renders the retained trace events, oldest first, one
    /// `TRACE <seq> <t_us> <label> <value>` line each (CRLF-terminated —
    /// this output goes straight onto the cache protocol's wire).
    /// [`TraceKind::GraceStall`] events unpack their flavor into the label
    /// (`grace_stall_ebr` / `grace_stall_qsbr`) so a scrape attributes the
    /// stall without decoding the packed value.
    pub fn render_trace(&self, sink: &mut impl MetricSink) {
        self.render_trace_recent(None, sink);
    }

    /// Like [`Obs::render_trace`], but keeping only the most recent
    /// `limit` events when one is given (`STATS TRACE <n>`).
    pub fn render_trace_recent(&self, limit: Option<usize>, sink: &mut impl MetricSink) {
        let events = self.trace.events();
        let skip = limit.map_or(0, |n| events.len().saturating_sub(n));
        for event in &events[skip..] {
            sink.put_bytes(b"TRACE ");
            render::put_u64(sink, event.seq);
            sink.put_bytes(b" ");
            render::put_u64(sink, event.at_us);
            sink.put_bytes(b" ");
            let value = if event.kind == TraceKind::GraceStall {
                let (flavor, elapsed_ns) = unpack_stall(event.value);
                sink.put_bytes(match flavor {
                    ring::STALL_FLAVOR_EBR => b"grace_stall_ebr",
                    ring::STALL_FLAVOR_QSBR => b"grace_stall_qsbr",
                    _ => b"grace_stall",
                });
                elapsed_ns
            } else {
                sink.put_bytes(event.kind.label().as_bytes());
                event.value
            };
            sink.put_bytes(b" ");
            render::put_u64(sink, value);
            sink.put_bytes(b"\r\n");
        }
    }

    /// Renders every metric group as one JSON object — the same data as
    /// [`Obs::render_prometheus`] under the same metric names, grouped per
    /// layer, every value an unsigned integer. The caller appends its own
    /// engine-level fields by writing into a root [`render::JsonObject`]
    /// and calling [`Obs::render_json_groups`]; this convenience wraps a
    /// complete object around just the registry.
    pub fn render_json(&self, sink: &mut impl MetricSink) {
        let mut root = render::JsonObject::begin(sink);
        self.render_json_groups(&mut root);
        root.end();
    }

    /// Writes the five metric groups as nested objects of `root`
    /// (`"kv"`, `"net"`, `"maint"`, `"resize"`, `"rcu"` — same order and
    /// metric names as the Prometheus text form).
    pub fn render_json_groups<S: MetricSink>(&self, root: &mut render::JsonObject<'_, S>) {
        let mut get = Snapshot::default();
        let mut set = Snapshot::default();
        let mut delete = Snapshot::default();
        let mut other = Snapshot::default();
        for shard in self.kv.shards.iter() {
            get.merge(&shard.get_ns.snapshot());
            set.merge(&shard.set_ns.snapshot());
            delete.merge(&shard.delete_ns.snapshot());
            other.merge(&shard.other_ns.snapshot());
        }
        let mut kv = root.nested("kv");
        kv.field("kv_requests_total", self.kv.requests());
        kv.field("kv_decode_errors_total", self.kv.decode_errors());
        kv.summary("kv_get_latency_ns", &get);
        kv.summary("kv_set_latency_ns", &set);
        kv.summary("kv_delete_latency_ns", &delete);
        kv.summary("kv_other_latency_ns", &other);
        kv.field("kv_slow_logged_total", self.kv.slow.recorded());
        kv.end();

        let mut batch = Snapshot::default();
        for shard in self.net.batch_size.iter() {
            batch.merge(&shard.snapshot());
        }
        let mut net = root.nested("net");
        net.field("net_accepts_total", self.net.accepts_total.get());
        net.field("net_conns_shed_total", self.net.conns_shed_total.get());
        net.field(
            "net_accept_errors_total",
            self.net.accept_errors_total.get(),
        );
        net.field("net_idle_reaped_total", self.net.idle_reaped_total.get());
        net.field("net_conn_panics_total", self.net.conn_panics_total.get());
        net.field(
            "net_accept_backoffs_total",
            self.net.accept_backoffs_total.get(),
        );
        net.field(
            "net_drains_expired_total",
            self.net.drains_expired_total.get(),
        );
        net.field(
            "net_watermark_trips_total",
            self.net.watermark_trips_total.get(),
        );
        net.field(
            "net_backpressure_stalls_total",
            self.net.backpressure_stalls_total.get(),
        );
        net.field(
            "net_flush_syscalls_total",
            self.net.flush_syscalls_total.get(),
        );
        net.field(
            "net_flush_segments_total",
            self.net.flush_segments_total.get(),
        );
        net.field("net_connections", self.net.connections.get());
        net.field("net_bytes_buffered", self.net.bytes_buffered.get());
        net.summary("net_batch_size", &batch);
        net.end();

        let mut maint = root.nested("maint");
        maint.summary("maint_slice_ns", &self.maint.slice_ns.snapshot());
        maint.field("maint_queue_depth", self.maint.queue_depth.get());
        maint.field("maint_slices_total", self.maint.slices_total.get());
        maint.field(
            "maint_worker_panics_total",
            self.maint.worker_panics_total.get(),
        );
        maint.end();

        let mut resize = root.nested("resize");
        resize.summary(
            "resize_grace_wait_ns",
            &self.resize.grace_wait_ns.snapshot(),
        );
        resize.summary("resize_step_ns", &self.resize.step_ns.snapshot());
        resize.field("resize_begun_total", self.resize.begun_total.get());
        resize.field("resize_finished_total", self.resize.finished_total.get());
        resize.field("shard_imbalance_milli", self.resize.imbalance_milli.get());
        resize.end();

        let mut rcu = root.nested("rcu");
        rcu.summary("rcu_sync_ebr_ns", &self.rcu.sync_ebr_ns.snapshot());
        rcu.summary("rcu_sync_qsbr_ns", &self.rcu.sync_qsbr_ns.snapshot());
        rcu.field("rcu_reclaim_pending", self.rcu.reclaim_pending.get());
        rcu.field(
            "rcu_reclaim_executed_total",
            self.rcu.reclaim_executed_total.get(),
        );
        rcu.field("rcu_grace_stalls_total", self.rcu.grace_stalls_total.get());
        rcu.end();
    }

    /// Zeroes every counter, gauge, histogram, and the trace ring
    /// (`STATS RESET`). Concurrent recording is safe; racing samples land
    /// in whichever era their atomic write hits.
    pub fn reset(&self) {
        for shard in self.kv.shards.iter() {
            shard.get_ns.reset();
            shard.set_ns.reset();
            shard.delete_ns.reset();
            shard.other_ns.reset();
            shard.requests.reset();
            shard.decode_errors.reset();
        }
        self.net.accepts_total.reset();
        self.net.conns_shed_total.reset();
        self.net.accept_errors_total.reset();
        self.net.idle_reaped_total.reset();
        self.net.conn_panics_total.reset();
        self.net.accept_backoffs_total.reset();
        self.net.drains_expired_total.reset();
        self.net.watermark_trips_total.reset();
        self.net.backpressure_stalls_total.reset();
        self.net.flush_syscalls_total.reset();
        self.net.flush_segments_total.reset();
        for shard in self.net.batch_size.iter() {
            shard.reset();
        }
        self.maint.slice_ns.reset();
        self.maint.slices_total.reset();
        self.maint.worker_panics_total.reset();
        self.resize.grace_wait_ns.reset();
        self.resize.step_ns.reset();
        self.resize.begun_total.reset();
        self.resize.finished_total.reset();
        self.rcu.sync_ebr_ns.reset();
        self.rcu.sync_qsbr_ns.reset();
        self.rcu.reclaim_executed_total.reset();
        self.rcu.grace_stalls_total.reset();
        self.kv.slow.reset();
        // Level gauges (connections, queue depth, pending, imbalance) are
        // left alone: their owners re-assert the level, and a transient 0
        // would simply be wrong.
        self.trace.reset();
        self.trace.record(TraceKind::StatsReset, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_respects_the_enabled_flag() {
        // Tests share the process-global flag; restore it on exit.
        assert!(enabled(), "telemetry defaults to on");
        let t = timer();
        assert!(t.is_some());
        assert!(elapsed_ns(t).is_some());
        set_enabled(false);
        assert!(timer().is_none());
        assert_eq!(elapsed_ns(timer()), None);
        set_enabled(true);
    }

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn render_covers_every_group() {
        let obs = Obs::default();
        obs.kv.shards.for_worker(0).requests.add(5);
        obs.net.accepts_total.add(2);
        obs.maint.slices_total.inc();
        obs.resize.begun_total.inc();
        obs.rcu.sync_ebr_ns.record(1234);
        let mut out = Vec::new();
        obs.render_prometheus(&mut out);
        let text = String::from_utf8(out).unwrap();
        for needle in [
            "kv_requests_total 5",
            "kv_get_latency_ns_count 0",
            "net_accepts_total 2",
            "net_batch_size_count 0",
            "maint_slices_total 1",
            "resize_begun_total 1",
            "rcu_sync_ebr_ns_count 1",
            "rcu_reclaim_pending 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn worker_render_reads_exactly_one_shard() {
        let obs = Obs::default();
        obs.kv.shards.for_worker(3).requests.add(7);
        obs.kv.shards.for_worker(4).requests.add(100);
        obs.net.batch_size.for_worker(3).record(2);
        let mut out = Vec::new();
        obs.render_worker(3, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("kv_worker 3\n"), "{text}");
        assert!(
            text.contains("kv_worker_requests_total 7\n"),
            "worker 4's count must not leak in:\n{text}"
        );
        assert!(text.contains("net_worker_batch_size_count 1\n"), "{text}");
        // Ordinals wrap at the shard count, mirroring recording.
        let mut wrapped = Vec::new();
        obs.render_worker(3 + obs.kv.shards.len(), &mut wrapped);
        assert_eq!(wrapped, text.as_bytes());
    }

    #[test]
    fn reset_zeroes_and_leaves_a_trace_marker() {
        let obs = Obs::default();
        obs.kv.shards.for_worker(1).requests.add(9);
        obs.trace.record(TraceKind::ConnShed, 7);
        obs.reset();
        assert_eq!(obs.kv.requests(), 0);
        let events = obs.trace.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, TraceKind::StatsReset);
    }

    #[test]
    fn trace_renders_crlf_lines() {
        let obs = Obs::default();
        obs.trace.record(TraceKind::MaintSlice, 42);
        let mut out = Vec::new();
        obs.render_trace(&mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("TRACE 1 "));
        assert!(text.ends_with(" maint_slice 42\r\n"));
    }

    #[test]
    fn trace_render_attributes_stall_flavor_in_the_label() {
        let obs = Obs::default();
        obs.trace
            .record(TraceKind::GraceStall, pack_stall(STALL_FLAVOR_QSBR, 777));
        obs.trace
            .record(TraceKind::GraceStall, pack_stall(STALL_FLAVOR_EBR, 888));
        let mut out = Vec::new();
        obs.render_trace(&mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(" grace_stall_qsbr 777\r\n"), "{text}");
        assert!(text.contains(" grace_stall_ebr 888\r\n"), "{text}");
    }

    #[test]
    fn trace_render_recent_keeps_only_the_newest_n() {
        let obs = Obs::default();
        for i in 0..5 {
            obs.trace.record(TraceKind::MaintSlice, i);
        }
        let mut out = Vec::new();
        obs.render_trace_recent(Some(2), &mut out);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.matches("TRACE ").count(), 2);
        assert!(text.starts_with("TRACE 4 "), "{text}");
        assert!(text.ends_with(" maint_slice 4\r\n"), "{text}");
        // A limit beyond the retained count degrades to everything.
        let mut all = Vec::new();
        obs.render_trace_recent(Some(100), &mut all);
        assert_eq!(String::from_utf8(all).unwrap().matches("TRACE ").count(), 5);
    }

    #[test]
    fn json_render_is_one_object_with_every_group() {
        let obs = Obs::default();
        obs.kv.shards.for_worker(0).requests.add(5);
        obs.rcu.grace_stalls_total.add(2);
        let mut out = Vec::new();
        obs.render_json(&mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("{\"kv\":{\"kv_requests_total\":5,"),
            "{text}"
        );
        assert!(text.ends_with("\"rcu_grace_stalls_total\":2}}"), "{text}");
        for needle in [
            "\"net\":{",
            "\"maint\":{",
            "\"resize\":{",
            "\"rcu\":{",
            "\"kv_get_latency_ns\":{\"p50\":",
            "\"net_connections\":0",
            "\"maint_queue_depth\":0",
            "\"resize_begun_total\":0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(!text.contains('\n'), "single-line output");
    }

    #[test]
    fn reset_clears_the_slow_log_and_stall_counter() {
        let obs = Obs::default();
        obs.kv.slow.set_threshold_ns(0);
        obs.kv.slow.record(&SlowSpan::default());
        obs.rcu.grace_stalls_total.inc();
        obs.reset();
        assert_eq!(obs.kv.slow.recorded(), 0);
        assert_eq!(obs.rcu.grace_stalls_total.get(), 0);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global() as *const Obs;
        let b = global() as *const Obs;
        assert_eq!(a, b);
    }
}
