//! Property tests pinning the atomic histogram to `rp-workload`'s
//! single-threaded `LatencyHistogram` as a reference model — including
//! while concurrent recorders race the scrape.

use proptest::prelude::*;

use rp_obs::{Histogram, Snapshot};
use rp_workload::LatencyHistogram;

fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0_u64..64,
            64_u64..100_000,
            1_000_000_u64..u64::MAX / 2,
            Just(u64::MAX),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Sequential recording agrees with the reference model on count,
    /// every percentile, and (within bucket width) the max.
    #[test]
    fn matches_single_threaded_reference(samples in samples_strategy()) {
        let atomic = Histogram::new();
        let mut reference = LatencyHistogram::new();
        for &s in &samples {
            atomic.record(s);
            reference.record_ns(s);
        }
        let snap = atomic.snapshot();
        prop_assert_eq!(snap.count(), reference.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            // The reference tightens the top bucket with the exact max;
            // the concurrent form reports the bucket upper bound.
            let ours = snap.percentile(q);
            let theirs = reference.percentile_ns(q);
            prop_assert!(
                ours >= theirs,
                "q={} ours={} theirs={}", q, ours, theirs
            );
            // Same bucket → within the ≈6.25% bucket width of each other.
            prop_assert!(
                ours as f64 <= theirs as f64 * 1.0723 + 1.0,
                "q={} ours={} theirs={}", q, ours, theirs
            );
        }
        prop_assert!(snap.max() >= reference.max_ns());
    }

    /// Merging per-shard snapshots equals recording everything into one
    /// histogram (the scrape-time aggregation path).
    #[test]
    fn shard_merge_equals_single_histogram(
        a in samples_strategy(),
        b in samples_strategy(),
    ) {
        let shard_a = Histogram::new();
        let shard_b = Histogram::new();
        let combined = Histogram::new();
        for &s in &a {
            shard_a.record(s);
            combined.record(s);
        }
        for &s in &b {
            shard_b.record(s);
            combined.record(s);
        }
        let mut merged = Snapshot::default();
        merged.merge(&shard_a.snapshot());
        merged.merge(&shard_b.snapshot());
        let want = combined.snapshot();
        prop_assert_eq!(merged.count(), want.count());
        for q in [0.1, 0.5, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), want.percentile(q));
        }
        prop_assert_eq!(merged.max(), want.max());
        prop_assert_eq!(merged.sum_approx(), want.sum_approx());
    }

    /// Snapshots taken while recorders are mid-flight are always
    /// *consistent populations*: monotonically growing, never counting a
    /// sample twice, and the final snapshot equals the reference model.
    #[test]
    fn concurrent_record_while_scrape_is_consistent(samples in samples_strategy()) {
        let hist = std::sync::Arc::new(Histogram::new());
        let threads = 4;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let hist = std::sync::Arc::clone(&hist);
                let samples = samples.clone();
                std::thread::spawn(move || {
                    for (i, &s) in samples.iter().enumerate() {
                        if i % threads == t {
                            hist.record(s);
                        }
                    }
                })
            })
            .collect();

        // Scrape while they record: counts must only grow.
        let mut last = 0;
        loop {
            let snap = hist.snapshot();
            prop_assert!(snap.count() >= last, "count went backwards");
            last = snap.count();
            if last >= samples.len() as u64 {
                break;
            }
            std::hint::spin_loop();
        }
        for h in handles {
            h.join().unwrap();
        }

        let mut reference = LatencyHistogram::new();
        for &s in &samples {
            reference.record_ns(s);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), reference.count());
        for q in [0.5, 0.99, 1.0] {
            prop_assert!(snap.percentile(q) >= reference.percentile_ns(q));
        }
    }
}
