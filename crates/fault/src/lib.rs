//! Deterministic, seeded fault injection.
//!
//! A *failpoint* is a named hook compiled into production code:
//!
//! ```
//! fn writev_with_faults() -> std::io::Result<usize> {
//!     if let Some(fault) = rp_fault::point("net.writev") {
//!         match fault {
//!             rp_fault::IoFault::Error(e) => return Err(e),
//!             rp_fault::IoFault::Short(_n) => { /* clamp the write to n bytes */ }
//!         }
//!     }
//!     Ok(0) // ... the real writev
//! }
//! ```
//!
//! Disarmed (the default, and the only state production ever sees) the
//! entire call is **one relaxed atomic load and a predicted-not-taken
//! branch** — no lock, no allocation, no syscall — so the hot-path
//! 0-alloc and observability-overhead gates stay green with failpoints
//! compiled in. Armed ([`arm`] / [`arm_from_env`]), each call consults a
//! seeded plan and may return a scripted [`IoFault`], sleep an injected
//! delay, or panic.
//!
//! # Plans
//!
//! A plan is a `;`-separated list of rules, each
//! `point=action[:arg][*count][@prob]`:
//!
//! | action | effect at the failpoint |
//! |---|---|
//! | `eintr`, `eagain`, `econnreset`, `emfile`, `enfile`, `enomem` | return [`IoFault::Error`] with that errno |
//! | `err:<errno>` | return [`IoFault::Error`] with an arbitrary raw errno |
//! | `short` / `short:<n>` | return [`IoFault::Short`] clamping the I/O to `n` bytes (default 1) |
//! | `delay:<n>ms` | sleep `n` milliseconds inline, then proceed normally |
//! | `panic` | `panic!` at the failpoint |
//!
//! `*count` caps how many times the rule fires (then it goes inert);
//! `@prob` (a float in `0..=1`) gates each evaluation through a seeded
//! xorshift64* stream so a given `RP_FAULT_SEED` replays the exact same
//! fault schedule. Rules are evaluated in plan order; the first that
//! fires wins. Example:
//!
//! ```text
//! RP_FAULT_PLAN='net.read=eintr*3;net.writev=short:128@0.05;hash.resize.step=delay:2ms@0.5'
//! RP_FAULT_SEED=42
//! ```
//!
//! The crate is dependency-free and does no tracing of its own — call
//! sites own their telemetry (the injected-fault counters here exist so
//! tests can assert a plan actually fired).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed failpoint told the call site to do.
#[derive(Debug)]
pub enum IoFault {
    /// Fail the operation with this error (scripted errno).
    Error(std::io::Error),
    /// Perform the I/O, but clamped to at most this many bytes.
    Short(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Errno(i32),
    Short(usize),
    DelayMs(u64),
    Panic,
}

#[derive(Debug, Clone)]
struct Rule {
    action: Action,
    /// Remaining firings (`None` = unlimited).
    remaining: Option<u64>,
    /// Probability gate in millionths (`None` = always).
    prob_ppm: Option<u64>,
}

#[derive(Default)]
struct Registry {
    /// Rules per failpoint name, evaluated in plan order.
    rules: HashMap<String, Vec<Rule>>,
    /// xorshift64* state for the probability gates.
    rng: u64,
    /// Faults actually injected, per point.
    injected: HashMap<String, u64>,
}

/// The disarmed fast path: one relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;
const ENOMEM: i32 = 12;
const ENFILE: i32 = 23;
const EMFILE: i32 = 24;
const ECONNRESET: i32 = 104;

fn parse_action(spec: &str) -> Result<Action, String> {
    let (name, arg) = match spec.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (spec, None),
    };
    let action = match name {
        "eintr" => Action::Errno(EINTR),
        "eagain" => Action::Errno(EAGAIN),
        "enomem" => Action::Errno(ENOMEM),
        "enfile" => Action::Errno(ENFILE),
        "emfile" => Action::Errno(EMFILE),
        "econnreset" => Action::Errno(ECONNRESET),
        "err" => {
            let raw = arg
                .ok_or_else(|| "err needs an errno argument (err:<n>)".to_string())?
                .parse::<i32>()
                .map_err(|e| format!("bad errno: {e}"))?;
            return Ok(Action::Errno(raw));
        }
        "short" => {
            let n = match arg {
                Some(a) => a
                    .parse::<usize>()
                    .map_err(|e| format!("bad short length: {e}"))?,
                None => 1,
            };
            return Ok(Action::Short(n));
        }
        "delay" => {
            let a = arg.ok_or_else(|| "delay needs a duration (delay:<n>ms)".to_string())?;
            let ms = a
                .strip_suffix("ms")
                .ok_or_else(|| format!("delay duration must end in `ms`, got `{a}`"))?
                .parse::<u64>()
                .map_err(|e| format!("bad delay: {e}"))?;
            return Ok(Action::DelayMs(ms));
        }
        "panic" => Action::Panic,
        other => return Err(format!("unknown fault action `{other}`")),
    };
    if arg.is_some() {
        return Err(format!("action `{name}` takes no argument"));
    }
    Ok(action)
}

/// Parses one `point=action[:arg][*count][@prob]` rule.
fn parse_rule(entry: &str) -> Result<(String, Rule), String> {
    let (point, mut spec) = entry
        .split_once('=')
        .ok_or_else(|| format!("rule `{entry}` is missing `=`"))?;
    let point = point.trim();
    if point.is_empty() {
        return Err(format!("rule `{entry}` has an empty point name"));
    }
    let mut prob_ppm = None;
    if let Some((rest, prob)) = spec.split_once('@') {
        let p: f64 = prob.parse().map_err(|e| format!("bad probability: {e}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} is outside 0..=1"));
        }
        prob_ppm = Some((p * 1_000_000.0) as u64);
        spec = rest;
    }
    let mut remaining = None;
    if let Some((rest, count)) = spec.split_once('*') {
        let n: u64 = count.parse().map_err(|e| format!("bad count: {e}"))?;
        remaining = Some(n);
        spec = rest;
    }
    let action = parse_action(spec.trim())?;
    Ok((
        point.to_string(),
        Rule {
            action,
            remaining,
            prob_ppm,
        },
    ))
}

/// Arms the registry with `plan` (see the crate docs for the grammar),
/// seeding the probability gates from `seed`. Replaces any prior plan.
pub fn arm(plan: &str, seed: u64) -> Result<(), String> {
    let mut registry = Registry {
        // xorshift64* needs a nonzero state; fold seed 0 onto the golden
        // ratio so every seed is usable.
        rng: if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        },
        ..Registry::default()
    };
    for entry in plan.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (point, rule) = parse_rule(entry)?;
        registry.rules.entry(point).or_default().push(rule);
    }
    let mut slot = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    *slot = Some(registry);
    ARMED.store(true, Ordering::Release);
    Ok(())
}

/// Arms from `RP_FAULT_PLAN` / `RP_FAULT_SEED` when the plan variable is
/// set; returns whether a plan was armed. A malformed plan panics —
/// a chaos run silently running without its faults would be worse.
pub fn arm_from_env() -> bool {
    let Ok(plan) = std::env::var("RP_FAULT_PLAN") else {
        return false;
    };
    let seed = std::env::var("RP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1);
    arm(&plan, seed).unwrap_or_else(|e| panic!("bad RP_FAULT_PLAN: {e}"));
    true
}

/// Disarms every failpoint, restoring the one-relaxed-load fast path.
/// Injected-fault counters are kept until the next [`arm`].
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// Whether a plan is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// How many faults this point has injected since the last [`arm`].
pub fn injected(point: &str) -> u64 {
    let slot = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    slot.as_ref()
        .and_then(|r| r.injected.get(point).copied())
        .unwrap_or(0)
}

/// Total faults injected across all points since the last [`arm`].
pub fn injected_total() -> u64 {
    let slot = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    slot.as_ref().map_or(0, |r| r.injected.values().sum())
}

/// The failpoint hook. Disarmed this is one relaxed load; armed it
/// consults the plan and may return an [`IoFault`], sleep an injected
/// delay inline (returning `None` so the operation proceeds), or panic
/// with a message naming the point.
#[inline]
pub fn point(name: &str) -> Option<IoFault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    point_armed(name)
}

#[cold]
fn point_armed(name: &str) -> Option<IoFault> {
    let fired = {
        let mut slot = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        let registry = slot.as_mut()?;
        let mut rng = registry.rng;
        let mut fired = None;
        if let Some(rules) = registry.rules.get_mut(name) {
            for rule in rules.iter_mut() {
                if rule.remaining == Some(0) {
                    continue;
                }
                if let Some(ppm) = rule.prob_ppm {
                    if xorshift64star(&mut rng) % 1_000_000 >= ppm {
                        continue;
                    }
                }
                if let Some(n) = rule.remaining.as_mut() {
                    *n -= 1;
                }
                fired = Some(rule.action);
                break;
            }
        }
        registry.rng = rng;
        if fired.is_some() {
            *registry.injected.entry(name.to_string()).or_insert(0) += 1;
        }
        fired
    };
    // Lock dropped: delays and panics must not hold the registry.
    match fired? {
        Action::Errno(raw) => Some(IoFault::Error(std::io::Error::from_raw_os_error(raw))),
        Action::Short(n) => Some(IoFault::Short(n)),
        Action::DelayMs(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Panic => panic!("injected panic at failpoint `{name}`"),
    }
}

/// Arms a plan for a lexical scope and disarms on drop — for tests.
/// Fault-armed tests must live in their own integration-test binary
/// (their own process) and serialize on a local mutex: the registry is
/// process-global.
pub struct ArmGuard(());

impl ArmGuard {
    /// Arms `plan` with `seed`; panics on a malformed plan.
    pub fn new(plan: &str, seed: u64) -> ArmGuard {
        arm(plan, seed).unwrap_or_else(|e| panic!("bad fault plan: {e}"));
        ArmGuard(())
    }
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global; unit tests that arm must not
    /// interleave.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_points_return_none() {
        let _s = serial();
        disarm();
        assert!(point("anything.at.all").is_none());
        assert!(!armed());
    }

    #[test]
    fn errno_actions_surface_as_errors() {
        let _s = serial();
        let _g = ArmGuard::new("p.err=econnreset", 1);
        match point("p.err") {
            Some(IoFault::Error(e)) => assert_eq!(e.raw_os_error(), Some(ECONNRESET)),
            other => panic!("expected ECONNRESET, got {other:?}"),
        }
        assert!(point("p.other").is_none(), "unlisted points stay silent");
        assert_eq!(injected("p.err"), 1);
    }

    #[test]
    fn count_budget_exhausts() {
        let _s = serial();
        let _g = ArmGuard::new("p.count=eintr*2", 7);
        assert!(point("p.count").is_some());
        assert!(point("p.count").is_some());
        assert!(point("p.count").is_none(), "budget of 2 is spent");
        assert_eq!(injected("p.count"), 2);
    }

    #[test]
    fn short_parses_explicit_and_default_lengths() {
        let _s = serial();
        let _g = ArmGuard::new("p.a=short:128;p.b=short", 1);
        match point("p.a") {
            Some(IoFault::Short(128)) => {}
            other => panic!("expected Short(128), got {other:?}"),
        }
        match point("p.b") {
            Some(IoFault::Short(1)) => {}
            other => panic!("expected Short(1), got {other:?}"),
        }
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let _s = serial();
        let observe = |seed: u64| -> Vec<bool> {
            let _g = ArmGuard::new("p.prob=eintr@0.5", seed);
            (0..64).map(|_| point("p.prob").is_some()).collect()
        };
        let a = observe(42);
        let b = observe(42);
        let c = observe(43);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn rules_fire_in_plan_order() {
        let _s = serial();
        let _g = ArmGuard::new("p.ord=eintr*1;p.ord=eagain", 1);
        match point("p.ord") {
            Some(IoFault::Error(e)) => assert_eq!(e.raw_os_error(), Some(EINTR)),
            other => panic!("expected EINTR first, got {other:?}"),
        }
        match point("p.ord") {
            Some(IoFault::Error(e)) => assert_eq!(e.raw_os_error(), Some(EAGAIN)),
            other => panic!("expected EAGAIN after EINTR budget, got {other:?}"),
        }
    }

    #[test]
    fn delay_sleeps_and_proceeds() {
        let _s = serial();
        let _g = ArmGuard::new("p.delay=delay:20ms*1", 1);
        let start = std::time::Instant::now();
        assert!(point("p.delay").is_none(), "delay lets the op proceed");
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert_eq!(injected("p.delay"), 1, "the delay still counts as injected");
    }

    #[test]
    #[should_panic(expected = "injected panic at failpoint `p.boom`")]
    fn panic_action_panics_with_the_point_name() {
        let _s = serial();
        let _g = ArmGuard::new("p.boom=panic", 1);
        let _ = point("p.boom");
    }

    #[test]
    fn malformed_plans_are_rejected() {
        let _s = serial();
        disarm();
        for bad in [
            "no-equals",
            "p=unknownaction",
            "p=short:abc",
            "p=delay:5",
            "p=eintr@1.5",
            "p=eintr*x",
            "=eintr",
            "p=eintr:9",
        ] {
            assert!(arm(bad, 1).is_err(), "plan `{bad}` should be rejected");
        }
        assert!(!armed(), "a rejected plan must not arm");
    }

    #[test]
    fn empty_segments_are_tolerated() {
        let _s = serial();
        let _g = ArmGuard::new(" ; p.x=eintr ; ", 1);
        assert!(point("p.x").is_some());
    }
}
