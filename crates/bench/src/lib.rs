//! Benchmark harnesses that regenerate every figure in the paper's
//! evaluation.
//!
//! Each figure is produced by a library function returning a
//! [`rp_workload::Report`]; the `fig_*` binaries are thin wrappers, and the
//! `run_all` binary regenerates everything and writes CSV + markdown under
//! `results/`.
//!
//! | Binary | Paper figure |
//! |---|---|
//! | `fig_baseline` | "Results: fixed-size table baseline" — lookups/s vs reader threads, RP vs DDDS vs rwlock, no resizing |
//! | `fig_resize` | "Results – continuous resizing" — RP vs DDDS while a resizer thread toggles the bucket count continuously |
//! | `fig_rp_vs_fixed` | "Results – our resize versus fixed" — RP at 8k fixed, 16k fixed, and continuously resizing |
//! | `fig_ddds_vs_fixed` | "Results – DDDS resize versus fixed" — same three series for DDDS |
//! | `fig_memcached` | "memcached results" — requests/s vs client count for GET and SET against the default (global-lock) and RP engines |
//! | `fig_shard` | (repo addition) sharded write throughput — Zipf-keyed inserts/s vs writer threads at 1/4/16/64 shards |
//! | `fig_maint` | (repo addition) resize maintenance — p99 insert latency under a Zipfian write storm, inline vs background-maintained resizes |
//! | `fig_server` | (repo addition) server architecture — requests/s and p99 vs connection count, thread-per-connection vs the `rp-net` event loop |
//! | `fig_qsbr` | (repo addition) read-side flavors — lookups/s and p99 vs reader threads, EBR guard vs barrier-free QSBR, with and without continuous resizing |
//! | `fig_hotpath` | (repo addition) zero-allocation serving — allocations/op for steady-state event-loop GETs (counting allocator; gated at 0) and pipelined GET throughput vs pipeline depth |
//! | `fig_obs` | (repo addition) telemetry overhead — pipelined GET throughput with `rp-obs` timers on vs off (gated ≤2%), plus a QSBR-vs-EBR server comparison measured from the server's own `STATS` per-opcode histograms |
//! | `fig_tournament` | (repo addition) engine tournament — every map implementation (lock, rp, rp-shard, splitorder) × EBR/QSBR × four workloads (read-heavy, write-heavy, resize-storm, hot-key), plus the grow-path synchronize-call probe (split-ordered must be 0) |
//! | `fig_c100k` | (repo addition) connection ladder — live idle connections (held by child processes) vs pipelined 4 KiB GET throughput under the global admission budget, gating buffered bytes ≤ `--max-bytes`, `SERVER_ERROR busy` sheds past `--max-conns`, and fewer `writev` syscalls than flushed segments |
//! | `fig_chaos` | (repo addition) fault burst — GET throughput before, during and after a scripted `rp-fault` burst (connection resets, short writes, handler panics, grace delays), gating recovery to ≥90% of the pre-burst baseline within 10 s of disarm |
//!
//! Parameters are read from environment variables so CI and the
//! EXPERIMENTS.md runs can trade accuracy for time:
//!
//! * `RP_BENCH_ENTRIES` — number of entries pre-loaded into the table
//!   (default 8192).
//! * `RP_BENCH_SMALL_BUCKETS` / `RP_BENCH_LARGE_BUCKETS` — the two table
//!   sizes the resize figures toggle between (defaults 8192 / 16384, the
//!   paper's values).
//! * `RP_BENCH_DURATION_MS` — measurement window per data point (default
//!   500).
//! * `RP_BENCH_MAX_THREADS` — cap on the reader-thread ladder (default 16).
//! * `RP_BENCH_CLIENTS` — maximum client count for the memcached figure
//!   (default 12).
//! * `RP_BENCH_WRITE_THREADS` — top of the writer ladder for `fig_shard`,
//!   and (clamped to 4) the writer count for `fig_maint`.
//! * `RP_BENCH_SERVER_CONNECTIONS` — top of the connection ladder for
//!   `fig_server` (default 256).
//! * `RP_BENCH_SERVER_WORKERS` — event-loop worker threads for
//!   `fig_server` (default 2).
//! * `RP_BENCH_HOTPATH_CONNECTIONS` — connection count for `fig_hotpath`'s
//!   pipeline-depth ladder (default 16).
//! * `RP_BENCH_HOTPATH_AUDIT_OPS` — operations measured (after as many of
//!   warmup) by `fig_hotpath`'s allocation audit (default 4000).
//! * `RP_BENCH_C100K_CONNS` — top of `fig_c100k`'s live-connection ladder
//!   (default 10000).
//! * `RP_BENCH_OUT_DIR` — output directory (default `results/`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rp_baselines::{ConcurrentMap, DddsTable, MutexTable, RwLockTable};
use rp_hash::{FnvBuildHasher, QsbrReadHandle, RpHashMap};
use rp_kvcache::client::CacheClient;
use rp_kvcache::server::{start_server, ServerConfig};
use rp_kvcache::{CacheEngine, Item, LockEngine, RpEngine, ShardedRpEngine};
use rp_shard::{ShardPolicy, ShardedRpMap};
use rp_splitorder::SplitOrderMap;
use rp_workload::driver::BackgroundHandle;
use rp_workload::sysinfo::HostInfo;
use rp_workload::{
    drive_connections, measure, measure_thread_local, KeyDist, KeyGen, Report, Series,
};

/// Zipf exponent used by the sharded-write figure (a cache-like skew).
pub const SHARD_ZIPF_EXPONENT: f64 = 0.99;

/// Benchmark parameters (see the crate docs for the environment variables).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Entries pre-loaded into every table.
    pub entries: u64,
    /// The smaller bucket count (baseline tables and the resize lower bound).
    pub small_buckets: usize,
    /// The larger bucket count (the resize upper bound).
    pub large_buckets: usize,
    /// Measurement window per data point.
    pub duration: Duration,
    /// Reader-thread counts to sweep.
    pub threads: Vec<usize>,
    /// Writer-thread counts for the sharded-write figure (may exceed the
    /// CPU count; see `RP_BENCH_WRITE_THREADS`).
    pub write_threads: Vec<usize>,
    /// Client counts for the memcached figure.
    pub clients: Vec<usize>,
    /// Connection counts for the server figure (`fig_server`).
    pub server_connections: Vec<usize>,
    /// Event-loop worker threads for the server figure.
    pub server_workers: usize,
    /// Connection count for the hot-path figure (`fig_hotpath`).
    pub hotpath_connections: usize,
    /// GETs measured (after as many of warmup) by the `fig_hotpath`
    /// allocation audit.
    pub hotpath_audit_ops: u64,
    /// Top of the live-connection ladder for `fig_c100k`.
    pub c100k_connections: usize,
    /// Where CSV/markdown results are written.
    pub out_dir: PathBuf,
    /// Host description (recorded in the summary).
    pub host: HostInfo,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl BenchConfig {
    /// Builds a configuration from environment variables and host
    /// introspection.
    pub fn from_env() -> Self {
        let host = HostInfo::collect();
        let max_threads = env_num("RP_BENCH_MAX_THREADS", 16_usize);
        let max_clients = env_num("RP_BENCH_CLIENTS", 12_usize);
        let clients_cap = host.logical_cpus.min(max_clients).max(1);
        BenchConfig {
            entries: env_num("RP_BENCH_ENTRIES", 8192_u64),
            small_buckets: env_num("RP_BENCH_SMALL_BUCKETS", 8192_usize),
            large_buckets: env_num("RP_BENCH_LARGE_BUCKETS", 16384_usize),
            duration: Duration::from_millis(env_num("RP_BENCH_DURATION_MS", 500_u64)),
            threads: host.thread_ladder(max_threads),
            write_threads: host
                .oversubscribed_ladder(env_num("RP_BENCH_WRITE_THREADS", host.logical_cpus.max(8))),
            clients: (1..=clients_cap).collect(),
            server_connections: {
                let max_conns = env_num("RP_BENCH_SERVER_CONNECTIONS", 256_usize).max(1);
                let mut ladder = vec![1_usize];
                while ladder.last().copied().unwrap_or(1) * 4 <= max_conns {
                    ladder.push(ladder.last().unwrap() * 4);
                }
                if ladder.last() != Some(&max_conns) {
                    ladder.push(max_conns);
                }
                ladder
            },
            server_workers: env_num("RP_BENCH_SERVER_WORKERS", 2_usize).max(1),
            hotpath_connections: env_num("RP_BENCH_HOTPATH_CONNECTIONS", 16_usize).max(1),
            hotpath_audit_ops: env_num("RP_BENCH_HOTPATH_AUDIT_OPS", 4000_u64).max(100),
            c100k_connections: env_num("RP_BENCH_C100K_CONNS", 10_000_usize).max(8),
            out_dir: PathBuf::from(
                std::env::var("RP_BENCH_OUT_DIR").unwrap_or_else(|_| "results".to_string()),
            ),
            host,
        }
    }

    /// A tiny configuration for tests (milliseconds per point, few threads).
    pub fn smoke_test() -> Self {
        BenchConfig {
            entries: 512,
            small_buckets: 128,
            large_buckets: 256,
            duration: Duration::from_millis(30),
            threads: vec![1, 2],
            write_threads: vec![1, 2],
            clients: vec![1, 2],
            server_connections: vec![1, 4],
            server_workers: 2,
            hotpath_connections: 4,
            hotpath_audit_ops: 500,
            c100k_connections: 64,
            out_dir: std::env::temp_dir().join("rp-bench-smoke"),
            host: HostInfo::collect(),
        }
    }
}

/// Pre-loads `entries` keys (`0..entries`, value = key) into a table.
pub fn fill(map: &dyn ConcurrentMap<u64, u64>, entries: u64) {
    for key in 0..entries {
        map.insert(key, key);
    }
}

/// Measures lookup throughput for one table at each reader-thread count,
/// optionally with a background thread resizing the table continuously
/// between `resize_between.0` and `resize_between.1` buckets.
///
/// Returns a [`Series`] of (reader threads, millions of lookups per second)
/// — the exact axes of the paper's microbenchmark figures.
pub fn lookup_scalability(
    name: &str,
    map: Arc<dyn ConcurrentMap<u64, u64>>,
    cfg: &BenchConfig,
    resize_between: Option<(usize, usize)>,
) -> Series {
    let mut series = Series::new(name);
    for &threads in &cfg.threads {
        let map_ref: &dyn ConcurrentMap<u64, u64> = &*map;
        let entries = cfg.entries;
        let background = match resize_between {
            Some((small, large)) => vec![BackgroundHandle::new("resizer", move |iteration| {
                // Toggle between the two sizes as fast as the algorithm
                // allows — the paper's "continuous resizing" worst case.
                let target = if iteration % 2 == 0 { large } else { small };
                map_ref.resize_to(target);
            })],
            None => Vec::new(),
        };
        let result = measure(
            threads,
            cfg.duration,
            |idx| {
                let mut keys = KeyGen::new(KeyDist::Uniform, entries, 0xC0FFEE + idx as u64);
                let map = Arc::clone(&map);
                move || {
                    let key = keys.next_key();
                    black_box(map.lookup(black_box(&key)));
                }
            },
            background,
        );
        eprintln!(
            "  {name}: {threads} reader(s) -> {:.2} Mlookups/s (resizes: {:?})",
            result.mops_per_sec(),
            result.background_iterations
        );
        series.push(threads as f64, result.mops_per_sec());
    }
    series
}

/// Figure "Results: fixed-size table baseline" — RP vs DDDS vs rwlock,
/// lookups only, no resizing, at the smaller table size.
pub fn fig_baseline(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "Fixed-size table baseline (no resizing)",
        "reader threads",
        "lookups/second (millions)",
    );

    let rp: Arc<RpHashMap<u64, u64, FnvBuildHasher>> = Arc::new(
        RpHashMap::with_buckets_and_hasher(cfg.small_buckets, FnvBuildHasher),
    );
    fill(&*rp, cfg.entries);
    report.add_series(lookup_scalability("RP", rp, cfg, None));

    let ddds: Arc<DddsTable<u64, u64>> = Arc::new(DddsTable::with_buckets(cfg.small_buckets));
    fill(&*ddds, cfg.entries);
    report.add_series(lookup_scalability("DDDS", ddds, cfg, None));

    let rwlock: Arc<RwLockTable<u64, u64>> = Arc::new(RwLockTable::with_buckets(cfg.small_buckets));
    fill(&*rwlock, cfg.entries);
    report.add_series(lookup_scalability("rwlock", rwlock, cfg, None));

    report
}

/// Figure "Results – continuous resizing" — RP vs DDDS while a background
/// thread resizes the table between the small and large bucket counts.
pub fn fig_resize(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "Lookups during continuous resizing",
        "reader threads",
        "lookups/second (millions)",
    );
    let toggle = Some((cfg.small_buckets, cfg.large_buckets));

    let rp: Arc<RpHashMap<u64, u64, FnvBuildHasher>> = Arc::new(
        RpHashMap::with_buckets_and_hasher(cfg.small_buckets, FnvBuildHasher),
    );
    fill(&*rp, cfg.entries);
    report.add_series(lookup_scalability("RP", rp, cfg, toggle));

    let ddds: Arc<DddsTable<u64, u64>> = Arc::new(DddsTable::with_buckets(cfg.small_buckets));
    fill(&*ddds, cfg.entries);
    report.add_series(lookup_scalability("DDDS", ddds, cfg, toggle));

    report
}

/// Figure "Results – our resize versus fixed" — RP at the small size, the
/// large size, and continuously resizing between the two.
pub fn fig_rp_vs_fixed(cfg: &BenchConfig) -> Report {
    resize_vs_fixed_report(
        cfg,
        "RP: resize overhead versus fixed-size tables",
        |buckets| {
            let map: Arc<RpHashMap<u64, u64, FnvBuildHasher>> =
                Arc::new(RpHashMap::with_buckets_and_hasher(buckets, FnvBuildHasher));
            map
        },
    )
}

/// Figure "Results – DDDS resize versus fixed" — the same three series for
/// DDDS.
pub fn fig_ddds_vs_fixed(cfg: &BenchConfig) -> Report {
    resize_vs_fixed_report(
        cfg,
        "DDDS: resize overhead versus fixed-size tables",
        |buckets| {
            let map: Arc<DddsTable<u64, u64>> = Arc::new(DddsTable::with_buckets(buckets));
            map
        },
    )
}

fn resize_vs_fixed_report<M, F>(cfg: &BenchConfig, title: &str, make: F) -> Report
where
    M: ConcurrentMap<u64, u64> + 'static,
    F: Fn(usize) -> Arc<M>,
{
    let mut report = Report::new(title, "reader threads", "lookups/second (millions)");

    let small = make(cfg.small_buckets);
    fill(&*small, cfg.entries);
    report.add_series(lookup_scalability(
        &format!("fixed {}k buckets", cfg.small_buckets / 1024),
        small,
        cfg,
        None,
    ));

    let large = make(cfg.large_buckets);
    fill(&*large, cfg.entries);
    report.add_series(lookup_scalability(
        &format!("fixed {}k buckets", cfg.large_buckets / 1024),
        large,
        cfg,
        None,
    ));

    let resizing = make(cfg.small_buckets);
    fill(&*resizing, cfg.entries);
    report.add_series(lookup_scalability(
        "continuous resize",
        resizing,
        cfg,
        Some((cfg.small_buckets, cfg.large_buckets)),
    ));

    report
}

/// Measures *write* throughput for one table at each thread count: every
/// thread performs Zipf-distributed insert-or-replace operations (the
/// workload where a single writer mutex is the wall and shard-local locks
/// win).
pub fn write_scalability(
    name: &str,
    map: Arc<dyn ConcurrentMap<u64, u64>>,
    cfg: &BenchConfig,
) -> Series {
    let mut series = Series::new(name);
    for &threads in &cfg.write_threads {
        let entries = cfg.entries;
        let result = measure(
            threads,
            cfg.duration,
            |idx| {
                let mut keys = KeyGen::new(
                    KeyDist::Zipf(SHARD_ZIPF_EXPONENT),
                    entries,
                    0x5EED + idx as u64,
                );
                let map = Arc::clone(&map);
                move || {
                    let key = keys.next_key();
                    black_box(map.insert(black_box(key), key));
                }
            },
            Vec::new(),
        );
        eprintln!(
            "  {name}: {threads} writer(s) -> {:.2} Minserts/s",
            result.mops_per_sec()
        );
        series.push(threads as f64, result.mops_per_sec());
    }
    series
}

/// Builds a [`ShardedRpMap`] whose *total* initial bucket count matches the
/// single-table configurations, split evenly across `shards`.
pub fn sharded_map(shards: usize, total_buckets: usize) -> ShardedRpMap<u64, u64> {
    ShardedRpMap::with_policy(ShardPolicy {
        shards,
        initial_buckets_per_shard: (total_buckets / shards.max(1)).max(1),
        ..ShardPolicy::default()
    })
}

/// Figure "sharded writes" — insert throughput versus writer threads for
/// the single-table relativistic map and `rp-shard` at 1/4/16/64 shards,
/// under the Zipfian workload driver. Every configuration starts with the
/// same total bucket count, so the only variable is write-side contention.
pub fn fig_shard(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "Sharded write throughput (Zipfian keys)",
        "writer threads",
        "inserts/second (millions)",
    );

    let single: Arc<RpHashMap<u64, u64, FnvBuildHasher>> = Arc::new(
        RpHashMap::with_buckets_and_hasher(cfg.small_buckets, FnvBuildHasher),
    );
    fill(&*single, cfg.entries);
    report.add_series(write_scalability("RP single-table", single, cfg));

    for shards in [1_usize, 4, 16, 64] {
        let map = Arc::new(sharded_map(shards, cfg.small_buckets));
        fill(&*map, cfg.entries);
        report.add_series(write_scalability(
            &format!("rp-shard ({shards} shards)"),
            map,
            cfg,
        ));
    }

    report
}

/// Per-shard policy used by the maintenance-latency figure: small initial
/// tables with automatic expansion, so a write storm forces many unzip
/// resizes during the measurement window.
fn maint_storm_policy(shards: usize) -> ShardPolicy {
    ShardPolicy {
        shards,
        initial_buckets_per_shard: 16,
        per_shard: rp_hash::ResizePolicy {
            auto_expand: true,
            max_load_factor: 2.0,
            min_buckets: 16,
            ..rp_hash::ResizePolicy::default()
        },
    }
}

/// Runs a Zipfian write storm against `map` and returns the merged
/// per-insert latency histogram plus the total number of grace periods the
/// *writer threads themselves* waited for (0 on the maintained path — the
/// claim `fig_maint` exists to demonstrate).
///
/// Every writer alternates between a fresh key (monotonic growth that keeps
/// crossing the expand trigger) and a Zipf-distributed replace; one reader
/// thread iterates continuously so grace periods have real cost.
pub fn maint_write_storm(
    map: &Arc<ShardedRpMap<u64, u64>>,
    writers: usize,
    duration: Duration,
) -> (rp_workload::LatencyHistogram, u64) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    let stop = Arc::new(AtomicBool::new(false));
    let mut merged = rp_workload::LatencyHistogram::new();
    let mut writer_grace_waits = 0_u64;
    std::thread::scope(|s| {
        let reader = {
            let map = Arc::clone(map);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let guard = map.pin();
                    let mut seen = 0_usize;
                    for _ in map.iter(&guard) {
                        seen += 1;
                    }
                    black_box(seen);
                }
            })
        };
        let handles: Vec<_> = (0..writers.max(1))
            .map(|w| {
                let map = Arc::clone(map);
                s.spawn(move || {
                    let waits_before = rp_rcu::thread_synchronize_count();
                    let mut hist = rp_workload::LatencyHistogram::new();
                    let mut zipf = KeyGen::new(
                        KeyDist::Zipf(SHARD_ZIPF_EXPONENT),
                        1 << 20,
                        0xC0FFEE + w as u64,
                    );
                    let mut fresh = w as u64;
                    let deadline = Instant::now() + duration;
                    let mut i = 0_u64;
                    loop {
                        let key = if i.is_multiple_of(2) {
                            fresh += writers as u64;
                            (1 << 40) | fresh
                        } else {
                            zipf.next_key()
                        };
                        let started = Instant::now();
                        map.insert(key, i);
                        hist.record(started.elapsed());
                        i += 1;
                        if started >= deadline {
                            break;
                        }
                    }
                    (hist, rp_rcu::thread_synchronize_count() - waits_before)
                })
            })
            .collect();
        for handle in handles {
            let (hist, waits) = handle.join().unwrap();
            merged.merge(&hist);
            writer_grace_waits += waits;
        }
        stop.store(true, Ordering::SeqCst);
        reader.join().unwrap();
    });
    (merged, writer_grace_waits)
}

/// Figure "maintained resize latency" — p99 insert latency under a Zipfian
/// write storm, with resizes driven **inline by the triggering writer**
/// versus **in the background by the `rp-maint` thread**, at 4 and 16
/// shards.
///
/// This is the latency counterpart of `fig_shard`'s throughput story: the
/// paper makes resizes invisible to *readers*; the maintenance subsystem
/// additionally makes their grace-period waits invisible to *writers*. The
/// run also reports how many grace periods the writers themselves waited
/// for — by construction 0 on the maintained path.
pub fn fig_maint(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "Resize maintenance: p99 insert latency (Zipfian write storm)",
        "shards",
        "p99 insert latency (µs)",
    );
    let writers = cfg
        .write_threads
        .iter()
        .copied()
        .max()
        .unwrap_or(2)
        .clamp(1, 4);
    let mut inline_series = Series::new("inline resize");
    let mut maintained_series = Series::new("maintained resize");
    for shards in [4_usize, 16] {
        for maintained in [false, true] {
            let map: Arc<ShardedRpMap<u64, u64>> = Arc::new(if maintained {
                ShardedRpMap::with_maintenance(
                    maint_storm_policy(shards),
                    rp_maint::MaintConfig::default(),
                )
            } else {
                ShardedRpMap::with_policy(maint_storm_policy(shards))
            });
            let (hist, writer_waits) = maint_write_storm(&map, writers, cfg.duration);
            let p99 = hist.percentile_us(0.99);
            let label = if maintained { "maintained" } else { "inline" };
            eprintln!(
                "  {shards} shards / {label}: p99 {:.1} µs, p50 {:.1} µs, max {:.1} µs, \
                 {} inserts, writer grace waits: {writer_waits}, resizes: {}",
                p99,
                hist.percentile_us(0.50),
                hist.max_ns() as f64 / 1e3,
                hist.count(),
                map.stats().total().resizes(),
            );
            if maintained {
                maintained_series.push(shards as f64, p99);
            } else {
                inline_series.push(shards as f64, p99);
            }
        }
    }
    report.add_series(inline_series);
    report.add_series(maintained_series);
    report
}

/// How many lookups a QSBR reader performs between quiescent-state
/// announcements in `fig_qsbr` (mirrors the event-loop server's
/// once-per-batch rhythm).
pub const QSBR_QUIESCENT_EVERY: u64 = 256;

/// Latency sampling stride for `fig_qsbr` (every Nth lookup is timed, so
/// the `Instant::now` overhead stays off the throughput path).
const QSBR_SAMPLE_EVERY: u64 = 64;

/// Measures lookup throughput and sampled p99 latency for one read-side
/// flavor, at each reader-thread count, optionally under a continuously
/// resizing table.
///
/// * `EBR` readers pin a guard per lookup (two thread-private stores + two
///   full fences), exactly as the cache engines' GET paths do.
/// * `QSBR` readers register a [`QsbrReadHandle`] on their worker thread
///   (via [`measure_thread_local`] — the handle is `!Send`), perform
///   entirely barrier-free lookups, and announce one quiescent state every
///   [`QSBR_QUIESCENT_EVERY`] lookups.
///
/// Returns `(throughput series, p99 series)` in (Mlookups/s, µs).
pub fn read_flavor_scalability(
    name: &str,
    map: Arc<RpHashMap<u64, u64, FnvBuildHasher>>,
    cfg: &BenchConfig,
    qsbr: bool,
    resize_between: Option<(usize, usize)>,
) -> (Series, Series) {
    let mut throughput = Series::new(name);
    let mut p99 = Series::new(format!("{name} p99 µs"));
    for &threads in &cfg.threads {
        let entries = cfg.entries;
        let map_ref = &*map;
        let background = match resize_between {
            Some((small, large)) => vec![BackgroundHandle::new("resizer", move |iteration| {
                let target = if iteration % 2 == 0 { large } else { small };
                map_ref.resize_to(target);
            })],
            None => Vec::new(),
        };
        let (result, hist) = measure_thread_local(
            threads,
            cfg.duration,
            QSBR_SAMPLE_EVERY,
            |idx| {
                let mut keys = KeyGen::new(KeyDist::Uniform, entries, 0xC0FFEE + idx as u64);
                let map = Arc::clone(&map);
                // One registration per reader thread, pinned to it; `None`
                // for the EBR flavor.
                let mut handle = qsbr.then(QsbrReadHandle::register);
                let mut since_quiescent = 0_u64;
                move || {
                    let key = keys.next_key();
                    match handle.as_mut() {
                        Some(handle) => {
                            black_box(map.get_qsbr(black_box(&key), handle));
                            since_quiescent += 1;
                            if since_quiescent >= QSBR_QUIESCENT_EVERY {
                                handle.quiescent_state();
                                since_quiescent = 0;
                            }
                        }
                        None => {
                            let guard = rp_rcu::pin();
                            black_box(map.get(black_box(&key), &guard));
                        }
                    }
                }
            },
            background,
        );
        let p99_us = hist.percentile_us(0.99);
        eprintln!(
            "  {name}: {threads} reader(s) -> {:.2} Mlookups/s, sampled p99 {:.2} µs (resizes: {:?})",
            result.mops_per_sec(),
            p99_us,
            result.background_iterations
        );
        throughput.push(threads as f64, result.mops_per_sec());
        p99.push(threads as f64, p99_us);
    }
    (throughput, p99)
}

/// Figure "read-side flavors" — lookup throughput and sampled p99 for EBR
/// (per-lookup guard) versus QSBR (barrier-free lookups, one quiescent
/// announcement per [`QSBR_QUIESCENT_EVERY`] lookups), with and without a
/// background thread continuously resizing the table.
///
/// This quantifies the paper's central read-side claim at its cheapest
/// realization: QSBR lookups pay *nothing* — the exact cost model kernel
/// RCU gives the original authors — and keep paying nothing while the
/// table resizes under them. The same flavor split is selectable end to
/// end in the cache server (`kvcached --read-side qsbr|ebr`).
pub fn fig_qsbr(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "Read-side flavors: EBR guard vs QSBR (barrier-free) lookups",
        "reader threads",
        "lookups/second (millions) and sampled p99 (µs)",
    );
    let toggle = Some((cfg.small_buckets, cfg.large_buckets));
    let mut flavor_summary: Vec<(String, f64)> = Vec::new();
    for (suffix, resize) in [("", None), (" +resize", toggle)] {
        for (flavor, qsbr) in [("EBR", false), ("QSBR", true)] {
            let map: Arc<RpHashMap<u64, u64, FnvBuildHasher>> = Arc::new(
                RpHashMap::with_buckets_and_hasher(cfg.small_buckets, FnvBuildHasher),
            );
            fill(&*map, cfg.entries);
            let name = format!("{flavor}{suffix}");
            let (throughput, p99) = read_flavor_scalability(&name, map, cfg, qsbr, resize);
            let total: f64 = throughput.points.iter().map(|(_, m)| m).sum();
            flavor_summary.push((name, total));
            report.add_series(throughput);
            report.add_series(p99);
        }
    }
    // The acceptance signal for the uncontended ladder, spelled out in the
    // log: QSBR total across the ladder vs EBR total.
    if let [(_, ebr), (_, qsbr), ..] = &flavor_summary[..] {
        eprintln!(
            "  uncontended ladder totals: QSBR {qsbr:.2} vs EBR {ebr:.2} Mlookups/s ({:.2}x)",
            qsbr / ebr.max(1e-9)
        );
    }
    report
}

/// Verifies the batched read path end to end: for a Zipf-keyed population,
/// `multi_get` must return exactly what per-key `get` returns. Returns the
/// number of keys checked.
pub fn verify_shard_multi_get(cfg: &BenchConfig) -> Result<usize, String> {
    let map = sharded_map(16, cfg.small_buckets);
    let mut keys = KeyGen::new(KeyDist::Zipf(SHARD_ZIPF_EXPONENT), cfg.entries, 0xABBA);
    for _ in 0..cfg.entries {
        let k = keys.next_key();
        map.insert(k, k.wrapping_mul(7));
    }
    // Probe present and absent keys alike.
    let probes: Vec<u64> = (0..cfg.entries * 2).collect();
    let batched = map.multi_get(&probes);
    let mut checked = 0;
    for (key, got) in probes.iter().zip(batched) {
        let per_key = map.get_cloned(key);
        if got != per_key {
            return Err(format!(
                "multi_get({key}) = {got:?} but get({key}) = {per_key:?}"
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

/// Pre-loads a cache engine with `entries` small values.
pub fn fill_cache(engine: &dyn CacheEngine, entries: u64) {
    for key in 0..entries {
        engine.set(&cache_key(key), Item::new(0, format!("value-{key}")));
    }
}

fn cache_key(key: u64) -> String {
    format!("memtier-{key}")
}

/// Measures one memcached-style series: requests/second versus client count
/// for either GETs or SETs against `engine`.
pub fn cache_throughput(
    name: &str,
    engine: Arc<dyn CacheEngine>,
    cfg: &BenchConfig,
    sets: bool,
) -> Series {
    let mut series = Series::new(name);
    for &clients in &cfg.clients {
        let entries = cfg.entries;
        let result = measure(
            clients,
            cfg.duration,
            |idx| {
                let mut keys = KeyGen::new(KeyDist::Uniform, entries, 0xFEED + idx as u64);
                let engine = Arc::clone(&engine);
                move || {
                    let key = cache_key(keys.next_key());
                    if sets {
                        black_box(engine.set(&key, Item::new(0, "updated-value")));
                    } else {
                        black_box(engine.get(&key));
                    }
                }
            },
            Vec::new(),
        );
        eprintln!(
            "  {name}: {clients} client(s) -> {:.0} kreq/s",
            result.ops_per_sec() / 1e3
        );
        series.push(clients as f64, result.ops_per_sec() / 1e3);
    }
    series
}

/// Figure "memcached results" — GET and SET requests/second versus client
/// count for the default (global-lock) engine and the relativistic engine.
///
/// The clients run in-process (closed loop, one thread per client) so the
/// comparison isolates the engine's synchronisation — the quantity the paper
/// varies — from network-stack noise. The TCP server in `rp-kvcache` speaks
/// the same protocol for end-to-end runs.
pub fn fig_memcached(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "memcached-style cache throughput",
        "client threads",
        "requests/second (thousands)",
    );

    let rp = Arc::new(RpEngine::new());
    fill_cache(&*rp, cfg.entries);
    report.add_series(cache_throughput("RP GET", rp.clone(), cfg, false));

    let default_engine = Arc::new(LockEngine::new());
    fill_cache(&*default_engine, cfg.entries);
    report.add_series(cache_throughput(
        "default GET",
        default_engine.clone(),
        cfg,
        false,
    ));

    report.add_series(cache_throughput("default SET", default_engine, cfg, true));
    report.add_series(cache_throughput("RP SET", rp, cfg, true));

    report
}

/// One data point of the server figure: mixed 90/10 GET/SET traffic from
/// `connections` connections (shared over at most 4 driver threads)
/// against a fresh sharded-engine server started as `config` describes.
/// Returns (requests/second, p99 latency µs).
pub fn server_throughput(
    config: &ServerConfig,
    connections: usize,
    cfg: &BenchConfig,
) -> (f64, f64) {
    let engine: Arc<dyn CacheEngine> = Arc::new(ShardedRpEngine::with_shards_and_capacity(
        16,
        (cfg.entries as usize).max(1024) * 2,
    ));
    fill_cache(&*engine, cfg.entries);
    let mut server = start_server(Arc::clone(&engine), config).expect("start cache server");
    let addr = server.addr();
    let entries = cfg.entries;
    let result = drive_connections(
        connections,
        connections.min(4),
        cfg.duration,
        |_idx| CacheClient::connect(addr),
        |thread_idx| {
            let mut keys = KeyGen::new(KeyDist::Uniform, entries, 0xC0FFEE + thread_idx as u64);
            move |client: &mut CacheClient, ordinal: u64| {
                let key = cache_key(keys.next_key());
                if ordinal.is_multiple_of(10) {
                    client.set(&key, 0, 0, b"updated-value").map(|_| ())
                } else {
                    client.get(&key).map(|_| ())
                }
            }
        },
    )
    .expect("drive server workload");
    server.shutdown();
    assert_eq!(result.errors, 0, "server dropped connections mid-run");
    (result.ops_per_sec(), result.latency.percentile_us(0.99))
}

/// Regenerates the repo's server figure: requests/second and p99 latency
/// versus connection count, thread-per-connection versus the `rp-net`
/// event loop (fixed worker pool), both over the maintained sharded
/// relativistic engine.
///
/// The interesting regime is connections ≫ cores: the threaded server
/// pays a stack and a scheduler entry per connection, the event loop pays
/// two buffers. Run with `RP_BENCH_SERVER_CONNECTIONS=1000` (or more, fd
/// limits permitting) on a real box.
pub fn fig_server(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "cache server architecture: threaded vs event loop",
        "connections",
        "kreq/s (90/10 GET/SET) and p99 (µs)",
    );
    let modes = [
        ("threaded", ServerConfig::threaded()),
        ("event-loop", ServerConfig::event_loop(cfg.server_workers)),
    ];
    for (label, config) in modes {
        let mut throughput = Series::new(format!("{label} kreq/s"));
        let mut p99_series = Series::new(format!("{label} p99 µs"));
        for &connections in &cfg.server_connections {
            let (ops_per_sec, p99_us) = server_throughput(&config, connections, cfg);
            eprintln!(
                "  {label}: {connections} conn(s) -> {:.0} kreq/s, p99 {:.0} µs",
                ops_per_sec / 1e3,
                p99_us
            );
            throughput.push(connections as f64, ops_per_sec / 1e3);
            p99_series.push(connections as f64, p99_us);
        }
        report.add_series(throughput);
        report.add_series(p99_series);
    }
    report
}

/// Pipeline depths the hot-path figure sweeps (depth 1 *is* the
/// closed-loop driver: one request per window).
pub const HOTPATH_DEPTHS: [usize; 3] = [1, 8, 32];

/// Allocations-per-GET ceiling `fig_hotpath` enforces when the counting
/// allocator is installed. The expected value is exactly 0; the epsilon
/// only forgives a stray background allocation (e.g. a maintenance-thread
/// wakeup racing the measurement window) without letting a real
/// per-request allocation (1.0/op) anywhere near passing.
pub const HOTPATH_ALLOC_EPSILON: f64 = 0.005;

/// Allocation audit result: exact allocation-event deltas over the audited
/// window, process-wide (the audit runs against an otherwise idle server,
/// so the delta *is* the serving path's traffic plus this client's — and
/// the client loop below is itself allocation-free).
#[derive(Debug, Clone, Copy)]
pub struct HotpathAllocs {
    /// Operations audited per command.
    pub ops: u64,
    /// Allocation events during the GET window.
    pub get_allocs: u64,
    /// Allocation events during the SET window.
    pub set_allocs: u64,
}

impl HotpathAllocs {
    /// Allocations per steady-state GET.
    pub fn get_allocs_per_op(&self) -> f64 {
        self.get_allocs as f64 / self.ops as f64
    }

    /// Allocations per steady-state SET.
    pub fn set_allocs_per_op(&self) -> f64 {
        self.set_allocs as f64 / self.ops as f64
    }
}

fn read_until_suffix(
    stream: &mut std::net::TcpStream,
    buf: &mut Vec<u8>,
    suffix: &[u8],
) -> std::io::Result<()> {
    use std::io::Read;
    buf.clear();
    let mut chunk = [0_u8; 4096];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.ends_with(suffix) {
            return Ok(());
        }
    }
}

/// Measures allocations-per-operation for steady-state GETs and SETs
/// against the event-loop server at `addr`, using the process-wide
/// counting-allocator delta over `ops` operations (after an equal warmup
/// that lets every buffer on both sides reach its steady capacity).
///
/// Returns `None` when [`rp_workload::alloc::CountingAllocator`] is not
/// this process's global allocator (e.g. under `run_all`) — the audit is
/// only meaningful from the `fig_hotpath` binary, which installs it.
pub fn hotpath_alloc_audit(addr: std::net::SocketAddr, ops: u64) -> Option<HotpathAllocs> {
    use std::io::Write;

    if !rp_workload::alloc::counting_installed() {
        return None;
    }
    let mut stream = std::net::TcpStream::connect(addr).expect("connect audit client");
    stream.set_nodelay(true).expect("nodelay");

    // Pre-build everything the measured loops touch, so the client side of
    // the exchange is allocation-free too: the measured delta then isolates
    // the serving path (plus literally nothing else — the process is
    // otherwise idle).
    let keys: Vec<String> = (0..64).map(cache_key).collect();
    let get_reqs: Vec<Vec<u8>> = keys
        .iter()
        .map(|k| format!("get {k}\r\n").into_bytes())
        .collect();
    let set_reqs: Vec<Vec<u8>> = keys
        .iter()
        .map(|k| format!("set {k} 0 0 13\r\nupdated-value\r\n").into_bytes())
        .collect();
    let mut rbuf: Vec<u8> = Vec::with_capacity(16 * 1024);

    let mut run_gets = |count: u64, rbuf: &mut Vec<u8>| {
        for i in 0..count {
            let req = &get_reqs[(i % get_reqs.len() as u64) as usize];
            stream.write_all(req).expect("write get");
            read_until_suffix(&mut stream, rbuf, b"END\r\n").expect("read get reply");
        }
    };
    // Warmup: both sides reach steady buffer capacity (the server's
    // per-connection input buffer, pooled response segments, and this
    // client's read buffer all stop growing).
    run_gets(ops, &mut rbuf);
    let before = rp_workload::alloc::total_allocations();
    run_gets(ops, &mut rbuf);
    let get_allocs = rp_workload::alloc::total_allocations() - before;

    let mut run_sets = |count: u64, rbuf: &mut Vec<u8>| {
        for i in 0..count {
            let req = &set_reqs[(i % set_reqs.len() as u64) as usize];
            stream.write_all(req).expect("write set");
            read_until_suffix(&mut stream, rbuf, b"STORED\r\n").expect("read set reply");
        }
    };
    run_sets(ops, &mut rbuf);
    let before = rp_workload::alloc::total_allocations();
    run_sets(ops, &mut rbuf);
    let set_allocs = rp_workload::alloc::total_allocations() - before;

    Some(HotpathAllocs {
        ops,
        get_allocs,
        set_allocs,
    })
}

/// A pipelining raw client connection for the hot-path figure.
struct PipeConn {
    stream: std::net::TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
}

/// Runs one window of `depth` pipelined GETs: one `write(2)` carrying all
/// the requests, then reads until `depth` `END\r\n` terminators arrived.
fn pipelined_get_window(
    conn: &mut PipeConn,
    get_reqs: &[Vec<u8>],
    depth: usize,
    window_ordinal: u64,
) -> std::io::Result<u64> {
    use std::io::{Read, Write};

    conn.wbuf.clear();
    let base = window_ordinal.wrapping_mul(depth as u64);
    for i in 0..depth {
        let req = &get_reqs[((base + i as u64) % get_reqs.len() as u64) as usize];
        conn.wbuf.extend_from_slice(req);
    }
    conn.stream.write_all(&conn.wbuf)?;

    conn.rbuf.clear();
    let mut terminators = 0_usize;
    let mut chunk = [0_u8; 16 * 1024];
    while terminators < depth {
        let n = conn.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-window",
            ));
        }
        // Rescan only the suffix that could contain new (possibly
        // boundary-spanning) terminators.
        let scan_from = conn.rbuf.len().saturating_sub(4);
        conn.rbuf.extend_from_slice(&chunk[..n]);
        terminators += conn.rbuf[scan_from..]
            .windows(5)
            .filter(|w| w == b"END\r\n")
            .count();
    }
    Ok(depth as u64)
}

/// Throughput + p99 of GET traffic at one pipeline depth (`depth == 1` is
/// the closed-loop regime) against the server at `addr`.
pub fn hotpath_throughput(
    addr: std::net::SocketAddr,
    connections: usize,
    depth: usize,
    duration: Duration,
    entries: u64,
) -> (f64, f64) {
    let keyspace = entries.clamp(1, 1024);
    let get_reqs: Arc<Vec<Vec<u8>>> = Arc::new(
        (0..keyspace)
            .map(|k| format!("get {}\r\n", cache_key(k)).into_bytes())
            .collect(),
    );
    let result = rp_workload::drive_connections_windowed(
        connections,
        connections.min(4),
        duration,
        |_idx| {
            let stream = std::net::TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Ok(PipeConn {
                stream,
                wbuf: Vec::with_capacity(depth * 32),
                rbuf: Vec::with_capacity(depth * 64),
            })
        },
        |_thread| {
            let get_reqs = Arc::clone(&get_reqs);
            move |conn: &mut PipeConn, ordinal: u64| {
                pipelined_get_window(conn, &get_reqs, depth, ordinal)
            }
        },
    )
    .expect("drive hotpath workload");
    assert_eq!(result.errors, 0, "server dropped connections mid-run");
    (result.ops_per_sec(), result.latency.percentile_us(0.99))
}

/// Figure "hot path" — the zero-allocation serving pipeline, measured two
/// ways:
///
/// 1. **Allocations per operation** (exact, via the counting global
///    allocator the `fig_hotpath` binary installs): steady-state
///    event-loop GETs must perform **0** heap allocations end to end —
///    borrowed request decoding, byte-keyed index probe, in-place response
///    serialisation, pooled buffers. Enforced against
///    [`HOTPATH_ALLOC_EPSILON`]; SET allocations (the key + payload that
///    go *into* the table) are reported for context.
/// 2. **Pipelined throughput**: GET requests/second and p99 at pipeline
///    depths [`HOTPATH_DEPTHS`] on the same connection count. Depth ≥ 8
///    must beat the closed-loop depth-1 driver — the ceiling the
///    allocation-free path exists to serve.
pub fn fig_hotpath(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "hot path: allocations/op and pipelined GET throughput (event loop)",
        "pipeline depth",
        "kreq/s and p99 (µs)",
    );
    let engine: Arc<dyn CacheEngine> = Arc::new(ShardedRpEngine::with_shards_and_capacity(
        16,
        (cfg.entries as usize).max(1024) * 2,
    ));
    fill_cache(&*engine, cfg.entries);
    let config = ServerConfig::event_loop(cfg.server_workers);
    let mut server = start_server(engine, &config).expect("start cache server");
    let addr = server.addr();

    match hotpath_alloc_audit(addr, cfg.hotpath_audit_ops) {
        Some(audit) => {
            eprintln!(
                "  alloc audit over {} ops: GET {} allocs ({:.4}/op), SET {} allocs ({:.2}/op)",
                audit.ops,
                audit.get_allocs,
                audit.get_allocs_per_op(),
                audit.set_allocs,
                audit.set_allocs_per_op(),
            );
            let mut allocs = Series::new("GET allocs/op");
            allocs.push(1.0, audit.get_allocs_per_op());
            report.add_series(allocs);
            assert!(
                audit.get_allocs_per_op() <= HOTPATH_ALLOC_EPSILON,
                "steady-state event-loop GETs must not allocate: {} allocations over {} ops \
                 ({:.4}/op, gate {})",
                audit.get_allocs,
                audit.ops,
                audit.get_allocs_per_op(),
                HOTPATH_ALLOC_EPSILON,
            );
        }
        None => eprintln!(
            "  alloc audit unavailable (counting allocator not installed in this binary; \
             run the fig_hotpath binary for the gate)"
        ),
    }

    let mut throughput = Series::new("GET kreq/s");
    let mut p99_series = Series::new("GET p99 µs");
    let mut by_depth = Vec::new();
    for depth in HOTPATH_DEPTHS {
        let (ops_per_sec, p99_us) = hotpath_throughput(
            addr,
            cfg.hotpath_connections,
            depth,
            cfg.duration,
            cfg.entries,
        );
        eprintln!(
            "  depth {depth}: {} conn(s) -> {:.0} kreq/s, p99 {:.0} µs",
            cfg.hotpath_connections,
            ops_per_sec / 1e3,
            p99_us
        );
        throughput.push(depth as f64, ops_per_sec / 1e3);
        p99_series.push(depth as f64, p99_us);
        by_depth.push((depth, ops_per_sec));
    }
    report.add_series(throughput);
    report.add_series(p99_series);
    server.shutdown();

    let closed_loop = by_depth[0].1;
    for &(depth, ops_per_sec) in &by_depth[1..] {
        assert!(
            ops_per_sec > closed_loop,
            "pipelining at depth {depth} ({ops_per_sec:.0} req/s) must beat the closed loop \
             ({closed_loop:.0} req/s) on the same {} connections",
            cfg.hotpath_connections,
        );
    }
    report
}

/// Telemetry-overhead ceiling (percent) `fig_obs` enforces on the GET hot
/// path: with `rp-obs` latency timers enabled, best-case pipelined GET
/// throughput must stay within this fraction of the timers-off run. Only
/// gated when the measurement window is ≥ [`OBS_GATE_MIN_WINDOW`] — below
/// that, scheduler noise swamps a 2% signal and the figure just reports.
pub const OBS_OVERHEAD_GATE_PCT: f64 = 2.0;

/// Minimum per-point window for the [`OBS_OVERHEAD_GATE_PCT`] assertion.
pub const OBS_GATE_MIN_WINDOW: Duration = Duration::from_millis(200);

/// Pulls one `prefix<value>` sample out of Prometheus exposition text.
/// `prefix` must include the trailing space (or label block) so
/// `kv_get_latency_ns_count ` does not match `kv_get_latency_ns_sum`.
fn scrape_u64(text: &str, prefix: &str) -> Option<u64> {
    text.lines()
        .find_map(|line| line.strip_prefix(prefix)?.trim().parse().ok())
}

/// Figure "telemetry overhead" — what the always-on `rp-obs` layer costs,
/// and what it can see:
///
/// 1. **Enabled-vs-disabled A/B** (the subsystem's acceptance gate):
///    best-of-N pipelined GET throughput against the event-loop server
///    with telemetry timers on versus off (`rp_obs::set_enabled`). The
///    hot-path delta is two `Instant::now` reads plus one relaxed
///    `fetch_add` per request; the gate asserts the best-case cost stays
///    ≤ [`OBS_OVERHEAD_GATE_PCT`] on windows ≥ [`OBS_GATE_MIN_WINDOW`].
/// 2. **QSBR vs EBR, measured by the server itself**: the same GET
///    workload against each read-side flavor at the figure's top
///    connection count, with per-opcode latency quantiles scraped from the
///    live `STATS` endpoint — the flavor gap of `fig_qsbr`, re-observed at
///    the server level through the new histograms instead of client-side
///    timing.
pub fn fig_obs(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "telemetry: rp-obs overhead (timers on vs off) and STATS-measured read flavors",
        "trial / connections",
        "kreq/s, overhead %, and server-side GET latency (µs)",
    );
    let depth = 8;
    let trials = 5;

    // Part 1: A/B the telemetry timers over one server, interleaved so
    // drift hits both sides equally, keeping the best window of each.
    let engine: Arc<dyn CacheEngine> = Arc::new(ShardedRpEngine::with_shards_and_capacity(
        16,
        (cfg.entries as usize).max(1024) * 2,
    ));
    fill_cache(&*engine, cfg.entries);
    let config = ServerConfig::event_loop(cfg.server_workers);
    let mut server = start_server(engine, &config).expect("start cache server");
    let addr = server.addr();

    let mut on_series = Series::new("stats-on kreq/s");
    let mut off_series = Series::new("stats-off kreq/s");
    let (mut best_on, mut best_off) = (0.0_f64, 0.0_f64);
    for trial in 0..trials {
        for enabled in [true, false] {
            rp_obs::set_enabled(enabled);
            let (ops_per_sec, _) = hotpath_throughput(
                addr,
                cfg.hotpath_connections,
                depth,
                cfg.duration,
                cfg.entries,
            );
            if enabled {
                best_on = best_on.max(ops_per_sec);
                on_series.push(trial as f64, ops_per_sec / 1e3);
            } else {
                best_off = best_off.max(ops_per_sec);
                off_series.push(trial as f64, ops_per_sec / 1e3);
            }
        }
    }
    rp_obs::set_enabled(true);
    server.shutdown();
    let overhead_pct = (1.0 - best_on / best_off) * 100.0;
    eprintln!(
        "  timers on: {:.0} kreq/s best, off: {:.0} kreq/s best -> overhead {overhead_pct:.2}%",
        best_on / 1e3,
        best_off / 1e3,
    );
    report.add_series(on_series);
    report.add_series(off_series);
    let mut overhead = Series::new("overhead %");
    overhead.push(0.0, overhead_pct);
    report.add_series(overhead);
    if cfg.duration >= OBS_GATE_MIN_WINDOW {
        assert!(
            overhead_pct <= OBS_OVERHEAD_GATE_PCT,
            "telemetry timers cost {overhead_pct:.2}% of GET throughput \
             (gate {OBS_OVERHEAD_GATE_PCT}%: on {best_on:.0} req/s vs off {best_off:.0} req/s)",
        );
    }

    // Part 2: the read-flavor gap, measured by the server's own histograms.
    let connections = cfg.server_connections.last().copied().unwrap_or(64);
    for read_side in [rp_kvcache::ReadSide::Qsbr, rp_kvcache::ReadSide::Ebr] {
        let engine: Arc<dyn CacheEngine> = Arc::new(ShardedRpEngine::with_shards_and_capacity(
            16,
            (cfg.entries as usize).max(1024) * 2,
        ));
        fill_cache(&*engine, cfg.entries);
        let config = ServerConfig::event_loop(cfg.server_workers).with_read_side(read_side);
        let mut server = start_server(engine, &config).expect("start cache server");
        let addr = server.addr();

        // The registry is process-global: zero it so this run's scrape
        // reflects only this flavor's traffic.
        let mut scraper = CacheClient::connect(addr).expect("connect scraper");
        scraper.stats_text("RESET").expect("STATS RESET");
        let (ops_per_sec, client_p99_us) =
            hotpath_throughput(addr, connections, depth, cfg.duration, cfg.entries);
        let text = scraper.stats_text("").expect("scrape STATS");
        server.shutdown();

        let count = scrape_u64(&text, "kv_get_latency_ns_count ").unwrap_or(0);
        let p50_ns = scrape_u64(&text, "kv_get_latency_ns{quantile=\"0.5\"} ").unwrap_or(0);
        let p99_ns = scrape_u64(&text, "kv_get_latency_ns{quantile=\"0.99\"} ").unwrap_or(0);
        assert!(
            count > 0,
            "STATS scrape saw no GETs for {read_side:?}; endpoint broken?\n{text}"
        );
        let label = match read_side {
            rp_kvcache::ReadSide::Qsbr => "qsbr",
            rp_kvcache::ReadSide::Ebr => "ebr",
        };
        eprintln!(
            "  {label}: {connections} conn(s) -> {:.0} kreq/s client-side; server-side GET \
             p50 {p50_ns} ns, p99 {p99_ns} ns over {count} GETs (client p99 {client_p99_us:.0} µs)",
            ops_per_sec / 1e3,
        );
        let mut throughput = Series::new(format!("{label} kreq/s"));
        throughput.push(connections as f64, ops_per_sec / 1e3);
        report.add_series(throughput);
        let mut server_p99 = Series::new(format!("{label} server GET p99 µs"));
        server_p99.push(connections as f64, p99_ns as f64 / 1e3);
        report.add_series(server_p99);
        let mut server_p50 = Series::new(format!("{label} server GET p50 µs"));
        server_p50.push(connections as f64, p50_ns as f64 / 1e3);
        report.add_series(server_p50);
    }
    report
}

/// One workload in the engine tournament.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TournamentWorkload {
    /// 95% lookups / 5% writes, uniform keys.
    ReadHeavy,
    /// 50% lookups / 50% writes, uniform keys.
    WriteHeavy,
    /// 95/5 uniform while a background thread toggles the bucket count.
    ResizeStorm,
    /// 95/5 with Zipf(0.99)-skewed keys.
    HotKey,
}

impl TournamentWorkload {
    /// All four workloads, in figure order.
    pub const ALL: [TournamentWorkload; 4] = [
        TournamentWorkload::ReadHeavy,
        TournamentWorkload::WriteHeavy,
        TournamentWorkload::ResizeStorm,
        TournamentWorkload::HotKey,
    ];

    fn write_percent(self) -> u64 {
        match self {
            TournamentWorkload::WriteHeavy => 50,
            _ => 5,
        }
    }

    fn dist(self) -> KeyDist {
        match self {
            TournamentWorkload::HotKey => KeyDist::Zipf(SHARD_ZIPF_EXPONENT),
            _ => KeyDist::Uniform,
        }
    }

    fn resizes(self) -> bool {
        self == TournamentWorkload::ResizeStorm
    }
}

/// What the tournament drives: any [`ConcurrentMap`] plus a QSBR lookup.
/// Maps without a barrier-free path fall back to their ordinary lookup,
/// mirroring the cache server's `LockEngine` fallback.
pub trait TournamentMap: ConcurrentMap<u64, u64> {
    /// Barrier-free lookup through a QSBR handle where supported.
    fn lookup_qsbr(&self, key: &u64, handle: &QsbrReadHandle) -> Option<u64>;
}

impl<S: std::hash::BuildHasher + Send + Sync> TournamentMap for RpHashMap<u64, u64, S> {
    fn lookup_qsbr(&self, key: &u64, handle: &QsbrReadHandle) -> Option<u64> {
        self.get(key, handle).copied()
    }
}

impl<S: std::hash::BuildHasher + Send + Sync> TournamentMap for ShardedRpMap<u64, u64, S> {
    fn lookup_qsbr(&self, key: &u64, handle: &QsbrReadHandle) -> Option<u64> {
        self.get_qsbr(key, handle).copied()
    }
}

impl<S: std::hash::BuildHasher + Send + Sync> TournamentMap for SplitOrderMap<u64, u64, S> {
    fn lookup_qsbr(&self, key: &u64, handle: &QsbrReadHandle) -> Option<u64> {
        self.get(key, handle).copied()
    }
}

impl TournamentMap for MutexTable<u64, u64> {
    fn lookup_qsbr(&self, key: &u64, _handle: &QsbrReadHandle) -> Option<u64> {
        self.lookup(key)
    }
}

/// Measures one tournament cell: `threads` mixed readers/writers against a
/// freshly loaded `map`, under one read-side flavor and one workload.
/// Returns millions of operations per second.
pub fn tournament_point(
    map: Arc<dyn TournamentMap>,
    cfg: &BenchConfig,
    threads: usize,
    qsbr: bool,
    workload: TournamentWorkload,
) -> f64 {
    fill(&*map, cfg.entries);
    let map_ref = &*map;
    let background = if workload.resizes() && map.supports_resize() {
        let (small, large) = (cfg.small_buckets, cfg.large_buckets);
        vec![BackgroundHandle::new("resizer", move |iteration| {
            let target = if iteration % 2 == 0 { large } else { small };
            map_ref.resize_to(target);
        })]
    } else {
        Vec::new()
    };
    let entries = cfg.entries;
    let write_percent = workload.write_percent();
    let (result, _hist) = measure_thread_local(
        threads,
        cfg.duration,
        QSBR_SAMPLE_EVERY,
        |idx| {
            let mut keys = KeyGen::new(workload.dist(), entries, 0x70AD ^ idx as u64);
            let map = Arc::clone(&map);
            let mut handle = qsbr.then(QsbrReadHandle::register);
            let mut since_quiescent = 0_u64;
            let mut op = 0_u64;
            move || {
                let key = keys.next_key();
                op = op.wrapping_add(1);
                if op % 100 < write_percent {
                    // Writes alternate insert/remove from the same
                    // distribution so the population hovers around its
                    // preloaded size. A QSBR thread goes offline for the
                    // write, exactly like the event-loop server's slow
                    // path: a writer blocked on the table's writer lock
                    // while its handle is online and silent would deadlock
                    // any resize waiting out the grace period.
                    let write = || {
                        if op.is_multiple_of(2) {
                            black_box(map.insert(key, key));
                        } else {
                            black_box(map.remove(&key));
                        }
                    };
                    match handle.as_mut() {
                        Some(handle) => handle.offline_scope(write),
                        None => write(),
                    }
                } else {
                    match handle.as_mut() {
                        Some(handle) => {
                            black_box(map.lookup_qsbr(black_box(&key), handle));
                            since_quiescent += 1;
                            if since_quiescent >= QSBR_QUIESCENT_EVERY {
                                handle.quiescent_state();
                                since_quiescent = 0;
                            }
                        }
                        None => {
                            black_box(map.lookup(black_box(&key)));
                        }
                    }
                }
            }
        },
        background,
    );
    result.mops_per_sec()
}

/// Grow-path probe: inserts enough keys into a fresh map to force growth
/// on the writer thread, then reports how many `synchronize` calls that
/// thread issued. Split-ordered growth is a pointer publication — the
/// count must be zero; the relativistic table's inline zip/unzip resize
/// waits out grace periods — the count is positive. Run on a spawned
/// thread so the counter only sees this probe.
pub fn grow_synchronize_calls(splitorder: bool, inserts: u64) -> u64 {
    std::thread::spawn(move || {
        let before = rp_rcu::thread_synchronize_count();
        if splitorder {
            let map: SplitOrderMap<u64, u64> = SplitOrderMap::with_buckets(8);
            for k in 0..inserts {
                map.insert(k, k);
            }
            assert!(map.num_buckets() > 8, "probe never grew the table");
        } else {
            let map: RpHashMap<u64, u64, FnvBuildHasher> =
                RpHashMap::with_buckets_and_hasher(8, FnvBuildHasher);
            for k in 0..inserts {
                map.insert(k, k);
            }
            map.resize_to((inserts as usize).next_power_of_two());
            assert!(map.num_buckets() > 8, "probe never grew the table");
        }
        rp_rcu::thread_synchronize_count() - before
    })
    .join()
    .expect("grow probe panicked")
}

/// Figure "engine tournament" (repo addition) — every map implementation ×
/// read-side flavor × workload, one throughput cell each, plus the
/// grow-path probe: synchronize calls issued by a writer growing each
/// resizable design (split-ordered must be zero).
pub fn fig_tournament(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "Engine tournament: every map × EBR/QSBR × workload \
         (1=read-heavy, 2=write-heavy, 3=resize-storm, 4=hot-key)",
        "workload",
        "operations/second (millions)",
    );
    let threads = cfg.threads.last().copied().unwrap_or(2);

    #[allow(clippy::type_complexity)]
    let engines: Vec<(&str, Box<dyn Fn() -> Arc<dyn TournamentMap> + Sync>)> = vec![
        (
            "lock",
            Box::new(|| Arc::new(MutexTable::with_buckets(8192))),
        ),
        (
            "rp",
            Box::new(|| {
                Arc::new(
                    RpHashMap::<u64, u64, FnvBuildHasher>::with_buckets_and_hasher(
                        8192,
                        FnvBuildHasher,
                    ),
                )
            }),
        ),
        (
            "rp-shard",
            Box::new(|| Arc::new(ShardedRpMap::<u64, u64>::with_shards(8))),
        ),
        (
            "splitorder",
            Box::new(|| Arc::new(SplitOrderMap::<u64, u64>::with_buckets(8192))),
        ),
    ];

    for (name, make) in &engines {
        for (flavor, qsbr) in [("ebr", false), ("qsbr", true)] {
            let mut series = Series::new(format!("{name}/{flavor}"));
            for (ordinal, workload) in TournamentWorkload::ALL.iter().enumerate() {
                // A fresh map per cell so earlier workloads cannot skew
                // later ones (write-heavy churn, resize-storm end states).
                let mops = tournament_point(make(), cfg, threads, qsbr, *workload);
                eprintln!(
                    "  {name}/{flavor} {workload:?}: {threads} thread(s) -> {mops:.2} Mops/s"
                );
                series.push((ordinal + 1) as f64, mops);
            }
            report.add_series(series);
        }
    }

    // The resize-philosophy headline, as data: grow-path synchronize calls
    // per design. Split-ordered growth must be free of grace waits.
    let mut grow = Series::new("grow-path synchronize calls");
    let so_syncs = grow_synchronize_calls(true, 20_000);
    let rp_syncs = grow_synchronize_calls(false, 20_000);
    assert_eq!(
        so_syncs, 0,
        "split-ordered growth must never synchronize on the writer"
    );
    eprintln!("  grow probe: splitorder {so_syncs} synchronize calls, rp {rp_syncs}");
    grow.push(1.0, so_syncs as f64);
    grow.push(2.0, rp_syncs as f64);
    report.add_series(grow);

    report
}

/// Env var that flips a bench binary into `fig_c100k` connection-holder
/// mode: `"<addr> <count>"`. The ladder's client sockets live in child
/// processes so the serving process spends its `RLIMIT_NOFILE` budget on
/// *its* side of each connection only — both ends in one process would
/// halve the reachable ladder.
pub const C100K_HOLDER_ENV: &str = "RP_BENCH_C100K_HOLD";

/// Byte budget `fig_c100k` grants the server (`--max-bytes` equivalent) —
/// the bound the figure asserts buffered response memory stays under at
/// every rung of the ladder.
pub const C100K_MAX_BYTES: usize = 64 * 1024 * 1024;

/// Value size for `fig_c100k`'s GET traffic: above the reply-coalescing
/// threshold, so every pipelined response batch flushes as a genuinely
/// multi-segment `writev` and the scatter-gather gate measures real
/// batching, not one coalesced buffer.
const C100K_VALUE_LEN: usize = 4096;

/// Runs connection-holder mode when [`C100K_HOLDER_ENV`] is set: connect
/// and hold that many sockets against the given address until stdin hits
/// EOF, then drop them all and exit. Returns `true` when it ran — the
/// binary's `main` must return immediately. Every bench binary that can
/// invoke [`fig_c100k`] calls this first thing.
pub fn c100k_holder_main() -> bool {
    use std::io::{BufRead, Write};
    let Ok(spec) = std::env::var(C100K_HOLDER_ENV) else {
        return false;
    };
    let mut parts = spec.split_whitespace();
    let addr: std::net::SocketAddr = parts
        .next()
        .and_then(|v| v.parse().ok())
        .expect("holder spec is \"<addr> <count>\"");
    let count: usize = parts
        .next()
        .and_then(|v| v.parse().ok())
        .expect("holder spec is \"<addr> <count>\"");
    let mut conns = Vec::with_capacity(count);
    let mut retries = 0_usize;
    while conns.len() < count {
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => conns.push(stream),
            Err(error) => {
                // A connect burst can overflow the accept backlog; back
                // off briefly and retry.
                retries += 1;
                assert!(
                    retries < count * 10 + 1_000,
                    "holder cannot reach {addr}: {error}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    let mut stdout = std::io::stdout();
    writeln!(stdout, "HELD {count}").expect("holder stdout");
    stdout.flush().expect("holder stdout");
    // Hold everything until the parent closes our stdin.
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);
    drop(conns);
    true
}

/// Spawns this same binary as a connection holder and waits for its
/// readiness line, so rung accounting is deterministic.
fn spawn_c100k_holder(addr: std::net::SocketAddr, count: usize) -> std::process::Child {
    use std::io::BufRead;
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .env(C100K_HOLDER_ENV, format!("{addr} {count}"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn connection holder");
    let stdout = child.stdout.take().expect("holder stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("holder readiness line");
    assert!(
        line.starts_with("HELD"),
        "connection holder said {line:?} instead of HELD"
    );
    child
}

/// Figure "c100k" — how many live connections the event-loop server holds
/// while the global admission budget keeps memory bounded:
///
/// 1. **Connection ladder**: holder child processes pile live idle
///    connections onto the server (up to `RP_BENCH_C100K_CONNS`, default
///    10000). At every rung the figure waits until the server reports the
///    rung live, drives pipelined 4 KiB GETs over a handful of driver
///    connections, and scrapes the live `STATS` endpoint — asserting
///    `net_bytes_buffered` stays ≤ the byte budget throughout while
///    recording `net_backpressure_stalls_total` and `net_conns_shed_total`.
/// 2. **Admission wall**: connections pushed past `max_connections` must
///    hear `SERVER_ERROR busy` (and bump `net_conns_shed_total`) instead
///    of hanging or silently dropping.
/// 3. **Scatter-gather gate**: across the rung measurements the flush
///    layer must have issued fewer `writev` syscalls than it submitted
///    segments (`net_flush_syscalls_total` < `net_flush_segments_total`).
pub fn fig_c100k(cfg: &BenchConfig) -> Report {
    let mut report = Report::new(
        "c100k: live-connection ladder under global admission control",
        "live connections",
        "kreq/s over 8 driver conns (4 KiB values), buffered KiB, shed/stall counters",
    );
    let target = cfg.c100k_connections.max(8);
    // Headroom above the ladder top for the driver and scraper
    // connections; the admission-wall probe then pushes past it.
    let headroom = 64_usize;

    let engine: Arc<dyn CacheEngine> =
        Arc::new(ShardedRpEngine::with_shards_and_capacity(16, 4096));
    let keys: Vec<String> = (0..64).map(|k| format!("c100k-{k}")).collect();
    for key in &keys {
        engine.set(key, Item::new(0, vec![0x42_u8; C100K_VALUE_LEN]));
    }
    let get_reqs: Arc<Vec<Vec<u8>>> = Arc::new(
        keys.iter()
            .map(|k| format!("get {k}\r\n").into_bytes())
            .collect(),
    );
    let config = ServerConfig {
        max_connections: target + headroom,
        max_total_bytes: C100K_MAX_BYTES,
        ..ServerConfig::event_loop(cfg.server_workers)
    };
    let mut server =
        rp_kvcache::EventServer::start_from(engine, &config).expect("start event server");
    let addr = server.addr();
    let mut scraper = CacheClient::connect(addr).expect("connect scraper");
    scraper.stats_text("RESET").expect("STATS RESET");
    let baseline = scraper.stats_text("").expect("scrape STATS baseline");
    let syscalls_before = scrape_u64(&baseline, "net_flush_syscalls_total ").unwrap_or(0);
    let segments_before = scrape_u64(&baseline, "net_flush_segments_total ").unwrap_or(0);

    // The ladder: spread below the target, ending exactly on it.
    let mut ladder = vec![target / 100, target / 10, target / 4, target / 2, target];
    ladder.retain(|&rung| rung > 0);
    ladder.dedup();

    let depth = 16_usize;
    let driver_conns = 8_usize;
    let mut kreq = Series::new("kreq/s");
    let mut buffered = Series::new("buffered KiB");
    let mut stalls_series = Series::new("backpressure stalls");
    let mut holders: Vec<std::process::Child> = Vec::new();
    let mut held = 0_usize;
    for rung in ladder {
        if rung > held {
            holders.push(spawn_c100k_holder(addr, rung - held));
            held = rung;
        }
        // Acceptance gate: the server actually holds the rung live.
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        loop {
            let live = server.net_stats().current_connections;
            if live >= rung {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "only {live} of {rung} ladder connections came up"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        let result = rp_workload::drive_connections_windowed(
            driver_conns,
            driver_conns.min(4),
            cfg.duration,
            |_idx| {
                let stream = std::net::TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(PipeConn {
                    stream,
                    wbuf: Vec::with_capacity(depth * 32),
                    rbuf: Vec::with_capacity(depth * (C100K_VALUE_LEN + 64)),
                })
            },
            |_thread| {
                let get_reqs = Arc::clone(&get_reqs);
                move |conn: &mut PipeConn, ordinal: u64| {
                    pipelined_get_window(conn, &get_reqs, depth, ordinal)
                }
            },
        )
        .expect("drive c100k driver connections");
        assert_eq!(result.errors, 0, "driver connections failed at rung {rung}");
        let stats = server.net_stats();
        // Acceptance gate: buffer memory stays bounded by the byte budget.
        assert!(
            stats.bytes_buffered <= C100K_MAX_BYTES,
            "buffered bytes {} exceed the {C100K_MAX_BYTES}-byte budget at rung {rung}",
            stats.bytes_buffered,
        );
        let text = scraper.stats_text("").expect("scrape STATS");
        let stalls = scrape_u64(&text, "net_backpressure_stalls_total ").unwrap_or(0);
        let shed = scrape_u64(&text, "net_conns_shed_total ").unwrap_or(0);
        eprintln!(
            "  {rung} live ({} open) -> {:.0} kreq/s, {} KiB buffered, \
             {stalls} backpressure stalls, {shed} shed",
            stats.current_connections,
            result.ops_per_sec() / 1e3,
            stats.bytes_buffered / 1024,
        );
        kreq.push(rung as f64, result.ops_per_sec() / 1e3);
        buffered.push(rung as f64, stats.bytes_buffered as f64 / 1024.0);
        stalls_series.push(rung as f64, stalls as f64);
    }
    report.add_series(kreq);
    report.add_series(buffered);
    report.add_series(stalls_series);

    // Part 2: the admission wall. Push past max_connections; the overflow
    // must hear `SERVER_ERROR busy`, not hang or silently vanish.
    use std::io::Read;
    let mut overflow: Vec<std::net::TcpStream> = Vec::new();
    for _ in 0..(headroom + 32) {
        if let Ok(stream) = std::net::TcpStream::connect(addr) {
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .expect("read timeout");
            overflow.push(stream);
        }
    }
    let mut shed_replies = 0_usize;
    let mut reply = [0_u8; 64];
    // Later connections are the likeliest to have been shed; one reply is
    // proof enough (admitted ones would each block out the read timeout).
    for stream in overflow.iter_mut().rev() {
        if let Ok(n) = stream.read(&mut reply) {
            if reply[..n].starts_with(b"SERVER_ERROR") {
                shed_replies += 1;
                break;
            }
        }
    }
    drop(overflow);
    let text = scraper.stats_text("").expect("scrape STATS");
    let shed_total = scrape_u64(&text, "net_conns_shed_total ").unwrap_or(0);
    eprintln!("  admission wall: SERVER_ERROR busy heard, {shed_total} total sheds");
    assert!(
        shed_replies > 0 && shed_total > 0,
        "pushing past max_connections shed nothing \
         ({shed_replies} busy replies, {shed_total} counted)"
    );
    let mut shed_series = Series::new("conns shed at the wall");
    shed_series.push(target as f64, shed_total as f64);
    report.add_series(shed_series);

    // Acceptance gate: scatter-gather flushing batched segments into fewer
    // syscalls over the pipelined rung traffic.
    let syscalls = scrape_u64(&text, "net_flush_syscalls_total ").unwrap_or(0) - syscalls_before;
    let segments = scrape_u64(&text, "net_flush_segments_total ").unwrap_or(0) - segments_before;
    eprintln!("  flush: {syscalls} writev syscalls for {segments} segments");
    assert!(segments > 0, "no flushed segments recorded");
    assert!(
        syscalls < segments,
        "scatter-gather flush must batch: {syscalls} syscalls for {segments} segments"
    );
    let mut flush_series = Series::new("segments per writev");
    flush_series.push(target as f64, segments as f64 / syscalls.max(1) as f64);
    report.add_series(flush_series);

    // Teardown: release the holders first so shutdown drains quickly.
    for mut holder in holders {
        drop(holder.stdin.take());
        let _ = holder.wait();
    }
    drop(scraper);
    server.shutdown();
    report
}

/// The scripted plan `fig_chaos` arms during its burst window: peer
/// resets and short writes on the wire, handler panics in the service,
/// and grace-period delays underneath — every fault class the stack
/// claims to contain, firing probabilistically for the whole window.
pub const CHAOS_BURST_PLAN: &str = "net.read=econnreset@0.002;net.on_data=panic@0.001;\
                                    net.writev=short:7@0.01;rcu.grace=delay:1ms@0.1";

/// Fraction of pre-burst throughput the server must regain after the
/// faults disarm — the figure's acceptance gate.
pub const CHAOS_RECOVERY_FLOOR: f64 = 0.90;

/// Wall-clock budget for regaining [`CHAOS_RECOVERY_FLOOR`].
pub const CHAOS_RECOVERY_DEADLINE: Duration = Duration::from_secs(10);

/// Quiets the default panic hook for the panics `fig_chaos` injects on
/// purpose (each one is caught by the reactor and would otherwise print a
/// full backtrace into the figure's output); real panics still print.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let original = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected panic at failpoint"));
            if !expected {
                original(info);
            }
        }));
    });
}

/// Figure "chaos" — GET throughput through a scripted fault burst:
///
/// 1. **Pre-burst**: closed-loop GETs over reconnecting driver
///    connections establish the healthy baseline (mean of two windows
///    after one warmup window).
/// 2. **Burst**: [`CHAOS_BURST_PLAN`] arms — probabilistic connection
///    resets, short writes, handler panics and grace-period delays, all
///    inside the serving process — while the driver keeps measuring and
///    replacing killed connections.
/// 3. **Recovery**: the plan disarms and windows keep running until
///    throughput regains [`CHAOS_RECOVERY_FLOOR`] of the baseline.
///
/// Acceptance gates: the burst actually injected faults, and recovery
/// lands within [`CHAOS_RECOVERY_DEADLINE`].
pub fn fig_chaos(cfg: &BenchConfig) -> Report {
    quiet_injected_panics();
    let mut report = Report::new(
        "chaos: GET throughput through a scripted fault burst and back",
        "elapsed seconds (window end)",
        "kreq/s per window; faults armed only during the burst windows",
    );
    let engine: Arc<dyn CacheEngine> = Arc::new(RpEngine::with_capacity(4096));
    let keys: Arc<Vec<String>> = Arc::new((0..64).map(|k| format!("chaos-{k}")).collect());
    for key in keys.iter() {
        engine.set(key, Item::new(0, vec![0x42_u8; 256]));
    }
    let mut server =
        rp_kvcache::EventServer::start_from(engine, &ServerConfig::event_loop(cfg.server_workers))
            .expect("start event server");
    let addr = server.addr();
    let obs = rp_obs::global();
    let panics_before = obs.net.conn_panics_total.get();

    // Short smoke windows still need enough room for reconnect backoff
    // inside the burst to amortise.
    let window = cfg.duration.max(Duration::from_millis(100));
    let started = std::time::Instant::now();
    let mut throughput = Series::new("kreq/s");
    let mut reconnects = Series::new("driver reconnects");
    let drive_window = |throughput: &mut Series, reconnects: &mut Series, label: &str| {
        let result = rp_workload::drive_connections_reconnecting(
            8,
            4,
            window,
            |_idx| CacheClient::connect(addr),
            |_thread| {
                let keys = Arc::clone(&keys);
                move |conn: &mut CacheClient, ordinal: u64| {
                    conn.get(&keys[(ordinal % keys.len() as u64) as usize])
                        .map(|_| 1)
                }
            },
            4096,
        )
        .expect("drive chaos window");
        let at = started.elapsed().as_secs_f64();
        eprintln!(
            "  {label}: {:.0} kreq/s ({} errors, {} reconnects)",
            result.ops_per_sec() / 1e3,
            result.errors,
            result.reconnects,
        );
        throughput.push(at, result.ops_per_sec() / 1e3);
        reconnects.push(at, result.reconnects as f64);
        result.ops_per_sec()
    };

    // Phase 1: warmup (recorded but excluded from the baseline), then the
    // baseline itself.
    drive_window(&mut throughput, &mut reconnects, "warmup");
    let pre = (drive_window(&mut throughput, &mut reconnects, "pre-burst")
        + drive_window(&mut throughput, &mut reconnects, "pre-burst"))
        / 2.0;

    // Phase 2: the burst. The guard keeps the plan armed for exactly
    // these windows.
    let injected_during_burst = {
        let _arm = rp_fault::ArmGuard::new(CHAOS_BURST_PLAN, 0xC4405);
        let before = rp_fault::injected_total();
        drive_window(&mut throughput, &mut reconnects, "burst");
        drive_window(&mut throughput, &mut reconnects, "burst");
        rp_fault::injected_total() - before
    };
    let handler_panics = obs.net.conn_panics_total.get() - panics_before;
    eprintln!("  burst: {injected_during_burst} faults injected, {handler_panics} handler panics contained");
    assert!(
        injected_during_burst > 0,
        "the burst window never hit an armed failpoint"
    );

    // Phase 3: recovery — windows keep running until the gate is met.
    let disarmed = std::time::Instant::now();
    let floor = pre * CHAOS_RECOVERY_FLOOR;
    let recovery_secs = loop {
        let ops = drive_window(&mut throughput, &mut reconnects, "recovery");
        let elapsed = disarmed.elapsed();
        if ops >= floor {
            break elapsed.as_secs_f64();
        }
        assert!(
            elapsed < CHAOS_RECOVERY_DEADLINE,
            "throughput stuck at {:.0}/s, below {:.0}% of the {pre:.0}/s baseline \
             {:?} after the faults disarmed",
            ops,
            CHAOS_RECOVERY_FLOOR * 100.0,
            CHAOS_RECOVERY_DEADLINE,
        );
    };
    eprintln!(
        "  recovered to >= {:.0}% of baseline {recovery_secs:.2}s after disarm",
        CHAOS_RECOVERY_FLOOR * 100.0
    );
    report.add_series(throughput);
    report.add_series(reconnects);
    let mut burst_series = Series::new("faults injected during the burst");
    burst_series.push(0.0, injected_during_burst as f64);
    report.add_series(burst_series);
    let mut panic_series = Series::new("handler panics contained");
    panic_series.push(0.0, handler_panics as f64);
    report.add_series(panic_series);
    let mut recovery_series = Series::new("seconds to regain 90% of baseline");
    recovery_series.push(0.0, recovery_secs);
    report.add_series(recovery_series);
    server.shutdown();
    report
}

/// Runs every figure and writes CSV + markdown into `cfg.out_dir`, plus a
/// combined `summary.md`. Returns the reports in figure order.
pub fn run_all(cfg: &BenchConfig) -> std::io::Result<Vec<Report>> {
    #[allow(clippy::type_complexity)]
    let figures: Vec<(&str, fn(&BenchConfig) -> Report)> = vec![
        ("fig_baseline", fig_baseline),
        ("fig_resize", fig_resize),
        ("fig_rp_vs_fixed", fig_rp_vs_fixed),
        ("fig_ddds_vs_fixed", fig_ddds_vs_fixed),
        ("fig_memcached", fig_memcached),
        ("fig_shard", fig_shard),
        ("fig_maint", fig_maint),
        ("fig_server", fig_server),
        ("fig_qsbr", fig_qsbr),
        ("fig_hotpath", fig_hotpath),
        ("fig_obs", fig_obs),
        ("fig_tournament", fig_tournament),
        ("fig_c100k", fig_c100k),
        ("fig_chaos", fig_chaos),
    ];
    let mut reports = Vec::new();
    let mut summary = String::new();
    summary.push_str("# Relativist benchmark summary\n\n");
    summary.push_str(&format!(
        "Host: {}. Entries: {}. Buckets: {} / {}. Window: {:?} per point.\n\n",
        cfg.host, cfg.entries, cfg.small_buckets, cfg.large_buckets, cfg.duration
    ));
    for (stem, f) in figures {
        eprintln!("== {stem} ==");
        let report = f(cfg);
        report.write_files(&cfg.out_dir, stem)?;
        summary.push_str(&report.to_markdown());
        reports.push(report);
    }
    std::fs::create_dir_all(&cfg.out_dir)?;
    std::fs::write(cfg.out_dir.join("summary.md"), summary)?;
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maint_storm_measures_latency_for_both_variants() {
        let cfg = BenchConfig::smoke_test();
        for maintained in [false, true] {
            let map: Arc<ShardedRpMap<u64, u64>> = Arc::new(if maintained {
                ShardedRpMap::with_maintenance(
                    maint_storm_policy(4),
                    rp_maint::MaintConfig::default(),
                )
            } else {
                ShardedRpMap::with_policy(maint_storm_policy(4))
            });
            let (hist, writer_waits) = maint_write_storm(&map, 2, cfg.duration);
            assert!(hist.count() > 0, "storm recorded no inserts");
            assert!(hist.percentile_ns(0.99) >= hist.percentile_ns(0.50));
            if maintained {
                assert_eq!(
                    writer_waits, 0,
                    "maintained writers must never wait for a grace period"
                );
            }
            map.check_invariants().unwrap();
        }
    }

    #[test]
    fn config_from_env_has_sane_defaults() {
        let cfg = BenchConfig::from_env();
        assert!(cfg.entries > 0);
        assert!(cfg.small_buckets < cfg.large_buckets);
        assert!(!cfg.threads.is_empty());
        assert!(!cfg.clients.is_empty());
    }

    #[test]
    fn fill_populates_the_table() {
        let map: RpHashMap<u64, u64, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(64, FnvBuildHasher);
        fill(&map, 100);
        assert_eq!(ConcurrentMap::len(&map), 100);
        assert_eq!(map.lookup(&42), Some(42));
    }

    #[test]
    fn lookup_scalability_produces_one_point_per_thread_count() {
        let cfg = BenchConfig::smoke_test();
        let map: Arc<RpHashMap<u64, u64, FnvBuildHasher>> = Arc::new(
            RpHashMap::with_buckets_and_hasher(cfg.small_buckets, FnvBuildHasher),
        );
        fill(&*map, cfg.entries);
        let series = lookup_scalability("RP", map, &cfg, None);
        assert_eq!(series.points.len(), cfg.threads.len());
        assert!(series.points.iter().all(|(_, mops)| *mops > 0.0));
    }

    #[test]
    fn resize_series_keeps_readers_running() {
        let cfg = BenchConfig::smoke_test();
        let map: Arc<RpHashMap<u64, u64, FnvBuildHasher>> = Arc::new(
            RpHashMap::with_buckets_and_hasher(cfg.small_buckets, FnvBuildHasher),
        );
        fill(&*map, cfg.entries);
        let series = lookup_scalability(
            "RP resize",
            map,
            &cfg,
            Some((cfg.small_buckets, cfg.large_buckets)),
        );
        assert!(series.points.iter().all(|(_, mops)| *mops > 0.0));
    }

    #[test]
    fn fig_obs_reports_overhead_and_scrapes_server_histograms() {
        let cfg = BenchConfig::smoke_test();
        let report = fig_obs(&cfg);
        // The smoke window is far below OBS_GATE_MIN_WINDOW, so the ≤2%
        // gate does not apply — but the A/B and both STATS-scraped flavor
        // runs must all have produced data.
        for name in [
            "stats-on kreq/s",
            "stats-off kreq/s",
            "overhead %",
            "qsbr kreq/s",
            "ebr kreq/s",
            "qsbr server GET p99 µs",
            "ebr server GET p99 µs",
        ] {
            let series = report
                .series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"));
            assert!(!series.points.is_empty(), "empty series {name}");
        }
        assert!(rp_obs::enabled(), "fig_obs must re-enable telemetry");
    }

    #[test]
    fn fig_tournament_covers_every_engine_flavor_and_workload() {
        let cfg = BenchConfig::smoke_test();
        let report = fig_tournament(&cfg);
        for engine in ["lock", "rp", "rp-shard", "splitorder"] {
            for flavor in ["ebr", "qsbr"] {
                let name = format!("{engine}/{flavor}");
                let series = report
                    .series
                    .iter()
                    .find(|s| s.name == name)
                    .unwrap_or_else(|| panic!("missing series {name}"));
                assert_eq!(
                    series.points.len(),
                    TournamentWorkload::ALL.len(),
                    "series {name} must have one point per workload"
                );
                assert!(series.points.iter().all(|(_, mops)| *mops > 0.0));
            }
        }
        let grow = report
            .series
            .iter()
            .find(|s| s.name == "grow-path synchronize calls")
            .expect("missing grow-path probe series");
        assert_eq!(grow.points[0].1, 0.0, "split-ordered growth synchronized");
        assert!(grow.points[1].1 > 0.0, "rp resize should synchronize");
    }

    #[test]
    fn cache_throughput_measures_gets_and_sets() {
        let cfg = BenchConfig::smoke_test();
        let engine = Arc::new(RpEngine::new());
        fill_cache(&*engine, cfg.entries);
        let gets = cache_throughput("RP GET", engine.clone(), &cfg, false);
        let sets = cache_throughput("RP SET", engine, &cfg, true);
        assert_eq!(gets.points.len(), cfg.clients.len());
        assert_eq!(sets.points.len(), cfg.clients.len());
        assert!(gets.points.iter().all(|(_, kops)| *kops > 0.0));
        assert!(sets.points.iter().all(|(_, kops)| *kops > 0.0));
    }
}
