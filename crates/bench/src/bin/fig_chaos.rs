//! Regenerates the chaos figure: GET throughput against the event-loop
//! server before, during and after a scripted `rp-fault` burst
//! (connection resets, short writes, handler panics, grace-period
//! delays), gating recovery to ≥90% of the pre-burst baseline within
//! 10 seconds of the faults disarming.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("fig_chaos on {}", cfg.host);
    let report = rp_bench::fig_chaos(&cfg);
    report.write_files(&cfg.out_dir, "fig_chaos")?;
    print!("{}", report.to_markdown());
    Ok(())
}
