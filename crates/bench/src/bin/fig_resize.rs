//! Reproduces the paper's "Results – continuous resizing" figure:
//! lookups/second versus reader threads for RP and DDDS while a background
//! thread resizes the table continuously between the small and large bucket
//! counts.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("continuous-resize comparison on {}", cfg.host);
    let report = rp_bench::fig_resize(&cfg);
    report.write_files(&cfg.out_dir, "fig_resize")?;
    print!("{}", report.to_markdown());
    Ok(())
}
