//! Reproduces the paper's "Results – our resize versus fixed" figure: the
//! relativistic table at the small fixed size, the large fixed size, and
//! continuously resizing between the two.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("RP resize-vs-fixed on {}", cfg.host);
    let report = rp_bench::fig_rp_vs_fixed(&cfg);
    report.write_files(&cfg.out_dir, "fig_rp_vs_fixed")?;
    print!("{}", report.to_markdown());
    Ok(())
}
