//! Regenerates every figure of the paper's evaluation and writes CSV +
//! markdown (including a combined `summary.md`) into the output directory.

fn main() -> std::io::Result<()> {
    // fig_c100k re-invokes the running binary as a connection holder.
    if rp_bench::c100k_holder_main() {
        return Ok(());
    }
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!(
        "regenerating all figures on {} (output: {})",
        cfg.host,
        cfg.out_dir.display()
    );
    let reports = rp_bench::run_all(&cfg)?;
    for report in &reports {
        print!("{}", report.to_markdown());
    }
    eprintln!(
        "wrote {} figures to {}",
        reports.len(),
        cfg.out_dir.display()
    );
    Ok(())
}
