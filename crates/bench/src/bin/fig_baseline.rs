//! Reproduces the paper's "Results: fixed-size table baseline" figure:
//! lookups/second versus reader threads for RP, DDDS and rwlock with no
//! resizing.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("fixed-size baseline on {}", cfg.host);
    let report = rp_bench::fig_baseline(&cfg);
    report.write_files(&cfg.out_dir, "fig_baseline")?;
    print!("{}", report.to_markdown());
    Ok(())
}
