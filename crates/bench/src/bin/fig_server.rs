//! Regenerates the repo's server-architecture figure: requests/second and
//! p99 latency versus connection count for the thread-per-connection
//! server and the `rp-net` event-loop server (fixed worker pool), both
//! over the maintained sharded relativistic engine.
//!
//! Knobs: `RP_BENCH_SERVER_CONNECTIONS` (ladder top, default 256),
//! `RP_BENCH_SERVER_WORKERS` (event-loop workers, default 2),
//! `RP_BENCH_DURATION_MS`, `RP_BENCH_ENTRIES`.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("cache server architecture benchmark on {}", cfg.host);
    let report = rp_bench::fig_server(&cfg);
    report.write_files(&cfg.out_dir, "fig_server")?;
    print!("{}", report.to_markdown());
    Ok(())
}
