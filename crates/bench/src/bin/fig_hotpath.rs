//! Regenerates the repo's hot-path figure and enforces the
//! allocation-regression gate: steady-state event-loop GETs must perform
//! **zero** heap allocations (measured exactly, by installing
//! [`rp_workload::alloc::CountingAllocator`] as this binary's global
//! allocator), and pipelined GET throughput at depth ≥ 8 must beat the
//! closed-loop driver on the same connections.
//!
//! `--smoke` shrinks the run for CI (short windows, few connections) while
//! keeping both assertions live — a regression that puts an allocation
//! back on the GET path fails this binary, and therefore the build.
//!
//! Knobs: `RP_BENCH_HOTPATH_CONNECTIONS`, `RP_BENCH_HOTPATH_AUDIT_OPS`,
//! `RP_BENCH_DURATION_MS`, `RP_BENCH_ENTRIES`, `RP_BENCH_SERVER_WORKERS`.

use std::time::Duration;

#[global_allocator]
static ALLOC: rp_workload::alloc::CountingAllocator = rp_workload::alloc::CountingAllocator;

fn main() -> std::io::Result<()> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let mut cfg = rp_bench::BenchConfig::from_env();
    if smoke {
        cfg.duration = cfg.duration.min(Duration::from_millis(150));
        cfg.entries = cfg.entries.min(2048);
        cfg.hotpath_connections = cfg.hotpath_connections.min(8);
        cfg.hotpath_audit_ops = cfg.hotpath_audit_ops.min(2000);
    }
    eprintln!(
        "hot-path benchmark on {} ({}; counting allocator installed)",
        cfg.host,
        if smoke { "smoke mode" } else { "full run" },
    );
    let report = rp_bench::fig_hotpath(&cfg);
    report.write_files(&cfg.out_dir, "fig_hotpath")?;
    print!("{}", report.to_markdown());
    if smoke {
        eprintln!("fig_hotpath smoke gate passed: 0 allocs/op, pipelining beats closed loop");
    }
    Ok(())
}
