//! Reproduces the paper's "memcached results" figure: requests/second versus
//! client count for GETs and SETs against the default (global-lock) cache
//! engine and the relativistic engine.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("memcached-style cache benchmark on {}", cfg.host);
    let report = rp_bench::fig_memcached(&cfg);
    report.write_files(&cfg.out_dir, "fig_memcached")?;
    print!("{}", report.to_markdown());
    Ok(())
}
