//! Ablation: per-entry memory overhead of each design.
//!
//! The paper's related-work discussion calls out Herbert Xu's resizable
//! tables for needing *two* sets of chain pointers in every node, and DDDS
//! resizes for allocating a complete second copy of every entry while a
//! resize is in flight. This binary quantifies those costs for the node
//! layouts used in this workspace, plus the transient overhead during a
//! resize, using `u64 → u64` entries as the common baseline.

use std::mem::size_of;
use std::sync::atomic::AtomicPtr;

fn row(name: &str, node_bytes: usize, resize_transient: &str, notes: &str) {
    println!("| {name} | {node_bytes} | {resize_transient} | {notes} |");
}

fn main() {
    // Mirror the private node layouts (next pointers + cached hash + K + V).
    let ptr = size_of::<AtomicPtr<()>>();
    let hash = size_of::<u64>();
    let kv = size_of::<u64>() * 2;

    let rp_node = ptr + hash + kv;
    let ddds_node = ptr + hash + kv;
    let xu_node = 2 * ptr + hash + kv;
    let vec_entry = kv; // bucket-Vec baselines store (K, V) inline

    println!("### Per-entry memory overhead (u64 keys and values)\n");
    println!("| design | bytes per entry (chain node) | transient during resize | notes |");
    println!("|---|---|---|---|");
    row(
        "RP (this paper)",
        rp_node,
        "new bucket array only",
        "single next pointer; resize relinks existing nodes in place",
    );
    row(
        "DDDS",
        ddds_node,
        "full second copy of every entry",
        "resize copies each entry into the new table before retiring the old one",
    );
    row(
        "Xu dual-chain",
        xu_node,
        "new bucket array only",
        "two next pointers in every node, all the time",
    );
    row(
        "rwlock / mutex / bucket-lock",
        vec_entry,
        "full rebuild under the write lock",
        "no chain nodes, but readers take locks and resizes stop the world",
    );

    println!();
    println!(
        "RP vs Xu: {} vs {} bytes per node ({} byte(s) saved per entry, {:.0}% of the node).",
        rp_node,
        xu_node,
        xu_node - rp_node,
        100.0 * (xu_node - rp_node) as f64 / xu_node as f64
    );
    println!(
        "DDDS matches RP at rest but doubles its footprint while a resize is running \
         (every entry exists in both tables until the copy finishes)."
    );
}
