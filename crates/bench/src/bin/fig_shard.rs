//! Sharded write-throughput figure: insert throughput versus writer
//! threads for the single-table relativistic map and `rp-shard` at
//! 1/4/16/64 shards under Zipf-distributed keys, plus an end-to-end check
//! that the batched `multi_get` path returns exactly what per-key `get`
//! returns.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("sharded write scalability on {}", cfg.host);

    match rp_bench::verify_shard_multi_get(&cfg) {
        Ok(checked) => {
            eprintln!("multi_get consistency: OK ({checked} keys identical to per-key get)")
        }
        Err(e) => {
            eprintln!("multi_get consistency: FAILED: {e}");
            std::process::exit(1);
        }
    }

    let report = rp_bench::fig_shard(&cfg);
    report.write_files(&cfg.out_dir, "fig_shard")?;
    print!("{}", report.to_markdown());

    // Summarise the scaling headline: sharded vs single-table write
    // throughput at the largest measured thread count.
    let single = report
        .series
        .iter()
        .find(|s| s.name.contains("single-table"));
    let sharded16 = report.series.iter().find(|s| s.name.contains("16 shards"));
    if let (Some(single), Some(sharded)) = (single, sharded16) {
        if let (Some((threads, base)), Some((_, fast))) =
            (single.points.last(), sharded.points.last())
        {
            println!();
            println!(
                "16 shards vs single table at {threads} writers: {:.2}x",
                fast / base.max(1e-9)
            );
        }
    }
    Ok(())
}
