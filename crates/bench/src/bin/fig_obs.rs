//! Regenerates the telemetry figure: pipelined GET throughput with the
//! `rp-obs` latency timers enabled versus disabled (the subsystem's ≤2%
//! overhead gate), plus a QSBR-versus-EBR server comparison measured from
//! the live `STATS` endpoint's per-opcode histograms.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("fig_obs on {}", cfg.host);
    let report = rp_bench::fig_obs(&cfg);
    report.write_files(&cfg.out_dir, "fig_obs")?;
    print!("{}", report.to_markdown());
    Ok(())
}
