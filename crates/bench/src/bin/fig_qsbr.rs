//! Regenerates the read-side flavor figure: lookup throughput and sampled
//! p99 latency versus reader threads, EBR (per-lookup guard) versus QSBR
//! (barrier-free lookups with periodic quiescent announcements), with and
//! without a background thread continuously resizing the table.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("fig_qsbr on {}", cfg.host);
    let report = rp_bench::fig_qsbr(&cfg);
    report.write_files(&cfg.out_dir, "fig_qsbr")?;
    print!("{}", report.to_markdown());
    Ok(())
}
