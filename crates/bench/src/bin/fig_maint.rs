//! Maintained-resize latency figure: p99 insert latency under a Zipfian
//! write storm, inline-resize versus background-maintained resize, at 4 and
//! 16 shards. Also prints the grace periods the writer threads themselves
//! waited for — 0 on the maintained path, which is the whole point.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("resize-maintenance insert latency on {}", cfg.host);

    let report = rp_bench::fig_maint(&cfg);
    report.write_files(&cfg.out_dir, "fig_maint")?;
    print!("{}", report.to_markdown());

    // Headline: the inline/maintained p99 ratio per shard count.
    let inline = report.series.iter().find(|s| s.name.contains("inline"));
    let maintained = report.series.iter().find(|s| s.name.contains("maintained"));
    if let (Some(inline), Some(maintained)) = (inline, maintained) {
        println!();
        for &(shards, inline_p99) in &inline.points {
            if let Some(maint_p99) = maintained.y_at(shards) {
                println!(
                    "{shards:.0} shards: inline p99 {inline_p99:.1} µs vs maintained p99 \
                     {maint_p99:.1} µs ({:.2}x)",
                    inline_p99 / maint_p99.max(1e-9)
                );
            }
        }
    }
    Ok(())
}
