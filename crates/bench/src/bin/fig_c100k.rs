//! Regenerates the c100k figure: a live-connection ladder (held by child
//! processes re-invoking this binary) against the event-loop server under
//! global admission control, gating buffered bytes ≤ the byte budget,
//! `SERVER_ERROR busy` sheds past the connection wall, and fewer `writev`
//! syscalls than flushed segments.

fn main() -> std::io::Result<()> {
    if rp_bench::c100k_holder_main() {
        return Ok(());
    }
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("fig_c100k on {}", cfg.host);
    let report = rp_bench::fig_c100k(&cfg);
    report.write_files(&cfg.out_dir, "fig_c100k")?;
    print!("{}", report.to_markdown());
    Ok(())
}
