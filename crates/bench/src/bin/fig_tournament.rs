//! Regenerates the engine-tournament figure: every map implementation
//! (lock, rp, rp-shard, splitorder) under both read-side flavors across
//! four workloads, plus the grow-path probe showing split-ordered growth
//! issues zero synchronize calls where the relativistic resize waits out
//! grace periods.

fn main() -> std::io::Result<()> {
    let cfg = rp_bench::BenchConfig::from_env();
    eprintln!("fig_tournament on {}", cfg.host);
    let report = rp_bench::fig_tournament(&cfg);
    report.write_files(&cfg.out_dir, "fig_tournament")?;
    print!("{}", report.to_markdown());
    Ok(())
}
