//! Criterion micro-benchmarks for the RCU substrate: read-side entry/exit
//! cost per flavor, pointer publication, and grace-period latency.
//!
//! These support the paper's methodology discussion: relativistic readers
//! pay a small constant cost (no locks, no RMW) regardless of writer
//! activity, and the QSBR flavor removes even the memory fence.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rp_rcu::qsbr::QsbrDomain;
use rp_rcu::{pin, RcuCell, RcuDomain};

fn bench_read_side(c: &mut Criterion) {
    let mut group = c.benchmark_group("rcu_read_side");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);

    group.bench_function("mb_flavor_pin_unpin", |b| {
        b.iter(|| {
            let guard = pin();
            black_box(&guard);
        })
    });

    group.bench_function("mb_flavor_nested_pin", |b| {
        let _outer = pin();
        b.iter(|| {
            let guard = pin();
            black_box(&guard);
        })
    });

    let qsbr = QsbrDomain::new();
    let handle = qsbr.register();
    group.bench_function("qsbr_read_lock_and_quiescent", |b| {
        b.iter(|| {
            {
                let guard = handle.read_lock();
                black_box(&guard);
            }
            handle.quiescent_state();
        })
    });

    let cell = RcuCell::new(Box::new(42_u64));
    group.bench_function("rcu_cell_load", |b| {
        let guard = pin();
        b.iter(|| black_box(cell.load(&guard)))
    });

    group.finish();
}

fn bench_grace_periods(c: &mut Criterion) {
    let mut group = c.benchmark_group("rcu_grace_period");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    group.bench_function("synchronize_no_readers", |b| {
        let domain = RcuDomain::new();
        b.iter(|| domain.synchronize())
    });

    group.bench_function("synchronize_global_domain", |b| {
        b.iter(|| RcuDomain::global().synchronize())
    });

    group.bench_function("defer_and_reclaim_batch_of_64", |b| {
        let domain = RcuDomain::new();
        b.iter(|| {
            for _ in 0..64 {
                domain.defer(|| {});
            }
            domain.synchronize_and_reclaim();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_read_side, bench_grace_periods);
criterion_main!(benches);
