//! Criterion micro-benchmarks for single-threaded map operations across
//! every implementation: the per-operation cost that underlies the
//! scalability figures.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rp_baselines::{BucketLockTable, ConcurrentMap, DddsTable, MutexTable, RwLockTable, XuTable};
use rp_hash::{FnvBuildHasher, RpHashMap};

const ENTRIES: u64 = 4096;
const BUCKETS: usize = 4096;

#[allow(clippy::type_complexity)]
fn implementations() -> Vec<(&'static str, Box<dyn ConcurrentMap<u64, u64>>)> {
    vec![
        (
            "rp",
            Box::new(
                RpHashMap::<u64, u64, FnvBuildHasher>::with_buckets_and_hasher(
                    BUCKETS,
                    FnvBuildHasher,
                ),
            ),
        ),
        (
            "ddds",
            Box::new(DddsTable::<u64, u64>::with_buckets(BUCKETS)),
        ),
        (
            "rwlock",
            Box::new(RwLockTable::<u64, u64>::with_buckets(BUCKETS)),
        ),
        (
            "mutex",
            Box::new(MutexTable::<u64, u64>::with_buckets(BUCKETS)),
        ),
        (
            "bucket-lock",
            Box::new(BucketLockTable::<u64, u64>::with_buckets(BUCKETS)),
        ),
        ("xu", Box::new(XuTable::<u64, u64>::with_buckets(BUCKETS))),
    ]
}

fn bench_lookup_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_hit");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for (name, map) in implementations() {
        for key in 0..ENTRIES {
            map.insert(key, key);
        }
        let mut key = 0_u64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &map, |b, map| {
            b.iter(|| {
                key = (key
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493))
                    % ENTRIES;
                black_box(map.lookup(black_box(&key)))
            })
        });
    }
    group.finish();
}

fn bench_lookup_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_miss");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for (name, map) in implementations() {
        for key in 0..ENTRIES {
            map.insert(key, key);
        }
        let mut key = 0_u64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &map, |b, map| {
            b.iter(|| {
                key = key.wrapping_add(1);
                black_box(map.lookup(black_box(&(ENTRIES + key))))
            })
        });
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_then_remove");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for (name, map) in implementations() {
        for key in 0..ENTRIES {
            map.insert(key, key);
        }
        let mut key = ENTRIES;
        group.bench_with_input(BenchmarkId::from_parameter(name), &map, |b, map| {
            b.iter(|| {
                key += 1;
                map.insert(black_box(key), key);
                map.remove(black_box(&key));
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lookup_hit,
    bench_lookup_miss,
    bench_insert_remove
);
criterion_main!(benches);
