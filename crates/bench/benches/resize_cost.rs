//! Criterion micro-benchmarks for the cost of a resize step itself (as
//! opposed to its effect on concurrent readers, which the figure harnesses
//! measure): the relativistic unzip/zip versus DDDS's copy-everything resize
//! versus Xu's dual-chain relink, at several table sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rp_baselines::{ConcurrentMap, DddsTable, XuTable};
use rp_hash::{FnvBuildHasher, RpHashMap};

const SIZES: &[u64] = &[1024, 4096, 16384];

fn bench_resize_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("grow_then_shrink_cycle");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    for &entries in SIZES {
        let buckets = entries as usize;

        let rp: RpHashMap<u64, u64, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(buckets, FnvBuildHasher);
        for k in 0..entries {
            rp.insert(k, k);
        }
        group.bench_with_input(BenchmarkId::new("rp_unzip", entries), &rp, |b, rp| {
            b.iter(|| {
                rp.expand();
                rp.shrink();
            })
        });

        let ddds: DddsTable<u64, u64> = DddsTable::with_buckets(buckets);
        for k in 0..entries {
            ddds.insert(k, k);
        }
        group.bench_with_input(BenchmarkId::new("ddds_copy", entries), &ddds, |b, ddds| {
            b.iter(|| {
                ddds.resize(buckets * 2);
                ddds.resize(buckets);
            })
        });

        let xu: XuTable<u64, u64> = XuTable::with_buckets(buckets);
        for k in 0..entries {
            xu.insert(k, k);
        }
        group.bench_with_input(BenchmarkId::new("xu_dual_chain", entries), &xu, |b, xu| {
            b.iter(|| {
                xu.resize(buckets * 2);
                xu.resize(buckets);
            })
        });
    }

    group.finish();
}

fn bench_shrink_only(c: &mut Criterion) {
    // The paper's shrink needs exactly one grace period regardless of size;
    // expansion needs one per unzip round. This bench quantifies both sides
    // separately for the relativistic table.
    let mut group = c.benchmark_group("rp_resize_direction");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    let entries = 8192_u64;
    let map: RpHashMap<u64, u64, FnvBuildHasher> =
        RpHashMap::with_buckets_and_hasher(entries as usize, FnvBuildHasher);
    for k in 0..entries {
        map.insert(k, k);
    }

    group.bench_function("expand_8k_to_16k_then_back", |b| {
        b.iter(|| {
            map.expand();
            map.shrink();
        })
    });

    group.bench_function("shrink_8k_to_4k_then_back", |b| {
        b.iter(|| {
            map.shrink();
            map.expand();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_resize_cycle, bench_shrink_only);
criterion_main!(benches);
