//! Property-based tests: the relativistic hash map must behave exactly like
//! `std::collections::HashMap` under arbitrary operation sequences, with
//! resizes interleaved anywhere, and its structural invariants must hold
//! after every sequence.

use std::collections::HashMap;

use proptest::prelude::*;

use rp_hash::{FnvBuildHasher, ResizePolicy, RpHashMap};

/// One step of a generated workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Lookup(u16),
    Expand,
    Shrink,
    ResizeTo(u16),
    Rename(u16, u16),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        4 => any::<u16>().prop_map(Op::Remove),
        8 => any::<u16>().prop_map(Op::Lookup),
        1 => Just(Op::Expand),
        1 => Just(Op::Shrink),
        1 => (1_u16..512).prop_map(Op::ResizeTo),
        2 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Rename(a, b)),
        1 => Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn behaves_like_std_hashmap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let map: RpHashMap<u16, u32, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(4, FnvBuildHasher);
        let mut model: HashMap<u16, u32> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let newly = map.insert(k, v);
                    let model_newly = model.insert(k, v).is_none();
                    prop_assert_eq!(newly, model_newly, "insert({}, {})", k, v);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(map.remove(&k), model.remove(&k).is_some(), "remove({})", k);
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(map.get_cloned(&k), model.get(&k).copied(), "lookup({})", k);
                }
                Op::Expand => map.expand(),
                Op::Shrink => map.shrink(),
                Op::ResizeTo(n) => map.resize_to(n as usize),
                Op::Rename(old, new) => {
                    let did = map.rename(&old, new);
                    // Model the same semantics: move the value if present.
                    let model_did = if let Some(v) = model.get(&old).copied() {
                        if old != new {
                            model.remove(&old);
                            model.insert(new, v);
                        }
                        true
                    } else {
                        false
                    };
                    prop_assert_eq!(did, model_did, "rename({} -> {})", old, new);
                }
                Op::Clear => {
                    map.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }

        // Structural invariants hold after any sequence.
        map.check_invariants().map_err(TestCaseError::fail)?;

        // Final contents match exactly.
        let mut contents = map.to_vec();
        contents.sort_unstable();
        let mut expected: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        expected.sort_unstable();
        prop_assert_eq!(contents, expected);
    }

    #[test]
    fn resizes_never_lose_or_duplicate_entries(
        keys in proptest::collection::hash_set(any::<u32>(), 1..400),
        resizes in proptest::collection::vec(1_u16..1024, 1..12),
    ) {
        let map: RpHashMap<u32, u32, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(2, FnvBuildHasher);
        for &k in &keys {
            map.insert(k, k.wrapping_mul(3));
        }
        for &target in &resizes {
            map.resize_to(target as usize);
            prop_assert_eq!(map.len(), keys.len());
        }
        map.check_invariants().map_err(TestCaseError::fail)?;
        let guard = map.pin();
        for &k in &keys {
            prop_assert_eq!(map.get(&k, &guard).copied(), Some(k.wrapping_mul(3)));
        }
        prop_assert_eq!(map.iter(&guard).count(), keys.len());
    }

    #[test]
    fn automatic_policy_matches_manual_results(
        entries in proptest::collection::vec((any::<u16>(), any::<u32>()), 1..300)
    ) {
        let auto: RpHashMap<u16, u32, FnvBuildHasher> = RpHashMap::with_buckets_hasher_and_policy(
            2,
            FnvBuildHasher,
            ResizePolicy::automatic(),
        );
        let manual: RpHashMap<u16, u32, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(1024, FnvBuildHasher);
        for &(k, v) in &entries {
            auto.insert(k, v);
            manual.insert(k, v);
        }
        prop_assert_eq!(auto.len(), manual.len());
        let guard = auto.pin();
        for &(k, _) in &entries {
            prop_assert_eq!(auto.get(&k, &guard), manual.get(&k, &guard));
        }
        auto.check_invariants().map_err(TestCaseError::fail)?;
    }
}
