//! Fault-injected resize chaos: panics at resize state-machine boundaries
//! must leave the table consistent, readable, and writable.
//!
//! These tests arm the **process-global** `rp_fault` registry, so every
//! armed section runs under one serial mutex (the harness runs tests in
//! this binary on separate threads) and disarms before releasing it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use rp_hash::{ResizeStep, RpHashMap};

/// Serializes armed sections; `rp_fault`'s plan registry is process-global.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    // A panicking armed test must not wedge the others.
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Installs a panic hook that stays quiet for injected-failpoint panics.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("injected panic at failpoint"))
            .unwrap_or(false);
        if !expected {
            default(info);
        }
    }));
}

fn filled_map(keys: usize) -> RpHashMap<usize, usize> {
    let map = RpHashMap::with_buckets(4);
    for k in 0..keys {
        map.insert(k, k * 10);
    }
    map
}

fn assert_all_readable(map: &RpHashMap<usize, usize>, keys: usize) {
    let guard = map.pin();
    for k in 0..keys {
        assert_eq!(
            map.get(&k, &guard),
            Some(&(k * 10)),
            "key {k} lost while the resize was mid-flight"
        );
    }
}

#[test]
fn panic_at_a_step_boundary_leaves_the_resize_resumable() {
    let _serial = serial();
    quiet_injected_panics();
    const KEYS: usize = 256;
    let map = filled_map(KEYS);

    assert!(map.begin_expand(), "incremental expansion must start");
    // Take the first real step unarmed so the panic lands mid-resize, not
    // at the very first transition.
    let step = map.advance_resize();
    assert_ne!(step, ResizeStep::Idle);

    {
        let _arm = rp_fault::ArmGuard::new("hash.resize.step=panic*1", 7);
        let unwound = catch_unwind(AssertUnwindSafe(|| map.advance_resize()));
        assert!(unwound.is_err(), "the armed failpoint must panic");
        assert_eq!(rp_fault::injected("hash.resize.step"), 1);
    }

    // The panic landed between steps: readers still see every key and the
    // state machine resumes from where it stopped.
    assert!(map.resize_in_progress());
    assert_all_readable(&map, KEYS);

    let mut steps = 0;
    while map.advance_resize() != ResizeStep::Finished {
        steps += 1;
        assert!(steps < 10_000, "resize failed to converge after the panic");
    }
    assert!(!map.resize_in_progress());
    map.check_invariants()
        .expect("table invariants must hold after a mid-resize panic");
    assert_all_readable(&map, KEYS);

    // Writers are unaffected too.
    assert!(map.insert(KEYS + 1, (KEYS + 1) * 10));
    assert_eq!(map.get_cloned(&(KEYS + 1)), Some((KEYS + 1) * 10));
}

#[test]
fn dropping_a_table_mid_resize_after_a_panic_is_clean() {
    let _serial = serial();
    quiet_injected_panics();
    let map = filled_map(64);
    assert!(map.begin_expand());
    let _ = map.advance_resize();
    {
        let _arm = rp_fault::ArmGuard::new("hash.resize.step=panic*1", 11);
        let unwound = catch_unwind(AssertUnwindSafe(|| map.advance_resize()));
        assert!(unwound.is_err());
    }
    // Drop with the resize still mid-flight: the Drop-completion path must
    // splice the remaining chains without double-freeing or leaking (this
    // test is also exercised under the workspace sanitizer jobs).
    drop(map);
}

#[test]
fn panic_while_holding_the_writer_lock_does_not_wedge_later_writers() {
    let _serial = serial();
    quiet_injected_panics();
    const KEYS: usize = 128;
    let map = filled_map(KEYS);

    {
        let _arm = rp_fault::ArmGuard::new("hash.resize.begin=panic*1", 3);
        // `begin_expand` panics *inside* the writer-lock critical section,
        // before any table mutation.
        let unwound = catch_unwind(AssertUnwindSafe(|| map.begin_expand()));
        assert!(unwound.is_err(), "the armed failpoint must panic");
        assert_eq!(rp_fault::injected("hash.resize.begin"), 1);
    }

    // Documented semantics: the writer lock **recovers**. The workspace's
    // `parking_lot` shim strips std poisoning (`into_inner`), so the next
    // writer acquires the lock normally instead of deadlocking or
    // propagating a poison error — safe here because the panic fired
    // before any mutation, and every locked section in `resize.rs` keeps
    // the table structurally consistent at unwind boundaries.
    assert!(
        map.insert(KEYS + 1, (KEYS + 1) * 10),
        "a writer after the lock-holding panic must make progress"
    );
    assert!(
        !map.resize_in_progress(),
        "the aborted begin published nothing"
    );
    map.expand();
    map.check_invariants()
        .expect("table invariants must hold after a poisoned-lock recovery");
    assert_all_readable(&map, KEYS);
    assert_eq!(map.get_cloned(&(KEYS + 1)), Some((KEYS + 1) * 10));
}
