//! The QSBR read path: barrier-free lookups for threads that announce
//! quiescent states.
//!
//! The EBR guard path ([`RpHashMap::pin`](crate::RpHashMap::pin) /
//! [`rp_rcu::pin`]) costs two thread-private stores and two full fences per
//! lookup section. The QSBR path costs **nothing at all** on the lookup
//! itself — no store, no fence, no atomic RMW — which is the read-side cost
//! the paper assumes for its relativistic lookups. The price moves
//! elsewhere: the thread must register a [`QsbrReadHandle`] and periodically
//! announce a *quiescent state* (a point where it holds no references into
//! any relativistic structure), or declare itself offline while blocked.
//!
//! This is the textbook deployment for event-loop workers: register at
//! startup, serve lookups all batch long, announce one quiescent state per
//! event batch, go offline while parked in `epoll_wait`.
//!
//! # Why the API is `&mut`-shaped
//!
//! A reference returned by a QSBR lookup is only valid until the owning
//! thread's *next* quiescent announcement — after that, writers may free
//! the node. The handle encodes this in the borrow checker:
//! lookups borrow the handle **shared** (`&QsbrReadHandle` is the
//! [`ReadProtect`] witness and returned references hold that borrow), while
//! [`QsbrReadHandle::quiescent_state`], [`QsbrReadHandle::offline`] and
//! [`QsbrReadHandle::online`] take `&mut self`. Holding a looked-up
//! reference across a quiescent announcement therefore fails to compile:
//!
//! ```compile_fail,E0502
//! use rp_hash::{QsbrReadHandle, RpHashMap};
//!
//! let map: RpHashMap<u64, u64> = RpHashMap::new();
//! map.insert(1, 10);
//! let mut handle = QsbrReadHandle::register();
//! let v = map.get(&1, &handle);
//! handle.quiescent_state(); // ERROR: `handle` is still borrowed by `v`
//! assert_eq!(v, Some(&10));
//! ```
//!
//! Drop (or clone out of) every reference first, then announce:
//!
//! ```
//! use rp_hash::{QsbrReadHandle, RpHashMap};
//!
//! let map: RpHashMap<u64, u64> = RpHashMap::new();
//! map.insert(1, 10);
//! let mut handle = QsbrReadHandle::register();
//! let copied = map.get(&1, &handle).copied();
//! handle.quiescent_state(); // fine: no borrow outstanding
//! assert_eq!(copied, Some(10));
//! ```

use rp_rcu::qsbr::{QsbrDomain, QsbrHandle};
use rp_rcu::RcuGuard;

/// Witness that the calling thread is inside a read-side protection scope
/// covering a map's nodes: either an EBR guard is held, or the thread is an
/// online QSBR reader that will not announce a quiescent state while
/// references obtained under this witness are alive.
///
/// Lookup methods ([`crate::RpHashMap::get`] and friends) are generic over
/// this trait, so one lookup core serves both flavors; the returned
/// references borrow the witness, which is what makes the protection
/// contract hold structurally.
///
/// # Safety
///
/// Implementors must guarantee that, for as long as a shared borrow of the
/// witness exists, no node of a global-domain relativistic structure that
/// was reachable at any point during the borrow can be freed. `RcuGuard`
/// guarantees it by keeping the EBR grace period open; `QsbrReadHandle`
/// guarantees it by being online and requiring `&mut self` (i.e. no
/// outstanding borrows) to announce quiescence or go offline.
pub unsafe trait ReadProtect {
    /// Debug-checks that the witness is actually protecting right now
    /// (e.g. the QSBR handle is online). Called by lookups in debug builds.
    fn assert_protecting(&self) {}
}

// SAFETY: an `RcuGuard` holds the global EBR domain's grace period open for
// its whole lifetime; nodes unlinked before or during the guard cannot be
// freed until it drops.
unsafe impl ReadProtect for RcuGuard<'_> {}

/// A thread's registration with the global QSBR domain, packaged for use as
/// a lookup witness (see the [module docs](self)).
///
/// The handle is `!Send` — quiescent bookkeeping belongs to the thread that
/// registered — and deregisters on drop. While the handle is *online*
/// (the initial state), writers waiting for readers will wait for this
/// thread's next [`QsbrReadHandle::quiescent_state`] announcement; while
/// *offline*, the thread promises not to perform QSBR lookups and writers
/// skip it.
pub struct QsbrReadHandle {
    inner: QsbrHandle,
}

impl QsbrReadHandle {
    /// Registers the calling thread with the global QSBR domain. The handle
    /// starts online and quiescent.
    pub fn register() -> QsbrReadHandle {
        QsbrReadHandle {
            inner: QsbrDomain::global().register(),
        }
    }

    /// Announces a quiescent state: at this instant the thread holds no
    /// references into any relativistic structure.
    ///
    /// Taking `&mut self` is deliberate: any reference returned by a lookup
    /// under this handle still borrows it shared, so the compiler rejects
    /// announcements made while such a reference is alive (see the
    /// [module docs](self) for the `compile_fail` demonstration).
    pub fn quiescent_state(&mut self) {
        self.inner.quiescent_state();
    }

    /// Marks the thread offline: it promises not to perform QSBR lookups
    /// until [`QsbrReadHandle::online`], and writers stop waiting for it.
    /// Use this around blocking calls (`epoll_wait`, channel receives).
    pub fn offline(&mut self) {
        self.inner.offline();
    }

    /// Marks the thread online again (implies a quiescent state).
    pub fn online(&mut self) {
        self.inner.online();
    }

    /// Returns `true` if the thread is currently online.
    pub fn is_online(&self) -> bool {
        self.inner.is_online()
    }

    /// Runs `f` with the thread marked offline, restoring the online state
    /// afterwards — for blocking sections in the middle of a read loop.
    pub fn offline_scope<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.offline();
        let r = f();
        self.online();
        r
    }

    /// The global QSBR domain this handle is registered with.
    pub fn domain(&self) -> &std::sync::Arc<QsbrDomain> {
        self.inner.domain()
    }
}

// SAFETY: while a shared borrow of an *online* handle exists, the owning
// thread cannot call `quiescent_state`/`offline` (they need `&mut self`),
// so the thread's QSBR counter stays put and no grace period of the global
// QSBR domain can complete; writers funnel frees through
// `rp_rcu::GraceSync`, which waits on that domain whenever it has
// registered readers. Using an offline handle for lookups is a caller bug
// caught by `assert_protecting` in debug builds.
unsafe impl ReadProtect for QsbrReadHandle {
    fn assert_protecting(&self) {
        debug_assert!(
            self.is_online(),
            "QSBR lookup attempted while the handle is offline"
        );
    }
}

impl std::fmt::Debug for QsbrReadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QsbrReadHandle")
            .field("online", &self.is_online())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnvBuildHasher, RpHashMap};

    #[test]
    fn handle_registers_with_the_global_domain() {
        let before = QsbrDomain::global().registered_readers();
        let handle = QsbrReadHandle::register();
        assert!(handle.is_online());
        assert!(QsbrDomain::global().registered_readers() > before);
        drop(handle);
    }

    #[test]
    fn qsbr_lookup_round_trip() {
        let map: RpHashMap<u64, u64, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(8, FnvBuildHasher);
        for i in 0..64 {
            map.insert(i, i * 3);
        }
        let mut handle = QsbrReadHandle::register();
        for i in 0..64 {
            assert_eq!(map.get(&i, &handle), Some(&(i * 3)));
            if i % 16 == 0 {
                handle.quiescent_state();
            }
        }
        assert_eq!(map.get(&1000, &handle), None);
    }

    #[test]
    fn offline_scope_restores_online() {
        let mut handle = QsbrReadHandle::register();
        let x = handle.offline_scope(|| 41 + 1);
        assert_eq!(x, 42);
        assert!(handle.is_online());
    }
}
