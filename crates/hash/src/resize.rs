//! The paper's resize algorithms: zip (shrink) and unzip (expand), split
//! into an **incremental state machine**.
//!
//! Both algorithms preserve the reader-visible invariant at every instant:
//! *every bucket reachable from the published table contains every element
//! that hashes to it* (it may temporarily contain extra elements — an
//! "imprecise" bucket — which lookups filter out by key comparison).
//!
//! # The state machine
//!
//! Historically a resize ran to completion inside the triggering writer,
//! which therefore paid every grace-period wait inline. The resize is now a
//! first-class *operation object* ([`UnzipOp`] / [`ZipOp`], stored inside
//! the map) that any thread can push forward one bounded [`ResizeStep`] at a
//! time:
//!
//! ```text
//! expand:  begin(+publish new table) → grace → [splice round → grace]* → finish
//! shrink:  begin(+publish new table) → grace → finish
//! ```
//!
//! * **begin** allocates and links the new bucket array and publishes it in
//!   one writer-lock critical section (linking and publishing cannot be
//!   separated: the links are computed against the chains as they are at
//!   that instant).
//! * **grace** steps wait for readers with the writer lock *released*, so
//!   concurrent writers keep updating the map while the maintenance thread
//!   absorbs the wait.
//! * **splice rounds** perform at most one cross-link splice per in-progress
//!   bucket pair under the writer lock (bounded work, no waiting), then
//!   require a grace period before the next round.
//! * **finish** tears down the operation bookkeeping.
//!
//! The inline entry points ([`RpHashMap::expand`], [`RpHashMap::shrink`],
//! [`RpHashMap::resize_to`] and the load-factor triggers) drive the same
//! machine to completion synchronously, so their semantics — and their
//! grace-period accounting — are unchanged.
//!
//! # Writer mutations between steps
//!
//! Because the writer lock is released between steps, insertions and
//! removals interleave with an in-progress unzip. Mid-unzip a node can be
//! reachable from *both* buckets of its pair (the chains have not been
//! split apart yet), so unlinking it from its home chain alone would leave
//! the sibling chain pointing at retired memory. Writers therefore call
//! [`RpHashMap::fixup_unzip_links_locked`] after every unlink, and the
//! splice rounds re-derive splice points from the published bucket heads
//! each round (no stored cursors that a removal could invalidate) with a
//! reachability check that refuses any splice that would orphan a run.

use std::hash::{BuildHasher, Hash};

use rp_rcu::GraceSync;

use crate::map::RpHashMap;
use crate::node::Node;
use crate::table::BucketArray;

/// Sentinel for a fully-unzipped bucket pair in [`UnzipOp::turn`].
const PAIR_DONE: usize = usize::MAX;

/// Telemetry: a resize began (`expand = true` for unzip, `false` for zip).
fn observe_resize_begin(expand: bool) {
    let obs = rp_obs::global();
    obs.resize.begun_total.inc();
    obs.trace
        .record(rp_obs::TraceKind::ResizeBegin, u64::from(expand));
}

/// Telemetry: a resize absorbed one grace-period wait (timed when enabled).
fn observe_resize_grace(timer: Option<std::time::Instant>) {
    if let Some(ns) = rp_obs::elapsed_ns(timer) {
        let obs = rp_obs::global();
        obs.resize.grace_wait_ns.record(ns);
        obs.trace.record(rp_obs::TraceKind::ResizeGrace, ns);
    }
}

/// Telemetry: one bounded restructuring step ran; counts completions even
/// with timing disabled.
fn observe_resize_step(timer: Option<std::time::Instant>, step: ResizeStep) {
    let obs = rp_obs::global();
    if step != ResizeStep::Idle {
        if let Some(ns) = rp_obs::elapsed_ns(timer) {
            obs.resize.step_ns.record(ns);
        }
    }
    if step == ResizeStep::Finished {
        obs.resize.finished_total.inc();
        obs.trace.record(rp_obs::TraceKind::ResizeFinish, 0);
    }
}

/// The outcome of one [`RpHashMap::advance_resize`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeStep {
    /// No resize is in progress; nothing was done.
    Idle,
    /// Waited for one grace period (with the writer lock released).
    Grace,
    /// Performed one splice round: at most one cross-link splice per
    /// in-progress bucket pair, under the writer lock, without waiting.
    Splice,
    /// The resize completed and its bookkeeping was torn down.
    Finished,
}

/// An in-progress incremental resize (guarded by the map's writer lock).
pub(crate) enum ResizeOp<K, V> {
    Unzip(UnzipOp<K, V>),
    Zip(ZipOp<K, V>),
}

impl<K, V> ResizeOp<K, V> {
    /// If the op is waiting on a grace period, its `(op id, round)` key.
    fn grace_key(&self) -> Option<(u64, u64)> {
        match self {
            ResizeOp::Unzip(u) if u.grace_pending => Some((u.id, u.round)),
            ResizeOp::Zip(z) if z.grace_pending => Some((z.id, 0)),
            _ => None,
        }
    }

    fn id(&self) -> u64 {
        match self {
            ResizeOp::Unzip(u) => u.id,
            ResizeOp::Zip(z) => z.id,
        }
    }

    /// Marks the pending grace period as elapsed and releases the superseded
    /// bucket array (no reader can hold it any more).
    fn grace_done(&mut self) {
        match self {
            ResizeOp::Unzip(u) => {
                u.grace_pending = false;
                drop(u.old_table.take());
            }
            ResizeOp::Zip(z) => {
                z.grace_pending = false;
                drop(z.old_table.take());
            }
        }
    }
}

/// An in-progress expansion (unzip).
pub(crate) struct UnzipOp<K, V> {
    /// Unique id (per map) used by grace-wait bookkeeping.
    id: u64,
    /// Bucket count before the expansion; pair `o` is new buckets `o` and
    /// `o + old_buckets`.
    pub(crate) old_buckets: usize,
    /// `new_buckets - 1`.
    new_mask: usize,
    /// The superseded bucket array, freed once the publish grace period has
    /// elapsed (its chain nodes live on, shared with the new table).
    old_table: Option<Box<BucketArray<K, V>>>,
    /// Per old bucket: the new-bucket index whose chain receives the next
    /// splice, or [`PAIR_DONE`].
    turn: Vec<usize>,
    /// Number of pairs not yet fully unzipped.
    remaining: usize,
    /// A grace period must elapse before the next structural step.
    grace_pending: bool,
    /// Bumped each time `grace_pending` is set, so concurrent advancers can
    /// tell exactly which wait they resolved.
    round: u64,
}

/// An in-progress shrink (zip): after `begin` the only outstanding work is
/// one grace period and then freeing the superseded array.
pub(crate) struct ZipOp<K, V> {
    id: u64,
    old_table: Option<Box<BucketArray<K, V>>>,
    grace_pending: bool,
}

/// Where a splice cuts the chain: at the bucket head slot or after a node.
enum CutPoint<K, V> {
    Head(usize),
    After(*mut Node<K, V>),
}

/// A candidate splice: cut `cut` so the chain skips the foreign run
/// `[foreign_head ..= run tail]` and continues at `after_foreign`.
struct CrossLink<K, V> {
    cut: CutPoint<K, V>,
    foreign_head: *mut Node<K, V>,
    foreign_bucket: usize,
    after_foreign: *mut Node<K, V>,
}

impl<K, V, S> RpHashMap<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher,
{
    /// Doubles the number of buckets (one unzip expansion step), driving the
    /// resize to completion before returning.
    ///
    /// Lookups proceed at full speed throughout; the call itself waits for
    /// one grace period to publish the new table plus one per unzip round.
    /// Any background resize already in progress is completed first.
    pub fn expand(&self) {
        let _w = self.writer_lock();
        // SAFETY: writer lock held for the whole call.
        unsafe {
            self.finish_resize_locked();
            self.expand_locked();
        }
    }

    /// Halves the number of buckets (one zip shrink step), driving the
    /// resize to completion before returning.
    ///
    /// Lookups proceed at full speed throughout; the call waits for a single
    /// grace period regardless of table size. Any background resize already
    /// in progress is completed first.
    pub fn shrink(&self) {
        let _w = self.writer_lock();
        // SAFETY: writer lock held for the whole call.
        unsafe {
            self.finish_resize_locked();
            self.shrink_locked();
        }
    }

    /// Resizes the table to `target_buckets` (rounded up to a power of two
    /// and clamped to the policy bounds), doubling or halving repeatedly.
    pub fn resize_to(&self, target_buckets: usize) {
        let target = self.policy().clamp_buckets(target_buckets.max(1));
        let _w = self.writer_lock();
        // SAFETY: writer lock held for the whole loop.
        unsafe {
            self.finish_resize_locked();
            loop {
                let current = self.table_locked().len();
                if current < target {
                    self.expand_locked();
                } else if current > target {
                    self.shrink_locked();
                } else {
                    break;
                }
            }
        }
    }

    /// Catches up on automatic-resize work the writer paths postponed,
    /// driving the table back inside its policy's load-factor bounds.
    /// Returns `true` if any resize work was performed.
    ///
    /// Writers skip automatic resizing when the writing thread cannot wait
    /// for readers — it holds an EBR guard, or it is an online QSBR reader
    /// (an event-loop worker serving lookups). If *every* writer is such a
    /// thread, nothing would ever resize; callers with a natural quiescent
    /// point (the event-loop worker between batches, with its handle
    /// offline) invoke this instead. The same self-deadlock conditions are
    /// re-checked here, so a mistimed call is a no-op rather than a panic.
    pub fn maintain(&self) -> bool {
        if rp_rcu::global_read_nesting() > 0 || rp_rcu::qsbr::global_qsbr_online() {
            // Still unable to wait for readers; stay postponed.
            return false;
        }
        // Lock-free fast path: callers run this per event batch, so the
        // nothing-to-do case must cost loads, not a writer-lock round trip.
        if !self.resize_in_progress() {
            let len = self.len();
            let buckets = self.num_buckets();
            if !self.policy().should_expand(len, buckets)
                && !self.policy().should_shrink(len, buckets)
            {
                return false;
            }
        }
        let mut worked = false;
        let _w = self.writer_lock();
        // SAFETY: writer lock held for the whole loop.
        unsafe {
            if self.resize_op_locked().is_some() {
                self.finish_resize_locked();
                worked = true;
            }
            loop {
                let len = self.len();
                let buckets = self.table_locked().len();
                if self.policy().should_expand(len, buckets) {
                    self.expand_locked();
                } else if self.policy().should_shrink(len, buckets) {
                    self.shrink_locked();
                } else {
                    break;
                }
                if self.table_locked().len() == buckets {
                    // Policy bounds stopped the resize; no progress is
                    // possible (defensive — `should_*` respect the bounds).
                    break;
                }
                worked = true;
            }
        }
        worked
    }

    /// Returns `true` if an incremental resize (begun with
    /// [`RpHashMap::begin_expand`] or [`RpHashMap::begin_shrink`]) has not
    /// yet reached its [`ResizeStep::Finished`] step.
    ///
    /// This is a lock-free snapshot; it can be stale by the time the caller
    /// acts on it.
    pub fn resize_in_progress(&self) -> bool {
        self.resize_active()
    }

    /// Starts an incremental expansion: allocates the doubled bucket array,
    /// links every new bucket into the corresponding old chain, and
    /// publishes it — all in one bounded writer-lock critical section, with
    /// **no grace-period wait**.
    ///
    /// Returns `false` (and does nothing) if a resize is already in progress
    /// or the policy's `max_buckets` bound is reached. On success the caller
    /// (or any other thread) must repeatedly call
    /// [`RpHashMap::advance_resize`] until it reports
    /// [`ResizeStep::Finished`].
    pub fn begin_expand(&self) -> bool {
        let _w = self.writer_lock();
        // SAFETY: writer lock held.
        unsafe { self.begin_expand_locked() }
    }

    /// Starts an incremental shrink: links the collapsing chains together
    /// and publishes the halved bucket array in one bounded writer-lock
    /// critical section, with **no grace-period wait**.
    ///
    /// Returns `false` (and does nothing) if a resize is already in progress
    /// or the policy's `min_buckets` bound is reached. Drive it with
    /// [`RpHashMap::advance_resize`] like an expansion.
    pub fn begin_shrink(&self) -> bool {
        let _w = self.writer_lock();
        // SAFETY: writer lock held.
        unsafe { self.begin_shrink_locked() }
    }

    /// Advances the in-progress resize by one bounded step and reports what
    /// was done.
    ///
    /// *Grace steps* release the writer lock for the duration of the wait,
    /// so concurrent writers keep making progress — this is what lets a
    /// maintenance thread absorb every `synchronize` on behalf of the
    /// writers. *Splice* and *finish* steps take the writer lock for a
    /// bounded amount of restructuring work.
    ///
    /// Safe to call from any thread, including concurrently with writers
    /// and with other advancers; the only requirement is the usual one for
    /// grace periods — the calling thread must not hold an [`rp_rcu`] read
    /// guard.
    pub fn advance_resize(&self) -> ResizeStep {
        // Chaos hook, *before* the writer lock: an injected delay widens
        // the window between state-machine steps, and an injected panic
        // lands at a step boundary — the table is reader-consistent and no
        // lock is held, so the resize is simply left mid-flight for the
        // next advancer (or Drop completion) to finish.
        let _ = rp_fault::point("hash.resize.step");
        let guard = self.writer_lock();
        // SAFETY: writer lock held.
        let pending = match unsafe { self.resize_op_locked() } {
            None => return ResizeStep::Idle,
            Some(op) => op.grace_key(),
        };
        match pending {
            Some((id, round)) => {
                // Wait for readers with the writer lock released: this is
                // the step a background maintainer spends nearly all its
                // time in, and writers must not be blocked behind it. The
                // wait goes through `GraceSync`, covering QSBR readers of
                // this map's chains as well as EBR guards.
                drop(guard);
                let timer = rp_obs::timer();
                GraceSync::global().synchronize();
                observe_resize_grace(timer);
                let _w = self.writer_lock();
                // SAFETY: writer lock held.
                unsafe { self.resolve_grace_locked(id, round) };
                ResizeStep::Grace
            }
            None => {
                let timer = rp_obs::timer();
                // SAFETY: writer lock still held (guard is alive).
                let step = unsafe { self.resize_work_step_locked() };
                observe_resize_step(timer, step);
                step
            }
        }
    }

    /// Expansion entry point for writer-side triggers; the writer lock must
    /// be held and no resize may be in progress. Drives the resize to
    /// completion inline (grace periods are waited for under the lock,
    /// matching the historical inline behavior).
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    pub(crate) unsafe fn expand_locked(&self) {
        // SAFETY: writer lock held per the caller contract.
        unsafe {
            if self.begin_expand_locked() {
                self.finish_resize_locked();
            }
        }
    }

    /// Shrink counterpart of [`RpHashMap::expand_locked`].
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    pub(crate) unsafe fn shrink_locked(&self) {
        // SAFETY: writer lock held per the caller contract.
        unsafe {
            if self.begin_shrink_locked() {
                self.finish_resize_locked();
            }
        }
    }

    /// Drives any in-progress resize to completion, waiting for grace
    /// periods while holding the writer lock.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock (and, as for any grace-period
    /// wait, must not be inside a read-side critical section).
    pub(crate) unsafe fn finish_resize_locked(&self) {
        loop {
            // SAFETY: writer lock held per the caller contract.
            let pending = match unsafe { self.resize_op_locked() } {
                None => return,
                Some(op) => op.grace_key(),
            };
            if let Some((id, round)) = pending {
                let timer = rp_obs::timer();
                GraceSync::global().synchronize();
                observe_resize_grace(timer);
                // SAFETY: writer lock held.
                unsafe { self.resolve_grace_locked(id, round) };
                continue;
            }
            let timer = rp_obs::timer();
            // SAFETY: writer lock held.
            let step = unsafe { self.resize_work_step_locked() };
            observe_resize_step(timer, step);
            if step == ResizeStep::Finished {
                return;
            }
        }
    }

    /// `begin` for expansion. Requires the writer lock; returns `false` if a
    /// resize is in progress or the table cannot grow.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    unsafe fn begin_expand_locked(&self) -> bool {
        // SAFETY (this fn body): writer lock held per the caller contract,
        // so the op slot, the published table and all reachable nodes are
        // stable (nodes are only retired under this lock and freed a grace
        // period later).
        unsafe {
            if self.resize_op_locked().is_some() {
                return false;
            }
            // Chaos hook, inside the writer-lock critical section but
            // before any mutation: an injected panic here unwinds while
            // holding the writer lock, exercising the poisoned-lock
            // recovery semantics without corrupting the table.
            let _ = rp_fault::point("hash.resize.begin");
            let old_table = self.table_locked();
            let old_buckets = old_table.len();
            let new_buckets = match old_buckets.checked_mul(2) {
                Some(n) if n <= self.policy().max_buckets => n,
                _ => return false,
            };

            // Phase 1: allocate the new table and point every new bucket at
            // the first node of the corresponding old chain that belongs to
            // it. Old bucket `o` splits into new buckets `o` and
            // `o + old_buckets`; its chain contains both new buckets'
            // elements, interleaved.
            let new_table: Box<BucketArray<K, V>> = BucketArray::new(new_buckets);
            let new_mask = new_buckets - 1;
            for new_index in 0..new_buckets {
                let old_index = new_index & old_table.mask;
                let mut candidate = old_table.head_acquire(old_index);
                while !candidate.is_null() {
                    let node = &*candidate;
                    if (node.hash as usize) & new_mask == new_index {
                        break;
                    }
                    candidate = node.next_acquire();
                }
                new_table.publish_head(new_index, candidate);
            }

            // A pair whose chain feeds both new buckets is interleaved and
            // needs unzipping; the first splice belongs to the chain of the
            // old head's bucket (the zipper's first run).
            let mut turn = vec![PAIR_DONE; old_buckets];
            let mut remaining = 0;
            for (old_index, slot) in turn.iter_mut().enumerate() {
                let head = old_table.head_acquire(old_index);
                if head.is_null()
                    || new_table.head_acquire(old_index).is_null()
                    || new_table.head_acquire(old_index + old_buckets).is_null()
                {
                    continue;
                }
                *slot = ((*head).hash as usize) & new_mask;
                remaining += 1;
            }

            // Phase 2: publish the new table. After one grace period every
            // reader starts from the new (imprecise) buckets and the old
            // array can be freed; that wait is the op's first pending step.
            let old_ptr = self.publish_table(new_table);
            let op = UnzipOp {
                id: self.next_resize_id(),
                old_buckets,
                new_mask,
                // SAFETY: `old_ptr` was the previously published table,
                // allocated by `BucketArray::new`; it is owned by the op and
                // freed only after the publish grace period.
                old_table: Some(Box::from_raw(old_ptr)),
                turn,
                remaining,
                grace_pending: true,
                round: 0,
            };
            *self.resize_op_locked() = Some(ResizeOp::Unzip(op));
            self.set_resize_active(true);
            observe_resize_begin(true);
            true
        }
    }

    /// `begin` for shrinking. Requires the writer lock; returns `false` if a
    /// resize is in progress or the table cannot shrink.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    unsafe fn begin_shrink_locked(&self) -> bool {
        // SAFETY (this fn body): writer lock held per the caller contract;
        // see `begin_expand_locked`.
        unsafe {
            if self.resize_op_locked().is_some() {
                return false;
            }
            let old_table = self.table_locked();
            let old_buckets = old_table.len();
            if old_buckets <= self.policy().min_buckets.max(1) || old_buckets == 1 {
                return false;
            }
            let new_buckets = old_buckets / 2;

            // Phase 1: initialise the new buckets. New bucket `b` collects
            // old buckets `b` and `b + new_buckets`; point it at whichever
            // old chain comes first (preferring old bucket `b`).
            let new_table: Box<BucketArray<K, V>> = BucketArray::new(new_buckets);
            for new_index in 0..new_buckets {
                let low = old_table.head_acquire(new_index);
                let high = old_table.head_acquire(new_index + new_buckets);
                let head = if low.is_null() { high } else { low };
                new_table.publish_head(new_index, head);
            }

            // Phase 2: link the old chains. Appending the "high" chain to
            // the tail of the "low" chain makes the low old bucket imprecise
            // (its readers see extra elements — harmless) while readers of
            // the high old bucket are untouched.
            for new_index in 0..new_buckets {
                let low = old_table.head_acquire(new_index);
                let high = old_table.head_acquire(new_index + new_buckets);
                if low.is_null() || high.is_null() {
                    continue;
                }
                let mut tail = low;
                loop {
                    let next = (*tail).next_acquire();
                    if next.is_null() {
                        break;
                    }
                    tail = next;
                }
                (*tail)
                    .next
                    .store(high, std::sync::atomic::Ordering::Release);
            }

            // Phase 3: publish the new table; the grace period that lets the
            // old array be freed is the op's one pending step.
            let old_ptr = self.publish_table(new_table);
            let op = ZipOp {
                id: self.next_resize_id(),
                // SAFETY: as in `begin_expand_locked`.
                old_table: Some(Box::from_raw(old_ptr)),
                grace_pending: true,
            };
            *self.resize_op_locked() = Some(ResizeOp::Zip(op));
            self.set_resize_active(true);
            observe_resize_begin(false);
            true
        }
    }

    /// Marks the grace period identified by `(id, round)` as elapsed, if the
    /// op still matches (a concurrent advancer may have resolved it, or the
    /// op may have finished and been replaced).
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    unsafe fn resolve_grace_locked(&self, id: u64, round: u64) {
        // SAFETY: writer lock held per the caller contract.
        if let Some(op) = unsafe { self.resize_op_locked() } {
            if op.id() == id && op.grace_key() == Some((id, round)) {
                op.grace_done();
                self.stats.bump(&self.stats.resize_grace_periods);
            }
        }
    }

    /// Performs one non-grace step: a splice round, or finish. Must only be
    /// called when no grace period is pending.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    unsafe fn resize_work_step_locked(&self) -> ResizeStep {
        // SAFETY (this fn body): writer lock held per the caller contract.
        unsafe {
            let Some(op) = self.resize_op_locked() else {
                return ResizeStep::Idle;
            };
            debug_assert!(op.grace_key().is_none(), "grace period still pending");
            match op {
                ResizeOp::Zip(_) => {
                    // The publish grace period has elapsed and the old array
                    // has been freed; nothing else to do.
                    *self.resize_op_locked() = None;
                    self.set_resize_active(false);
                    self.stats.bump(&self.stats.shrinks);
                    ResizeStep::Finished
                }
                ResizeOp::Unzip(u) => {
                    if u.remaining > 0 {
                        let table = self.table_locked();
                        let splices = Self::splice_round(table, u, &self.stats);
                        if splices > 0 {
                            self.stats.bump(&self.stats.unzip_rounds);
                            u.grace_pending = true;
                            u.round += 1;
                            return ResizeStep::Splice;
                        }
                    }
                    debug_assert_eq!(u.remaining, 0, "no splice found for unfinished pair");
                    *self.resize_op_locked() = None;
                    self.set_resize_active(false);
                    self.stats.bump(&self.stats.expands);
                    ResizeStep::Finished
                }
            }
        }
    }

    /// Verifies the reader-visible invariant: every entry is reachable from
    /// the bucket its hash maps to in the current table.
    ///
    /// Intended for tests and debugging; takes the writer lock — and drives
    /// any in-progress incremental resize to completion — so it sees a
    /// quiescent, precise table.
    ///
    /// # Panics
    ///
    /// Because completing an in-progress resize waits for grace periods,
    /// calling this while the current thread holds an [`rp_rcu`] read guard
    /// *and* a resize is in flight panics (via
    /// [`rp_rcu::RcuDomain::synchronize`]'s self-deadlock check); drop the
    /// guard first.
    pub fn check_invariants(&self) -> Result<(), String> {
        let _w = self.writer_lock();
        // SAFETY: writer lock held.
        unsafe { self.finish_resize_locked() };
        // SAFETY: writer lock held.
        let table = unsafe { self.table_locked() };
        let mut reachable = 0_usize;
        for bucket in 0..table.len() {
            let mut cur = table.head_acquire(bucket);
            let mut steps = 0_usize;
            while !cur.is_null() {
                // SAFETY: reachable node under the writer lock.
                let node = unsafe { &*cur };
                let home = table.bucket_of(node.hash);
                if home == bucket {
                    reachable += 1;
                } else {
                    return Err(format!(
                        "bucket {bucket} contains a node whose home bucket is {home} \
                         while no resize is in progress"
                    ));
                }
                steps += 1;
                if steps > self.len() + 1 {
                    return Err(format!("cycle detected in bucket {bucket}"));
                }
                cur = node.next_acquire();
            }
        }
        if reachable != self.len() {
            return Err(format!(
                "{} entries reachable but len() reports {}",
                reachable,
                self.len()
            ));
        }
        Ok(())
    }
}

/// Pointer-level chain surgery. These are deliberately free of the map's
/// `Hash`/`BuildHasher` bounds (they operate on cached hashes only) so that
/// `Drop` — implemented for every `RpHashMap` — can complete an in-progress
/// unzip before freeing nodes.
impl<K, V, S> RpHashMap<K, V, S> {
    /// One splice round: at most one cross-link splice per in-progress
    /// bucket pair. Returns the number of splices performed and updates the
    /// op's per-pair turn/remaining bookkeeping.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock (so all reachable nodes are
    /// stable), and a grace period must have elapsed since the previous
    /// round's splices (so no reader still traverses pre-splice links).
    pub(crate) unsafe fn splice_round(
        table: &BucketArray<K, V>,
        op: &mut UnzipOp<K, V>,
        stats: &crate::stats::AtomicMapStats,
    ) -> usize {
        let mut splices = 0;
        for o in 0..op.old_buckets {
            if op.turn[o] == PAIR_DONE {
                continue;
            }
            let first = op.turn[o];
            let second = o + op.old_buckets + o - first; // the pair's other bucket
            let mut found_any = false;
            let mut spliced = false;
            for c in [first, second] {
                // SAFETY: forwarded caller contract (writer lock held).
                let Some(cross) = (unsafe { Self::find_cross_link(table, c, op.new_mask) }) else {
                    continue;
                };
                found_any = true;
                // SAFETY: as above.
                if !unsafe { Self::splice_is_safe(table, &cross) } {
                    // Cutting here would orphan the foreign run (its home
                    // chain reaches it only through the link we would cut);
                    // the other chain's cross-link is the zipper-earlier one.
                    continue;
                }
                match cross.cut {
                    CutPoint::Head(bucket) => table.publish_head(bucket, cross.after_foreign),
                    CutPoint::After(run_end) => {
                        // SAFETY: `run_end` is reachable under the writer
                        // lock (found by `find_cross_link` above).
                        unsafe { &*run_end }
                            .next
                            .store(cross.after_foreign, std::sync::atomic::Ordering::Release);
                    }
                }
                stats.bump(&stats.unzip_splices);
                // The next splice for this pair belongs to the chain the
                // foreign run we just removed is headed for.
                op.turn[o] = cross.foreign_bucket;
                splices += 1;
                spliced = true;
                break;
            }
            if !found_any {
                op.turn[o] = PAIR_DONE;
                op.remaining -= 1;
            } else {
                // At least one of the two chains always has a safely
                // spliceable cross-link (see `splice_is_safe`); a round that
                // finds cross-links but cannot cut any would stall the
                // resize.
                debug_assert!(spliced, "cross-links present but no safe splice");
            }
        }
        splices
    }

    /// Finds the first cross-link in the chain of new bucket `c`: the
    /// earliest maximal run of nodes that do not belong to `c`.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    unsafe fn find_cross_link(
        table: &BucketArray<K, V>,
        c: usize,
        new_mask: usize,
    ) -> Option<CrossLink<K, V>> {
        // SAFETY (this fn body): nodes reachable from the published table
        // cannot be freed while the writer lock is held (retiring happens
        // under it, and freeing additionally waits for a grace period).
        unsafe {
            let mut cut = CutPoint::Head(c);
            let mut cur = table.head_acquire(c);
            // Skip the leading run of nodes that belong to `c` (the head can
            // itself be foreign if a removal promoted a foreign node).
            while !cur.is_null() && ((*cur).hash as usize) & new_mask == c {
                cut = CutPoint::After(cur);
                cur = (*cur).next_acquire();
            }
            if cur.is_null() {
                return None;
            }
            let foreign_head = cur;
            let foreign_bucket = ((*cur).hash as usize) & new_mask;
            let mut tail = cur;
            loop {
                let next = (*tail).next_acquire();
                if next.is_null() || ((*next).hash as usize) & new_mask != foreign_bucket {
                    break;
                }
                tail = next;
            }
            Some(CrossLink {
                cut,
                foreign_head,
                foreign_bucket,
                after_foreign: (*tail).next_acquire(),
            })
        }
    }

    /// Returns `true` if cutting `cross` cannot orphan its foreign run: the
    /// run's home chain must reach it without passing through the link being
    /// cut.
    ///
    /// Head cuts are always safe (a chain traversal never passes through
    /// another bucket's head *slot*). For a node cut, walk the foreign
    /// bucket's chain: reaching `foreign_head` first proves an independent
    /// path; reaching the cut node first means the only path goes through
    /// the link we want to remove.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    unsafe fn splice_is_safe(table: &BucketArray<K, V>, cross: &CrossLink<K, V>) -> bool {
        let run_end = match cross.cut {
            CutPoint::Head(_) => return true,
            CutPoint::After(node) => node,
        };
        let mut cur = table.head_acquire(cross.foreign_bucket);
        while !cur.is_null() {
            if cur == cross.foreign_head {
                return true;
            }
            if cur == run_end {
                return false;
            }
            // SAFETY: reachable node under the writer lock (caller
            // contract).
            cur = unsafe { &*cur }.next_acquire();
        }
        debug_assert!(false, "foreign run unreachable from its home chain");
        false
    }

    /// Completes the chain surgery of an in-progress unzip without waiting
    /// for any grace period. Only sound when no readers can exist — used by
    /// `Drop`, which has `&mut self`.
    pub(crate) fn complete_resize_for_drop(
        table: &BucketArray<K, V>,
        op: &mut ResizeOp<K, V>,
        stats: &crate::stats::AtomicMapStats,
    ) {
        let ResizeOp::Unzip(u) = op else {
            return; // a zip leaves single-path chains; nothing to do
        };
        drop(u.old_table.take());
        // Each round splices at least one cross-link per unfinished pair and
        // splices strictly reduce the (finite) cross-link count, so this
        // terminates; a round that makes no progress would mean corrupted
        // chains, and freeing from them would be worse than leaking.
        while u.remaining > 0 {
            // SAFETY: exclusive access (no readers, no writers) is strictly
            // stronger than the writer-lock + grace-period contract.
            if unsafe { Self::splice_round(table, u, stats) } == 0 && u.remaining > 0 {
                debug_assert!(false, "unzip stalled during drop");
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ResizeStep;
    use crate::{FnvBuildHasher, ResizePolicy, RpHashMap};

    type Map = RpHashMap<u64, u64, FnvBuildHasher>;

    fn filled(buckets: usize, n: u64) -> Map {
        let map = RpHashMap::with_buckets_and_hasher(buckets, FnvBuildHasher);
        for i in 0..n {
            map.insert(i, i * 2);
        }
        map
    }

    fn assert_all_present(map: &Map, n: u64) {
        let guard = map.pin();
        for i in 0..n {
            assert_eq!(map.get(&i, &guard), Some(&(i * 2)), "missing key {i}");
        }
    }

    #[test]
    fn expand_preserves_all_entries() {
        let map = filled(8, 500);
        map.expand();
        assert_eq!(map.num_buckets(), 16);
        assert_all_present(&map, 500);
        map.check_invariants().unwrap();
        assert_eq!(map.stats().expands, 1);
        assert!(map.stats().unzip_splices > 0);
    }

    #[test]
    fn shrink_preserves_all_entries() {
        let map = filled(16, 500);
        map.shrink();
        assert_eq!(map.num_buckets(), 8);
        assert_all_present(&map, 500);
        map.check_invariants().unwrap();
        assert_eq!(map.stats().shrinks, 1);
    }

    #[test]
    fn expand_then_shrink_round_trips() {
        let map = filled(8, 300);
        map.expand();
        map.expand();
        assert_eq!(map.num_buckets(), 32);
        map.shrink();
        map.shrink();
        assert_eq!(map.num_buckets(), 8);
        assert_all_present(&map, 300);
        map.check_invariants().unwrap();
    }

    #[test]
    fn resize_to_reaches_target_in_one_call() {
        let map = filled(8, 200);
        map.resize_to(128);
        assert_eq!(map.num_buckets(), 128);
        assert_all_present(&map, 200);
        map.resize_to(4);
        assert_eq!(map.num_buckets(), 4);
        assert_all_present(&map, 200);
        map.check_invariants().unwrap();
        // 8 -> 128 is four doublings; 128 -> 4 is five halvings.
        let stats = map.stats();
        assert_eq!(stats.expands, 4);
        assert_eq!(stats.shrinks, 5);
    }

    #[test]
    fn resize_respects_policy_bounds() {
        let map: Map = RpHashMap::with_buckets_hasher_and_policy(
            16,
            FnvBuildHasher,
            ResizePolicy {
                min_buckets: 8,
                max_buckets: 32,
                ..ResizePolicy::default()
            },
        );
        for i in 0..100 {
            map.insert(i, i * 2);
        }
        map.resize_to(1);
        assert_eq!(map.num_buckets(), 8);
        map.resize_to(1 << 20);
        assert_eq!(map.num_buckets(), 32);
        assert_all_present(&map, 100);
    }

    #[test]
    fn expand_on_empty_and_tiny_tables() {
        let map: Map = RpHashMap::with_buckets_and_hasher(1, FnvBuildHasher);
        map.expand();
        assert_eq!(map.num_buckets(), 2);
        map.shrink();
        assert_eq!(map.num_buckets(), 1);
        // Shrinking a one-bucket table is a no-op.
        map.shrink();
        assert_eq!(map.num_buckets(), 1);
        map.insert(1, 2);
        map.expand();
        assert_eq!(map.get_cloned(&1), Some(2));
        map.check_invariants().unwrap();
    }

    #[test]
    fn single_bucket_chain_unzips_correctly() {
        // Everything starts in one bucket; expanding repeatedly must fan the
        // chain out without losing or duplicating entries.
        let map = filled(1, 64);
        for _ in 0..4 {
            map.expand();
        }
        assert_eq!(map.num_buckets(), 16);
        assert_all_present(&map, 64);
        map.check_invariants().unwrap();
    }

    #[test]
    fn updates_after_resize_use_precise_buckets() {
        let map = filled(4, 100);
        map.expand();
        // Mutations after the resize must still work against the new table.
        for i in 0..50 {
            assert!(map.remove(&i));
        }
        for i in 100..120 {
            assert!(map.insert(i, i * 2));
        }
        assert_eq!(map.len(), 70);
        let guard = map.pin();
        for i in 50..120 {
            assert_eq!(map.get(&i, &guard), Some(&(i * 2)));
        }
        map.check_invariants().unwrap();
    }

    #[test]
    fn grace_periods_accounted_per_resize() {
        let map = filled(4, 64);
        let before = map.stats().resize_grace_periods;
        map.shrink();
        let after_shrink = map.stats().resize_grace_periods;
        assert_eq!(
            after_shrink - before,
            1,
            "shrink must wait exactly one grace period"
        );
        map.expand();
        let after_expand = map.stats().resize_grace_periods;
        assert!(
            after_expand - after_shrink >= 2,
            "expand waits one grace period to publish plus one per unzip round"
        );
    }

    #[test]
    fn check_invariants_detects_length_mismatch() {
        let map = filled(4, 10);
        assert!(map.check_invariants().is_ok());
    }

    // ---- incremental state-machine tests ----

    #[test]
    fn maintain_catches_up_resizes_postponed_by_qsbr_writers() {
        // On a dedicated thread so the QSBR handle's thread-local online
        // state cannot leak into other tests.
        std::thread::spawn(|| {
            let map: Map = RpHashMap::with_buckets_hasher_and_policy(
                4,
                FnvBuildHasher,
                ResizePolicy {
                    auto_expand: true,
                    max_load_factor: 1.0,
                    ..ResizePolicy::default()
                },
            );
            let mut handle = crate::QsbrReadHandle::register();
            for i in 0..64 {
                map.insert(i, i * 2);
            }
            assert_eq!(
                map.num_buckets(),
                4,
                "auto-expansion must be postponed while the writer is QSBR-online"
            );
            assert!(
                !map.maintain(),
                "maintain is a no-op while the thread is still an online QSBR reader"
            );
            handle.offline();
            assert!(map.maintain(), "postponed expansion work exists");
            assert!(
                map.num_buckets() >= 64,
                "maintain must drive the table inside its policy bounds, got {}",
                map.num_buckets()
            );
            assert!(!map.maintain(), "second call has nothing to do");
            handle.online();
            for i in 0..64 {
                assert_eq!(map.get_qsbr(&i, &handle), Some(&(i * 2)));
            }
            handle.offline();
            drop(handle);
            map.check_invariants().unwrap();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn incremental_expand_steps_through_the_machine() {
        let map = filled(4, 128);
        assert!(!map.resize_in_progress());
        assert!(map.begin_expand());
        assert!(map.resize_in_progress());
        // The new table is published immediately; lookups work throughout.
        assert_eq!(map.num_buckets(), 8);
        assert!(!map.begin_expand(), "only one resize at a time");
        assert!(!map.begin_shrink(), "only one resize at a time");

        let mut steps = Vec::new();
        loop {
            let step = map.advance_resize();
            if step == ResizeStep::Finished {
                break;
            }
            assert_all_present(&map, 128);
            steps.push(step);
            assert!(steps.len() < 1000, "resize failed to converge: {steps:?}");
        }
        assert!(!map.resize_in_progress());
        assert_eq!(map.advance_resize(), ResizeStep::Idle);
        assert_eq!(steps[0], ResizeStep::Grace, "publish grace comes first");
        assert!(steps.contains(&ResizeStep::Splice));
        assert_all_present(&map, 128);
        map.check_invariants().unwrap();
        assert_eq!(map.stats().expands, 1);
    }

    #[test]
    fn incremental_shrink_steps_through_the_machine() {
        let map = filled(16, 64);
        assert!(map.begin_shrink());
        assert_eq!(map.num_buckets(), 8);
        assert_eq!(map.advance_resize(), ResizeStep::Grace);
        assert_eq!(map.advance_resize(), ResizeStep::Finished);
        assert_eq!(map.advance_resize(), ResizeStep::Idle);
        assert_all_present(&map, 64);
        map.check_invariants().unwrap();
        assert_eq!(map.stats().shrinks, 1);
        assert_eq!(map.stats().resize_grace_periods, 1);
    }

    #[test]
    fn begin_respects_policy_bounds() {
        let map: Map = RpHashMap::with_buckets_hasher_and_policy(
            8,
            FnvBuildHasher,
            ResizePolicy {
                min_buckets: 8,
                max_buckets: 8,
                ..ResizePolicy::default()
            },
        );
        assert!(!map.begin_expand());
        assert!(!map.begin_shrink());
        assert!(!map.resize_in_progress());
    }

    #[test]
    fn writers_mutate_between_resize_steps() {
        // The heart of the maintained path: inserts and removes interleave
        // with every step of an in-progress unzip, including removes of
        // nodes that are still reachable from both buckets of their pair.
        let map = filled(2, 200);
        assert!(map.begin_expand());
        let mut inserted = 200_u64;
        let mut removed = 0_u64;
        loop {
            // Remove a few existing keys and add a few new ones per step.
            for _ in 0..3 {
                if removed < inserted {
                    assert!(map.remove(&removed), "key {removed} missing");
                    removed += 1;
                }
            }
            for _ in 0..2 {
                assert!(map.insert(inserted, inserted * 2));
                inserted += 1;
            }
            if map.advance_resize() == ResizeStep::Finished {
                break;
            }
        }
        assert_eq!(map.len() as u64, inserted - removed);
        let guard = map.pin();
        for i in removed..inserted {
            assert_eq!(map.get(&i, &guard), Some(&(i * 2)), "missing key {i}");
        }
        drop(guard);
        map.check_invariants().unwrap();
        map.flush_retired();
    }

    #[test]
    fn removals_mid_unzip_fix_both_sibling_chains() {
        // Stress the dual-path fixup: drain *every* key while an unzip is
        // paused between steps, then finish the resize.
        for keys in [16_u64, 33, 64] {
            let map = filled(1, keys);
            assert!(map.begin_expand());
            assert_eq!(map.advance_resize(), ResizeStep::Grace);
            // Mid-unzip: every node still sits in one shared chain.
            for i in 0..keys {
                assert!(map.remove(&i), "key {i} missing mid-unzip");
            }
            assert!(map.is_empty());
            while map.resize_in_progress() {
                map.advance_resize();
            }
            map.check_invariants().unwrap();
            map.flush_retired();
        }
    }

    #[test]
    fn replacements_mid_unzip_keep_both_chains_consistent() {
        let map = filled(1, 40);
        assert!(map.begin_expand());
        assert_eq!(map.advance_resize(), ResizeStep::Grace);
        for i in 0..40 {
            assert!(!map.insert(i, i * 10), "key {i} should be replaced");
        }
        while map.resize_in_progress() {
            map.advance_resize();
        }
        let guard = map.pin();
        for i in 0..40 {
            assert_eq!(map.get(&i, &guard), Some(&(i * 10)));
        }
        drop(guard);
        map.check_invariants().unwrap();
        map.flush_retired();
    }

    #[test]
    fn retain_mid_unzip_visits_each_entry_once() {
        let map = filled(2, 100);
        assert!(map.begin_expand());
        assert_eq!(map.advance_resize(), ResizeStep::Grace);
        let mut calls = 0_u64;
        map.retain(|_, _| {
            calls += 1;
            false
        });
        assert_eq!(calls, 100, "retain must visit shared nodes exactly once");
        assert!(map.is_empty());
        while map.resize_in_progress() {
            map.advance_resize();
        }
        map.check_invariants().unwrap();
        map.flush_retired();
    }

    #[test]
    fn drop_mid_unzip_frees_every_node_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct CountsDrop(Arc<AtomicUsize>);
        impl Drop for CountsDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        {
            let map: RpHashMap<u64, CountsDrop, FnvBuildHasher> =
                RpHashMap::with_buckets_and_hasher(2, FnvBuildHasher);
            for i in 0..50 {
                map.insert(i, CountsDrop(Arc::clone(&drops)));
            }
            assert!(map.begin_expand());
            assert_eq!(map.advance_resize(), ResizeStep::Grace);
            // Drop with the unzip mid-flight: shared chains must be split
            // before the node walk frees them.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn manual_resize_completes_inflight_incremental_op() {
        let map = filled(4, 64);
        assert!(map.begin_expand());
        // `resize_to` must first finish the in-flight expansion (4 -> 8),
        // then carry on to the requested size.
        map.resize_to(32);
        assert!(!map.resize_in_progress());
        assert_eq!(map.num_buckets(), 32);
        assert_all_present(&map, 64);
        map.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_advancers_and_writers_converge() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let map = Arc::new(filled(2, 256));
        assert!(map.begin_expand());
        let stop = Arc::new(AtomicBool::new(false));

        // A reader thread keeps grace periods meaningful.
        let reader = {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let guard = map.pin();
                    let mut n = 0;
                    for _ in map.iter(&guard) {
                        n += 1;
                    }
                    assert!(n >= 1);
                }
            })
        };
        // Two advancers race to drive the same resize.
        let advancers: Vec<_> = (0..2)
            .map(|_| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    while map.resize_in_progress() {
                        map.advance_resize();
                    }
                })
            })
            .collect();
        // A writer mutates throughout.
        for i in 256..512_u64 {
            map.insert(i, i * 2);
            map.remove(&(i - 256));
        }
        for a in advancers {
            a.join().unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        assert_eq!(map.len(), 256);
        map.check_invariants().unwrap();
        assert_eq!(map.stats().expands, 1);
    }
}
