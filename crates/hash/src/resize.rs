//! The paper's resize algorithms: zip (shrink) and unzip (expand).
//!
//! Both algorithms preserve the reader-visible invariant at every instant:
//! *every bucket reachable from the published table contains every element
//! that hashes to it* (it may temporarily contain extra elements — an
//! "imprecise" bucket — which lookups filter out by key comparison).

use std::hash::{BuildHasher, Hash};

use rp_rcu::RcuDomain;

use crate::map::RpHashMap;
use crate::node::Node;
use crate::table::BucketArray;

impl<K, V, S> RpHashMap<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher,
{
    /// Doubles the number of buckets (one unzip expansion step).
    ///
    /// Lookups proceed at full speed throughout; the call itself waits for
    /// one grace period to publish the new table plus one per unzip round.
    pub fn expand(&self) {
        let _w = self.writer_lock();
        self.expand_locked();
    }

    /// Halves the number of buckets (one zip shrink step).
    ///
    /// Lookups proceed at full speed throughout; the call waits for a single
    /// grace period regardless of table size.
    pub fn shrink(&self) {
        let _w = self.writer_lock();
        self.shrink_locked();
    }

    /// Resizes the table to `target_buckets` (rounded up to a power of two
    /// and clamped to the policy bounds), doubling or halving repeatedly.
    pub fn resize_to(&self, target_buckets: usize) {
        let target = self.policy().clamp_buckets(target_buckets.max(1));
        let _w = self.writer_lock();
        loop {
            // SAFETY: writer lock held for the whole loop.
            let current = unsafe { self.table_locked() }.len();
            if current < target {
                self.expand_locked();
            } else if current > target {
                self.shrink_locked();
            } else {
                break;
            }
        }
    }

    /// Expansion step; the writer lock must be held.
    pub(crate) fn expand_locked(&self) {
        let domain = RcuDomain::global();
        // SAFETY: writer lock held by the caller.
        let old_table = unsafe { self.table_locked() };
        let old_buckets = old_table.len();
        let new_buckets = match old_buckets.checked_mul(2) {
            Some(n) if n <= self.policy().max_buckets => n,
            _ => return,
        };

        // Phase 1: allocate the new table and point every new bucket at the
        // first node of the corresponding old chain that belongs to it. Old
        // bucket `b` splits into new buckets `b` and `b + old_buckets`; its
        // chain contains both new buckets' elements, interleaved.
        let new_table: Box<BucketArray<K, V>> = BucketArray::new(new_buckets);
        let new_mask = new_buckets - 1;
        for new_index in 0..new_buckets {
            let old_index = new_index & old_table.mask;
            let mut candidate = old_table.head_acquire(old_index);
            while !candidate.is_null() {
                // SAFETY: nodes reachable from the table cannot be freed
                // while the writer lock is held (all retiring happens under
                // it, and freeing additionally waits for a grace period).
                let node = unsafe { &*candidate };
                if (node.hash as usize) & new_mask == new_index {
                    break;
                }
                candidate = node.next_acquire();
            }
            new_table.publish_head(new_index, candidate);
        }

        // Phase 2: publish the new table and wait for readers. After the
        // grace period every reader starts from the new (imprecise) buckets;
        // nobody starts from the old bucket array anymore.
        let old_ptr = self.publish_table(new_table);
        domain.synchronize();
        self.stats.bump(&self.stats.resize_grace_periods);

        // SAFETY: `old_ptr` was the previously published table; after the
        // grace period above no reader references the *array* (readers may
        // still be traversing the shared nodes, which stay live). We keep it
        // as a local cursor table during the unzip and free it at the end.
        let old_table = unsafe { Box::from_raw(old_ptr) };
        // SAFETY: writer lock held; this is the table we just published.
        let new_table = unsafe { self.table_locked() };

        // Phase 3: unzip. Each old chain is a zipper of runs destined
        // alternately for the two sibling buckets. Per round, splice out the
        // single cross-link at the end of the current run in every chain,
        // then wait for readers before touching the same chain again —
        // splicing twice in one grace period could hide elements from a
        // reader already inside the chain.
        let mut cursors: Vec<*mut Node<K, V>> = (0..old_buckets)
            .map(|i| old_table.head_acquire(i))
            .collect();

        loop {
            let mut spliced_any = false;
            for cursor in cursors.iter_mut() {
                let mut p = *cursor;
                if p.is_null() {
                    continue;
                }
                // SAFETY (for this block's dereferences): all nodes reached
                // here are still reachable from the published table (via the
                // new buckets) and can only be retired under the writer
                // lock, which we hold.
                let p_bucket = unsafe { &*p }.hash as usize & new_mask;

                // Advance to the last node of the current run.
                loop {
                    let next = unsafe { &*p }.next_acquire();
                    if next.is_null() {
                        break;
                    }
                    if (unsafe { &*next }.hash as usize & new_mask) != p_bucket {
                        break;
                    }
                    p = next;
                }
                let run_end = p;
                let foreign_head = unsafe { &*run_end }.next_acquire();
                if foreign_head.is_null() {
                    // No cross-link remains after the cursor: this chain is
                    // fully unzipped.
                    *cursor = std::ptr::null_mut();
                    continue;
                }

                // Find the end of the foreign run.
                let foreign_bucket = unsafe { &*foreign_head }.hash as usize & new_mask;
                let mut q = foreign_head;
                loop {
                    let next = unsafe { &*q }.next_acquire();
                    if next.is_null()
                        || (unsafe { &*next }.hash as usize & new_mask) != foreign_bucket
                    {
                        break;
                    }
                    q = next;
                }
                let after_foreign = unsafe { &*q }.next_acquire();

                // Splice: the current run now skips the foreign run. Readers
                // of `p_bucket` that already entered the foreign run still
                // see a consistent chain (it leads to `after_foreign`, which
                // belongs to `p_bucket` or is the end); new traversals skip
                // it entirely.
                unsafe { &*run_end }
                    .next
                    .store(after_foreign, std::sync::atomic::Ordering::Release);
                self.stats.bump(&self.stats.unzip_splices);
                spliced_any = true;

                // The next splice for this chain happens at the end of the
                // foreign run, but only after a grace period.
                *cursor = foreign_head;
            }

            if !spliced_any {
                break;
            }
            self.stats.bump(&self.stats.unzip_rounds);
            domain.synchronize();
            self.stats.bump(&self.stats.resize_grace_periods);
        }

        // Phase 4: the old bucket array is no longer referenced by anyone.
        drop(old_table);
        let _ = new_table;
        self.stats.bump(&self.stats.expands);
    }

    /// Shrink step; the writer lock must be held.
    pub(crate) fn shrink_locked(&self) {
        let domain = RcuDomain::global();
        // SAFETY: writer lock held by the caller.
        let old_table = unsafe { self.table_locked() };
        let old_buckets = old_table.len();
        if old_buckets <= self.policy().min_buckets.max(1) || old_buckets == 1 {
            return;
        }
        let new_buckets = old_buckets / 2;

        // Phase 1: initialise the new buckets. New bucket `b` collects old
        // buckets `b` and `b + new_buckets`; point it at whichever old chain
        // comes first (preferring old bucket `b`).
        let new_table: Box<BucketArray<K, V>> = BucketArray::new(new_buckets);
        for new_index in 0..new_buckets {
            let low = old_table.head_acquire(new_index);
            let high = old_table.head_acquire(new_index + new_buckets);
            let head = if low.is_null() { high } else { low };
            new_table.publish_head(new_index, head);
        }

        // Phase 2: link the old chains. Appending the "high" chain to the
        // tail of the "low" chain makes the low old bucket imprecise (its
        // readers see extra elements — harmless) while readers of the high
        // old bucket are untouched.
        for new_index in 0..new_buckets {
            let low = old_table.head_acquire(new_index);
            let high = old_table.head_acquire(new_index + new_buckets);
            if low.is_null() || high.is_null() {
                continue;
            }
            // Find the tail of the low chain.
            let mut tail = low;
            loop {
                // SAFETY: nodes reachable from the table are protected from
                // reclamation by the writer lock (see `expand_locked`).
                let next = unsafe { &*tail }.next_acquire();
                if next.is_null() {
                    break;
                }
                tail = next;
            }
            // SAFETY: as above.
            unsafe { &*tail }
                .next
                .store(high, std::sync::atomic::Ordering::Release);
        }

        // Phase 3: publish the new table, wait for readers, and reclaim the
        // old bucket array. A single grace period suffices regardless of
        // table size.
        let old_ptr = self.publish_table(new_table);
        domain.synchronize();
        self.stats.bump(&self.stats.resize_grace_periods);
        // SAFETY: `old_ptr` was the previously published bucket array; after
        // the grace period no reader can reference it (the nodes it pointed
        // to remain reachable through the new table and stay live).
        drop(unsafe { Box::from_raw(old_ptr) });
        self.stats.bump(&self.stats.shrinks);
    }

    /// Verifies the reader-visible invariant: every entry is reachable from
    /// the bucket its hash maps to in the current table.
    ///
    /// Intended for tests and debugging; takes the writer lock so it sees a
    /// quiescent table.
    pub fn check_invariants(&self) -> Result<(), String> {
        let _w = self.writer_lock();
        // SAFETY: writer lock held.
        let table = unsafe { self.table_locked() };
        let mut reachable = 0_usize;
        for bucket in 0..table.len() {
            let mut cur = table.head_acquire(bucket);
            let mut steps = 0_usize;
            while !cur.is_null() {
                // SAFETY: reachable node under the writer lock.
                let node = unsafe { &*cur };
                let home = table.bucket_of(node.hash);
                if home == bucket {
                    reachable += 1;
                } else {
                    return Err(format!(
                        "bucket {bucket} contains a node whose home bucket is {home} \
                         while no resize is in progress"
                    ));
                }
                steps += 1;
                if steps > self.len() + 1 {
                    return Err(format!("cycle detected in bucket {bucket}"));
                }
                cur = node.next_acquire();
            }
        }
        if reachable != self.len() {
            return Err(format!(
                "{} entries reachable but len() reports {}",
                reachable,
                self.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{FnvBuildHasher, ResizePolicy, RpHashMap};

    type Map = RpHashMap<u64, u64, FnvBuildHasher>;

    fn filled(buckets: usize, n: u64) -> Map {
        let map = RpHashMap::with_buckets_and_hasher(buckets, FnvBuildHasher);
        for i in 0..n {
            map.insert(i, i * 2);
        }
        map
    }

    fn assert_all_present(map: &Map, n: u64) {
        let guard = map.pin();
        for i in 0..n {
            assert_eq!(map.get(&i, &guard), Some(&(i * 2)), "missing key {i}");
        }
    }

    #[test]
    fn expand_preserves_all_entries() {
        let map = filled(8, 500);
        map.expand();
        assert_eq!(map.num_buckets(), 16);
        assert_all_present(&map, 500);
        map.check_invariants().unwrap();
        assert_eq!(map.stats().expands, 1);
        assert!(map.stats().unzip_splices > 0);
    }

    #[test]
    fn shrink_preserves_all_entries() {
        let map = filled(16, 500);
        map.shrink();
        assert_eq!(map.num_buckets(), 8);
        assert_all_present(&map, 500);
        map.check_invariants().unwrap();
        assert_eq!(map.stats().shrinks, 1);
    }

    #[test]
    fn expand_then_shrink_round_trips() {
        let map = filled(8, 300);
        map.expand();
        map.expand();
        assert_eq!(map.num_buckets(), 32);
        map.shrink();
        map.shrink();
        assert_eq!(map.num_buckets(), 8);
        assert_all_present(&map, 300);
        map.check_invariants().unwrap();
    }

    #[test]
    fn resize_to_reaches_target_in_one_call() {
        let map = filled(8, 200);
        map.resize_to(128);
        assert_eq!(map.num_buckets(), 128);
        assert_all_present(&map, 200);
        map.resize_to(4);
        assert_eq!(map.num_buckets(), 4);
        assert_all_present(&map, 200);
        map.check_invariants().unwrap();
        // 8 -> 128 is four doublings; 128 -> 4 is five halvings.
        let stats = map.stats();
        assert_eq!(stats.expands, 4);
        assert_eq!(stats.shrinks, 5);
    }

    #[test]
    fn resize_respects_policy_bounds() {
        let map: Map = RpHashMap::with_buckets_hasher_and_policy(
            16,
            FnvBuildHasher,
            ResizePolicy {
                min_buckets: 8,
                max_buckets: 32,
                ..ResizePolicy::default()
            },
        );
        for i in 0..100 {
            map.insert(i, i * 2);
        }
        map.resize_to(1);
        assert_eq!(map.num_buckets(), 8);
        map.resize_to(1 << 20);
        assert_eq!(map.num_buckets(), 32);
        assert_all_present(&map, 100);
    }

    #[test]
    fn expand_on_empty_and_tiny_tables() {
        let map: Map = RpHashMap::with_buckets_and_hasher(1, FnvBuildHasher);
        map.expand();
        assert_eq!(map.num_buckets(), 2);
        map.shrink();
        assert_eq!(map.num_buckets(), 1);
        // Shrinking a one-bucket table is a no-op.
        map.shrink();
        assert_eq!(map.num_buckets(), 1);
        map.insert(1, 2);
        map.expand();
        assert_eq!(map.get_cloned(&1), Some(2));
        map.check_invariants().unwrap();
    }

    #[test]
    fn single_bucket_chain_unzips_correctly() {
        // Everything starts in one bucket; expanding repeatedly must fan the
        // chain out without losing or duplicating entries.
        let map = filled(1, 64);
        for _ in 0..4 {
            map.expand();
        }
        assert_eq!(map.num_buckets(), 16);
        assert_all_present(&map, 64);
        map.check_invariants().unwrap();
    }

    #[test]
    fn updates_after_resize_use_precise_buckets() {
        let map = filled(4, 100);
        map.expand();
        // Mutations after the resize must still work against the new table.
        for i in 0..50 {
            assert!(map.remove(&i));
        }
        for i in 100..120 {
            assert!(map.insert(i, i * 2));
        }
        assert_eq!(map.len(), 70);
        let guard = map.pin();
        for i in 50..120 {
            assert_eq!(map.get(&i, &guard), Some(&(i * 2)));
        }
        map.check_invariants().unwrap();
    }

    #[test]
    fn grace_periods_accounted_per_resize() {
        let map = filled(4, 64);
        let before = map.stats().resize_grace_periods;
        map.shrink();
        let after_shrink = map.stats().resize_grace_periods;
        assert_eq!(
            after_shrink - before,
            1,
            "shrink must wait exactly one grace period"
        );
        map.expand();
        let after_expand = map.stats().resize_grace_periods;
        assert!(
            after_expand - after_shrink >= 2,
            "expand waits one grace period to publish plus one per unzip round"
        );
    }

    #[test]
    fn check_invariants_detects_length_mismatch() {
        let map = filled(4, 10);
        assert!(map.check_invariants().is_ok());
    }
}
