//! A hash set built on [`crate::RpHashMap`].

use std::borrow::Borrow;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};

use rp_rcu::RcuGuard;

use crate::map::RpHashMap;
use crate::policy::ResizePolicy;
use crate::qsbr::ReadProtect;

/// A concurrent hash set with wait-free relativistic readers and
/// reader-transparent resizing.
///
/// A thin wrapper around [`RpHashMap<T, ()>`] exposing set semantics.
pub struct RpHashSet<T, S = RandomState> {
    map: RpHashMap<T, (), S>,
}

impl<T> RpHashSet<T, RandomState> {
    /// Creates an empty set with a small default bucket count.
    pub fn new() -> Self {
        RpHashSet {
            map: RpHashMap::new(),
        }
    }

    /// Creates an empty set with `buckets` buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        RpHashSet {
            map: RpHashMap::with_buckets(buckets),
        }
    }
}

impl<T> Default for RpHashSet<T, RandomState> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S> RpHashSet<T, S> {
    /// Creates an empty set with the given bucket count and hasher.
    pub fn with_buckets_and_hasher(buckets: usize, hasher: S) -> Self {
        RpHashSet {
            map: RpHashMap::with_buckets_and_hasher(buckets, hasher),
        }
    }

    /// Creates an empty set with the given bucket count, hasher and policy.
    pub fn with_buckets_hasher_and_policy(buckets: usize, hasher: S, policy: ResizePolicy) -> Self {
        RpHashSet {
            map: RpHashMap::with_buckets_hasher_and_policy(buckets, hasher, policy),
        }
    }

    /// Enters a read-side critical section.
    pub fn pin(&self) -> RcuGuard<'static> {
        self.map.pin()
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current number of hash buckets.
    pub fn num_buckets(&self) -> usize {
        self.map.num_buckets()
    }

    /// The underlying map, for advanced use (stats, policy, resize).
    pub fn as_map(&self) -> &RpHashMap<T, (), S> {
        &self.map
    }
}

impl<T, S> RpHashSet<T, S>
where
    T: Hash + Eq + Send + Sync + 'static,
    S: BuildHasher,
{
    /// Adds `value` to the set. Returns `true` if it was not already
    /// present.
    pub fn insert(&self, value: T) -> bool {
        self.map.insert(value, ())
    }

    /// Removes `value`. Returns `true` if it was present.
    pub fn remove<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.remove(value)
    }

    /// Returns `true` if the set contains `value`.
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.contains_key(value)
    }

    /// Returns a reference to the stored element equal to `value`, if any.
    /// Accepts either read-side protection witness (EBR guard or online
    /// QSBR handle).
    pub fn get<'g, Q, P>(&'g self, value: &Q, protect: &'g P) -> Option<&'g T>
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        P: ReadProtect,
    {
        self.map.get_key_value(value, protect).map(|(k, ())| k)
    }

    /// Iterates over the elements under a read-side protection witness.
    pub fn iter<'g, P: ReadProtect>(&'g self, protect: &'g P) -> impl Iterator<Item = &'g T> + 'g {
        self.map.keys(protect)
    }

    /// Removes all elements.
    pub fn clear(&self) {
        self.map.clear()
    }

    /// Doubles the number of buckets.
    pub fn expand(&self) {
        self.map.expand()
    }

    /// Halves the number of buckets.
    pub fn shrink(&self) {
        self.map.shrink()
    }

    /// Resizes the table to approximately `target_buckets`.
    pub fn resize_to(&self, target_buckets: usize) {
        self.map.resize_to(target_buckets)
    }
}

impl<T, S> std::fmt::Debug for RpHashSet<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpHashSet")
            .field("len", &self.len())
            .field("buckets", &self.num_buckets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnvBuildHasher;

    #[test]
    fn insert_contains_remove() {
        let set: RpHashSet<u32> = RpHashSet::new();
        assert!(set.insert(1));
        assert!(!set.insert(1));
        assert!(set.contains(&1));
        assert!(!set.contains(&2));
        assert!(set.remove(&1));
        assert!(!set.remove(&1));
        assert!(set.is_empty());
    }

    #[test]
    fn string_set_with_borrowed_lookup() {
        let set: RpHashSet<String> = RpHashSet::with_buckets(8);
        set.insert("hello".to_string());
        assert!(set.contains("hello"));
        let guard = set.pin();
        assert_eq!(set.get("hello", &guard).map(String::as_str), Some("hello"));
    }

    #[test]
    fn iter_and_resize() {
        let set: RpHashSet<u64, FnvBuildHasher> =
            RpHashSet::with_buckets_and_hasher(4, FnvBuildHasher);
        for i in 0..50 {
            set.insert(i);
        }
        set.expand();
        set.resize_to(64);
        assert_eq!(set.num_buckets(), 64);
        let guard = set.pin();
        assert_eq!(set.iter(&guard).count(), 50);
        drop(guard);
        set.shrink();
        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    fn as_map_exposes_stats() {
        let set: RpHashSet<u8> = RpHashSet::with_buckets(4);
        set.insert(1);
        set.expand();
        assert_eq!(set.as_map().stats().expands, 1);
    }
}
