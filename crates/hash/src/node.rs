//! Chain nodes.

use std::sync::atomic::{AtomicPtr, Ordering};

/// A single chain node.
///
/// The key, the cached hash and the value are immutable once the node has
/// been published into a bucket chain; only the `next` pointer is ever
/// mutated afterwards (by insertion, removal and the unzip splices), always
/// with release stores paired with readers' acquire loads.
pub(crate) struct Node<K, V> {
    pub(crate) next: AtomicPtr<Node<K, V>>,
    /// The key's hash, cached so resize operations never need to re-hash
    /// (and therefore never need to touch the key type's `Hash` impl while
    /// restructuring chains).
    pub(crate) hash: u64,
    pub(crate) key: K,
    pub(crate) value: V,
}

impl<K, V> Node<K, V> {
    /// Allocates a detached node.
    pub(crate) fn alloc(hash: u64, key: K, value: V) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(std::ptr::null_mut()),
            hash,
            key,
            value,
        }))
    }

    /// Loads the successor with acquire ordering (`rcu_dereference`).
    pub(crate) fn next_acquire(&self) -> *mut Node<K, V> {
        self.next.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_produces_detached_node() {
        let raw = Node::alloc(0xdead, 7_u32, "seven");
        // SAFETY: freshly allocated, exclusively owned by the test.
        let node = unsafe { &*raw };
        assert!(node.next_acquire().is_null());
        assert_eq!(node.hash, 0xdead);
        assert_eq!(node.key, 7);
        assert_eq!(node.value, "seven");
        // SAFETY: freeing the test allocation exactly once.
        unsafe { drop(Box::from_raw(raw)) };
    }
}
