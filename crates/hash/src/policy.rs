//! Automatic resize policy.

/// Controls if and when an [`crate::RpHashMap`] resizes itself.
///
/// Resizing is always available explicitly through
/// [`crate::RpHashMap::resize_to`], [`crate::RpHashMap::expand`] and
/// [`crate::RpHashMap::shrink`]; the policy additionally lets insert/remove
/// trigger resizes when the load factor crosses the configured thresholds
/// (the way the Linux kernel's rhashtable — the descendant of this paper's
/// algorithm — behaves).
///
/// Automatic resizes run inline in the triggering writer and therefore wait
/// for grace periods; readers are unaffected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResizePolicy {
    /// Grow (double) when `len > buckets * max_load_factor`.
    pub auto_expand: bool,
    /// Shrink (halve) when `len < buckets * min_load_factor`.
    pub auto_shrink: bool,
    /// Load factor above which an automatic expand triggers.
    pub max_load_factor: f64,
    /// Load factor below which an automatic shrink triggers.
    pub min_load_factor: f64,
    /// Lower bound on the number of buckets.
    pub min_buckets: usize,
    /// Upper bound on the number of buckets.
    pub max_buckets: usize,
    /// Run a reclamation pass (grace period + free) once at least this many
    /// retired nodes are pending in the RCU domain.
    pub reclaim_threshold: usize,
}

impl Default for ResizePolicy {
    fn default() -> Self {
        ResizePolicy {
            auto_expand: false,
            auto_shrink: false,
            max_load_factor: 2.0,
            min_load_factor: 0.25,
            min_buckets: 1,
            max_buckets: 1 << 30,
            reclaim_threshold: 256,
        }
    }
}

impl ResizePolicy {
    /// A policy with automatic growing and shrinking enabled.
    pub fn automatic() -> Self {
        ResizePolicy {
            auto_expand: true,
            auto_shrink: true,
            ..ResizePolicy::default()
        }
    }

    /// A policy that never resizes automatically (the default).
    pub fn manual() -> Self {
        ResizePolicy::default()
    }

    /// Returns `true` if a map with `len` entries and `buckets` buckets
    /// should grow.
    ///
    /// Exposed so that out-of-band resize drivers (the `rp-maint`
    /// maintenance thread, via `rp-shard`) can apply the same load-factor
    /// thresholds a map would apply inline.
    ///
    /// Only returns `true` when a doubling is actually possible
    /// (`2 * buckets <= max_buckets`) — the same condition the expand
    /// itself checks — so a `true` trigger can never pair with a resize
    /// that refuses to start (which would retry forever on the maintained
    /// path).
    pub fn should_expand(&self, len: usize, buckets: usize) -> bool {
        self.auto_expand
            && buckets
                .checked_mul(2)
                .is_some_and(|doubled| doubled <= self.max_buckets)
            && (len as f64) > (buckets as f64) * self.max_load_factor
    }

    /// Returns `true` if a map with `len` entries and `buckets` buckets
    /// should shrink.
    ///
    /// See [`ResizePolicy::should_expand`] for why this is public.
    pub fn should_shrink(&self, len: usize, buckets: usize) -> bool {
        self.auto_shrink
            && buckets > self.min_buckets.max(1)
            && (len as f64) < (buckets as f64) * self.min_load_factor
    }

    /// Clamps a requested bucket count to the policy bounds and rounds it up
    /// to a power of two.
    pub(crate) fn clamp_buckets(&self, requested: usize) -> usize {
        requested
            .clamp(self.min_buckets.max(1), self.max_buckets)
            .next_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_manual() {
        let p = ResizePolicy::default();
        assert!(!p.auto_expand);
        assert!(!p.auto_shrink);
        assert!(!p.should_expand(1_000_000, 1));
        assert!(!p.should_shrink(0, 1 << 20));
    }

    #[test]
    fn automatic_policy_triggers_on_load_factor() {
        let p = ResizePolicy::automatic();
        assert!(p.should_expand(17, 8)); // load factor > 2
        assert!(!p.should_expand(16, 8)); // exactly 2: not strictly above
        assert!(p.should_shrink(1, 8)); // load factor 0.125 < 0.25
        assert!(!p.should_shrink(2, 8)); // exactly 0.25: not strictly below
    }

    #[test]
    fn should_expand_requires_a_possible_doubling() {
        // A trigger that fires when the expand itself would refuse to start
        // (2 * buckets > max_buckets) would retry forever on the maintained
        // path; the trigger must use the expand's own feasibility check.
        let p = ResizePolicy {
            auto_expand: true,
            max_buckets: 24, // not a power of two: 16 < 24 but 32 > 24
            ..ResizePolicy::automatic()
        };
        assert!(p.should_expand(1_000, 8));
        assert!(!p.should_expand(1_000, 16));
    }

    #[test]
    fn bounds_are_respected() {
        let p = ResizePolicy {
            auto_expand: true,
            auto_shrink: true,
            min_buckets: 4,
            max_buckets: 64,
            ..ResizePolicy::automatic()
        };
        assert!(
            !p.should_expand(1_000, 64),
            "must not grow past max_buckets"
        );
        assert!(!p.should_shrink(0, 4), "must not shrink below min_buckets");
        assert_eq!(p.clamp_buckets(1), 4);
        assert_eq!(p.clamp_buckets(100), 64);
        assert_eq!(p.clamp_buckets(33), 64);
        assert_eq!(p.clamp_buckets(32), 32);
    }
}
