//! The resizable relativistic hash map.

use std::borrow::Borrow;
use std::cell::UnsafeCell;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use rp_rcu::{GraceSync, RcuDomain, RcuGuard};

use crate::iter::{Iter, Keys, Values};
use crate::node::Node;
use crate::policy::ResizePolicy;
use crate::qsbr::{QsbrReadHandle, ReadProtect};
use crate::resize::ResizeOp;
use crate::stats::{AtomicMapStats, MapStats};
use crate::table::BucketArray;

/// A concurrent hash map with wait-free relativistic readers and
/// reader-transparent resizing.
///
/// * **Lookups** ([`RpHashMap::get`] and friends) run under an [`RcuGuard`]
///   and never block, never retry and never execute atomic
///   read-modify-write instructions, regardless of concurrent insertions,
///   removals or resizes. They scale linearly with reader threads.
/// * **Updates** (insert/remove/rename/resize) serialise on an internal
///   mutex and publish their changes with release stores; unlinked nodes are
///   retired through the global RCU domain and freed only after a grace
///   period.
/// * **Resizing** uses the paper's zip (shrink) and unzip (expand)
///   algorithms: the table stays *consistent for readers at every instant* —
///   a reader traversing a bucket always observes every element that belongs
///   to that bucket (possibly plus a few that don't, which the key
///   comparison filters out).
///
/// The map uses the process-wide RCU domain ([`RcuDomain::global`]); guards
/// obtained from [`RpHashMap::pin`] or [`rp_rcu::pin`] are interchangeable.
pub struct RpHashMap<K, V, S = RandomState> {
    /// Published pointer to the current bucket array.
    table: AtomicPtr<BucketArray<K, V>>,
    /// Serialises writers (updates and resizes). Readers never touch it.
    writer: Mutex<()>,
    len: AtomicUsize,
    hasher: S,
    policy: ResizePolicy,
    /// The in-progress incremental resize, if any. Guarded by `writer`:
    /// every access goes through [`RpHashMap::resize_op_locked`], whose
    /// contract is that the writer lock is held.
    resize_op: UnsafeCell<Option<ResizeOp<K, V>>>,
    /// Lock-free mirror of `resize_op.is_some()` for
    /// [`RpHashMap::resize_in_progress`].
    resize_active: AtomicBool,
    /// Monotonic id generator for resize operations (grace-wait
    /// bookkeeping).
    resize_ids: AtomicU64,
    /// Writer-side reclamation threshold, initialised from
    /// `policy.reclaim_threshold` but adjustable at runtime (the maintained
    /// path sets it to `usize::MAX` while a maintenance thread reclaims on
    /// the writers' behalf, and restores it when maintenance stops).
    reclaim_threshold: AtomicUsize,
    pub(crate) stats: AtomicMapStats,
}

// SAFETY: the map shares `&K`/`&V` with concurrent reader threads and drops
// keys/values on whichever thread runs reclamation, so `K` and `V` must be
// `Send + Sync`. The hasher is used from `&self` by any thread. The raw
// pointers — including those inside `resize_op`, which is only touched under
// the writer lock — are managed by the publication/retire protocol
// implemented here.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send> Send for RpHashMap<K, V, S> {}
// SAFETY: see above.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Sync> Sync for RpHashMap<K, V, S> {}

impl<K, V> RpHashMap<K, V, RandomState> {
    /// Creates an empty map with a small default bucket count.
    pub fn new() -> Self {
        Self::with_buckets(16)
    }

    /// Creates an empty map with `buckets` buckets (rounded up to a power of
    /// two).
    pub fn with_buckets(buckets: usize) -> Self {
        Self::with_buckets_and_hasher(buckets, RandomState::new())
    }
}

impl<K, V> Default for RpHashMap<K, V, RandomState> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> RpHashMap<K, V, S> {
    /// Creates an empty map with `buckets` buckets and the given hasher.
    pub fn with_buckets_and_hasher(buckets: usize, hasher: S) -> Self {
        Self::with_buckets_hasher_and_policy(buckets, hasher, ResizePolicy::default())
    }

    /// Creates an empty map with the given bucket count, hasher and resize
    /// policy.
    pub fn with_buckets_hasher_and_policy(buckets: usize, hasher: S, policy: ResizePolicy) -> Self {
        let buckets = policy.clamp_buckets(buckets.max(1));
        let table = Box::into_raw(BucketArray::new(buckets));
        RpHashMap {
            table: AtomicPtr::new(table),
            writer: Mutex::new(()),
            len: AtomicUsize::new(0),
            hasher,
            policy,
            resize_op: UnsafeCell::new(None),
            resize_active: AtomicBool::new(false),
            resize_ids: AtomicU64::new(0),
            reclaim_threshold: AtomicUsize::new(policy.reclaim_threshold),
            stats: AtomicMapStats::default(),
        }
    }

    /// Enters a read-side critical section of the global RCU domain.
    ///
    /// Equivalent to [`rp_rcu::pin`]; provided here for convenience.
    pub fn pin(&self) -> RcuGuard<'static> {
        rp_rcu::pin()
    }

    /// Number of key/value pairs in the map (a racy snapshot under
    /// concurrent updates).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if the map contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of hash buckets.
    pub fn num_buckets(&self) -> usize {
        // SAFETY: the table pointer is always valid; it is only freed by a
        // resize after a grace period, and we only read its immutable
        // `mask`/length here. The transient borrow cannot outlive the call.
        unsafe { (*self.table.load(Ordering::Acquire)).len() }
    }

    /// Current load factor (`len / num_buckets`).
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.num_buckets() as f64
    }

    /// The map's resize policy.
    pub fn policy(&self) -> &ResizePolicy {
        &self.policy
    }

    /// Overrides the writer-side deferred-reclamation threshold (initially
    /// `policy.reclaim_threshold`).
    ///
    /// `usize::MAX` disables writer-side reclamation entirely — the
    /// maintained path uses this while a background thread reclaims on the
    /// writers' behalf, and restores the policy's value when maintenance
    /// stops (otherwise retired nodes would accumulate without bound).
    pub fn set_reclaim_threshold(&self, threshold: usize) {
        self.reclaim_threshold.store(threshold, Ordering::Relaxed);
    }

    /// A snapshot of the map's operation and resize counters.
    pub fn stats(&self) -> MapStats {
        self.stats.snapshot()
    }

    /// The RCU domain protecting this map's readers.
    pub fn domain(&self) -> &'static RcuDomain {
        RcuDomain::global()
    }

    /// Loads the current bucket array for use by a reader holding the
    /// protection witness `_protect` (an EBR guard or an online QSBR
    /// handle).
    pub(crate) fn table_for_read<'g, P>(&'g self, _protect: &'g P) -> &'g BucketArray<K, V>
    where
        P: ReadProtect,
    {
        _protect.assert_protecting();
        // SAFETY: the bucket array is published with release ordering and
        // only freed after a cross-flavor grace period (`GraceSync`)
        // following its replacement; the witness keeps the relevant grace
        // period from completing (EBR: the guard holds it open; QSBR: the
        // owning thread cannot announce quiescence while `'g` borrows the
        // handle), so the array outlives `'g`.
        unsafe { &*self.table.load(Ordering::Acquire) }
    }

    /// Loads the current bucket array from writer context.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock (resizes — the only operations
    /// that free bucket arrays — run under that lock).
    pub(crate) unsafe fn table_locked(&self) -> &BucketArray<K, V> {
        // SAFETY: per the caller contract the writer lock is held, so no
        // resize can retire the array during the borrow.
        unsafe { &*self.table.load(Ordering::Acquire) }
    }

    /// Publishes a new bucket array, returning the previous one.
    pub(crate) fn publish_table(&self, new: Box<BucketArray<K, V>>) -> *mut BucketArray<K, V> {
        self.table.swap(Box::into_raw(new), Ordering::AcqRel)
    }

    pub(crate) fn writer_lock(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.writer.lock()
    }

    /// The in-progress resize operation slot.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock, and must not call this again
    /// while the returned borrow is live (all uses below are short and
    /// non-overlapping).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn resize_op_locked(&self) -> &mut Option<ResizeOp<K, V>> {
        // SAFETY: the writer lock (caller contract) serialises every access
        // to the cell.
        unsafe { &mut *self.resize_op.get() }
    }

    pub(crate) fn resize_active(&self) -> bool {
        self.resize_active.load(Ordering::Acquire)
    }

    pub(crate) fn set_resize_active(&self, active: bool) {
        self.resize_active.store(active, Ordering::Release);
    }

    pub(crate) fn next_resize_id(&self) -> u64 {
        self.resize_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// If an unzip is in progress, its pre-expansion bucket count.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    unsafe fn unzip_old_buckets_locked(&self) -> Option<usize> {
        // SAFETY: forwarded caller contract.
        match unsafe { self.resize_op_locked() } {
            Some(ResizeOp::Unzip(op)) => Some(op.old_buckets),
            _ => None,
        }
    }

    /// Repoints any link to `node` from the *other* bucket of its unzip pair
    /// at `replacement`. A no-op unless an unzip is in progress.
    ///
    /// Mid-unzip, a node can be reachable from both buckets of its pair —
    /// the chains are still interleaved — so unlinking it from its home
    /// chain alone would leave the sibling chain pointing at memory that is
    /// about to be retired. Writers call this after every unlink
    /// (`replacement` is the unlinked node's successor) and after every
    /// in-place replacement (`replacement` is the new node, whose successor
    /// was copied from the old one).
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock; `node` must have just been
    /// unlinked from (or replaced in) its home chain in `table`.
    unsafe fn fixup_unzip_links_locked(
        &self,
        table: &BucketArray<K, V>,
        hash: u64,
        node: *mut Node<K, V>,
        replacement: *mut Node<K, V>,
    ) {
        // SAFETY (this fn body): writer lock held per the caller contract;
        // all traversed nodes are reachable and therefore stable.
        unsafe {
            let Some(old_buckets) = self.unzip_old_buckets_locked() else {
                return;
            };
            let pair = (hash as usize) & (old_buckets - 1);
            let home = table.bucket_of(hash);
            for bucket in [pair, pair + old_buckets] {
                if bucket == home {
                    continue;
                }
                let mut cur = table.head_acquire(bucket);
                if cur == node {
                    table.publish_head(bucket, replacement);
                    continue;
                }
                while !cur.is_null() {
                    let cur_ref = &*cur;
                    let next = cur_ref.next_acquire();
                    if next == node {
                        cur_ref.next.store(replacement, Ordering::Release);
                        break;
                    }
                    cur = next;
                }
            }
        }
    }
}

impl<K, V, S> RpHashMap<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher,
{
    /// Hashes a key with this map's hasher.
    pub(crate) fn hash_of<Q>(&self, key: &Q) -> u64
    where
        Q: Hash + ?Sized,
    {
        self.hasher.hash_one(key)
    }

    /// The hash this map's hasher produces for `key` — the value the
    /// `*_prehashed` and `*_matching_prehashed` entry points expect.
    pub fn hash_one<Q>(&self, key: &Q) -> u64
    where
        Q: Hash + ?Sized,
    {
        self.hash_of(key)
    }

    /// Looks up `key`, returning a reference valid for the protection
    /// borrow.
    ///
    /// This is the paper's wait-free lookup: a bucket-head load, a short
    /// chain traversal and per-node key comparisons. Concurrent resizes may
    /// make the traversed chain *imprecise* (contain foreign elements), but
    /// never make it miss an element that is present throughout the lookup.
    ///
    /// The lookup core is generic over the read-side flavor: pass an EBR
    /// guard ([`RpHashMap::pin`]) or an online [`QsbrReadHandle`] — the
    /// latter makes the lookup entirely barrier-free (see
    /// [`RpHashMap::get_qsbr`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use rp_hash::RpHashMap;
    ///
    /// let map: RpHashMap<&str, u32> = RpHashMap::new();
    /// map.insert("answer", 42);
    ///
    /// // Lookups borrow a reference valid while the guard is alive.
    /// let guard = map.pin();
    /// assert_eq!(map.get(&"answer", &guard), Some(&42));
    /// assert_eq!(map.get(&"question", &guard), None);
    /// ```
    pub fn get<'g, Q, P>(&'g self, key: &Q, protect: &'g P) -> Option<&'g V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        P: ReadProtect,
    {
        self.get_key_value(key, protect).map(|(_, v)| v)
    }

    /// Looks up `key`, returning references to the stored key and value.
    pub fn get_key_value<'g, Q, P>(&'g self, key: &Q, protect: &'g P) -> Option<(&'g K, &'g V)>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        P: ReadProtect,
    {
        self.get_key_value_prehashed(self.hash_of(key), key, protect)
    }

    /// Looks up `key` using a caller-supplied `hash`, skipping the map's own
    /// hashing pass.
    ///
    /// `hash` must be the value this map's hasher produces for `key`
    /// (callers like `rp-shard` compute it once with an identical hasher and
    /// reuse it for both shard selection and the per-shard lookup).
    pub fn get_prehashed<'g, Q, P>(&'g self, hash: u64, key: &Q, protect: &'g P) -> Option<&'g V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        P: ReadProtect,
    {
        self.get_key_value_prehashed(hash, key, protect)
            .map(|(_, v)| v)
    }

    /// Looks up `key` through the QSBR read path: no lock, no fence, no
    /// atomic read-modify-write — the zero-overhead lookup the paper's
    /// read-side cost model assumes.
    ///
    /// This is [`RpHashMap::get`] with the flavor spelled out; the returned
    /// reference borrows the handle, so the owning thread cannot announce a
    /// quiescent state (or go offline) while it is alive — see
    /// [`QsbrReadHandle`] for the full contract.
    ///
    /// # Examples
    ///
    /// ```
    /// use rp_hash::{QsbrReadHandle, RpHashMap};
    ///
    /// let map: RpHashMap<u64, &str> = RpHashMap::new();
    /// map.insert(7, "seven");
    ///
    /// let mut handle = QsbrReadHandle::register();
    /// assert_eq!(map.get_qsbr(&7, &handle), Some(&"seven"));
    /// // Between batches of lookups, announce a quiescent state so writers
    /// // and resizes can make progress reclaiming.
    /// handle.quiescent_state();
    /// ```
    pub fn get_qsbr<'g, Q>(&'g self, key: &Q, handle: &'g QsbrReadHandle) -> Option<&'g V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key, handle)
    }

    /// Looks up every key in `keys` through the QSBR read path, returning
    /// references in caller order — one barrier-free pass, all results tied
    /// to a single quiescent window (the borrow of `handle`).
    pub fn get_many_qsbr<'g, Q>(
        &'g self,
        keys: &[Q],
        handle: &'g QsbrReadHandle,
    ) -> Vec<Option<&'g V>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq,
    {
        keys.iter().map(|key| self.get(key, handle)).collect()
    }

    /// [`RpHashMap::get_key_value`] with a caller-supplied hash (see
    /// [`RpHashMap::get_prehashed`] for the contract on `hash`).
    pub fn get_key_value_prehashed<'g, Q, P>(
        &'g self,
        hash: u64,
        key: &Q,
        protect: &'g P,
    ) -> Option<(&'g K, &'g V)>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        P: ReadProtect,
    {
        self.get_key_value_matching_prehashed(hash, |k| k.borrow() == key, protect)
    }

    /// The "raw entry" lookup: finds the entry with `hash` whose key
    /// satisfies `matches`, without requiring a probe key type that `K` can
    /// [`Borrow`].
    ///
    /// This is what lets the cache server probe a `String`-keyed map with a
    /// `&[u8]` slice borrowed straight out of a connection's read buffer —
    /// hash once, compare bytes, allocate nothing. The contract mirrors
    /// [`RpHashMap::get_prehashed`]: `hash` must be exactly what this map's
    /// hasher produces for any key `matches` accepts, and `matches` must be
    /// consistent with `K`'s `Eq`.
    pub fn get_key_value_matching_prehashed<'g, P, F>(
        &'g self,
        hash: u64,
        mut matches: F,
        protect: &'g P,
    ) -> Option<(&'g K, &'g V)>
    where
        P: ReadProtect,
        F: FnMut(&K) -> bool,
    {
        let table = self.table_for_read(protect);
        let bucket = table.bucket_of(hash);
        let mut cur = table.head_acquire(bucket);
        while !cur.is_null() {
            // SAFETY: `cur` was reached from a published bucket head / next
            // pointer while the read-side protection witness is borrowed;
            // nodes are freed only after a cross-flavor grace period
            // following their unlinking, so the node is alive and its
            // key/value/hash are immutable.
            let node = unsafe { &*cur };
            if node.hash == hash && matches(&node.key) {
                return Some((&node.key, &node.value));
            }
            cur = node.next_acquire();
        }
        None
    }

    /// [`RpHashMap::get_key_value_matching_prehashed`], returning only the
    /// value.
    pub fn get_matching_prehashed<'g, P, F>(
        &'g self,
        hash: u64,
        matches: F,
        protect: &'g P,
    ) -> Option<&'g V>
    where
        P: ReadProtect,
        F: FnMut(&K) -> bool,
    {
        self.get_key_value_matching_prehashed(hash, matches, protect)
            .map(|(_, v)| v)
    }

    /// Returns `true` if the map contains `key`.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let guard = rp_rcu::pin();
        self.get(key, &guard).is_some()
    }

    /// Looks up `key` and clones the value.
    pub fn get_cloned<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        let guard = rp_rcu::pin();
        self.get(key, &guard).cloned()
    }

    /// Looks up `key` and applies `f` to the value under the read-side
    /// critical section (the relativistic "copy out what you need" pattern).
    pub fn get_with<Q, F, R>(&self, key: &Q, f: F) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        F: FnOnce(&V) -> R,
    {
        let guard = rp_rcu::pin();
        self.get(key, &guard).map(f)
    }

    /// Inserts `key → value`. Returns `true` if the key was newly inserted,
    /// `false` if an existing value was replaced.
    ///
    /// Replacement is atomic from a reader's perspective: a concurrent
    /// lookup observes either the old or the new value, never neither.
    ///
    /// # Examples
    ///
    /// ```
    /// use rp_hash::RpHashMap;
    ///
    /// let map: RpHashMap<u64, &str> = RpHashMap::new();
    /// assert!(map.insert(1, "one"));
    /// assert!(!map.insert(1, "uno"), "second insert replaces");
    /// assert_eq!(map.len(), 1);
    /// assert_eq!(map.get_cloned(&1), Some("uno"));
    /// ```
    pub fn insert(&self, key: K, value: V) -> bool {
        self.insert_prehashed(self.hash_of(&key), key, value)
    }

    /// [`RpHashMap::insert`] with a caller-supplied hash (see
    /// [`RpHashMap::get_prehashed`] for the contract on `hash`).
    pub fn insert_prehashed(&self, hash: u64, key: K, value: V) -> bool {
        let guard = self.writer_lock();
        // SAFETY: writer lock held.
        let newly = unsafe { self.insert_one_locked(hash, key, value) };
        self.maybe_reclaim();
        drop(guard);
        newly
    }

    /// Inserts a batch of pre-hashed entries under a single writer-lock
    /// acquisition, amortising lock traffic for shard-grouped bulk puts.
    ///
    /// Returns the number of keys that were newly inserted (as opposed to
    /// replaced). Automatic resizing and reclamation behave exactly as for
    /// per-key [`RpHashMap::insert`] calls.
    pub fn insert_many_prehashed(&self, entries: impl IntoIterator<Item = (u64, K, V)>) -> usize {
        let guard = self.writer_lock();
        let mut newly = 0;
        for (hash, key, value) in entries {
            // SAFETY: writer lock held for the whole batch.
            if unsafe { self.insert_one_locked(hash, key, value) } {
                newly += 1;
            }
        }
        self.maybe_reclaim();
        drop(guard);
        newly
    }

    /// One insert-or-replace step.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    unsafe fn insert_one_locked(&self, hash: u64, key: K, value: V) -> bool {
        // SAFETY: writer lock held per the caller contract.
        let table = unsafe { self.table_locked() };
        let bucket = table.bucket_of(hash);

        let new = Node::alloc(hash, key, value);
        // SAFETY: `new` is unpublished; we have exclusive access to it.
        let new_ref = unsafe { &*new };

        match self.find_locked(table, hash, &new_ref.key) {
            Some((prev, old)) => {
                // SAFETY: `old` is a live node reachable under the writer
                // lock (see `find_locked`).
                let old_ref = unsafe { &*old };
                // Initialise the replacement's successor before publishing.
                new_ref
                    .next
                    .store(old_ref.next_acquire(), Ordering::Relaxed);
                self.link_after(table, bucket, prev, new);
                // SAFETY: writer lock held; `old` was just replaced in its
                // home chain by `new`.
                unsafe { self.fixup_unzip_links_locked(table, hash, old, new) };
                self.stats.bump(&self.stats.replaces);
                // SAFETY: `old` has just been unlinked (unreachable to new
                // readers), was allocated by `Node::alloc`, and readers of
                // this map pin the global domain.
                unsafe { RcuDomain::global().defer_free(old) };
                false
            }
            None => {
                new_ref
                    .next
                    .store(table.head_acquire(bucket), Ordering::Relaxed);
                table.publish_head(bucket, new);
                let len = self.len.fetch_add(1, Ordering::Relaxed) + 1;
                self.stats.bump(&self.stats.inserts);
                // Automatic resizing waits for grace periods; skip it when
                // the inserting thread holds a read guard or is an online
                // QSBR reader (either would self-deadlock) or an
                // incremental resize is already in flight, and let a later
                // insert (or the maintainer) catch up.
                if self.policy.should_expand(len, table.len())
                    && rp_rcu::global_read_nesting() == 0
                    && !rp_rcu::qsbr::global_qsbr_online()
                    // SAFETY: writer lock held.
                    && unsafe { self.resize_op_locked() }.is_none()
                {
                    // SAFETY: writer lock held.
                    unsafe { self.expand_locked() };
                }
                true
            }
        }
    }

    /// Inserts `key → value`, returning a clone of the previous value if the
    /// key was already present.
    pub fn insert_replacing(&self, key: K, value: V) -> Option<V>
    where
        V: Clone,
    {
        // Clone-under-guard first so the previous value can be returned even
        // though the old node is reclaimed asynchronously.
        let previous = self.get_cloned(&key);
        self.insert(key, value);
        previous
    }

    /// Removes `key`. Returns `true` if it was present.
    ///
    /// The removed entry is retired through the RCU domain and freed only
    /// after a grace period, so concurrent readers that still hold a
    /// reference to it remain safe.
    ///
    /// # Examples
    ///
    /// ```
    /// use rp_hash::RpHashMap;
    ///
    /// let map: RpHashMap<u64, String> = RpHashMap::new();
    /// map.insert(7, "seven".to_string());
    /// assert!(map.remove(&7));
    /// assert!(!map.remove(&7), "already gone");
    /// assert!(map.is_empty());
    /// ```
    pub fn remove<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.remove_prehashed(self.hash_of(key), key)
    }

    /// [`RpHashMap::remove`] with a caller-supplied hash (see
    /// [`RpHashMap::get_prehashed`] for the contract on `hash`).
    pub fn remove_prehashed<Q>(&self, hash: u64, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let guard = self.writer_lock();
        // SAFETY: writer lock held.
        let removed = unsafe { self.remove_one_locked(hash, key) };
        if removed {
            self.maybe_reclaim();
        }
        drop(guard);
        removed
    }

    /// Removes a batch of pre-hashed keys under a single writer-lock
    /// acquisition, the removal counterpart of
    /// [`RpHashMap::insert_many_prehashed`] (used by `rp-shard`'s
    /// `multi_remove` so a batch pays one lock round-trip per shard).
    ///
    /// Returns the number of keys that were present and removed. Automatic
    /// shrinking and reclamation behave exactly as for per-key
    /// [`RpHashMap::remove`] calls.
    pub fn remove_many_prehashed<'a, Q>(
        &self,
        keys: impl IntoIterator<Item = (u64, &'a Q)>,
    ) -> usize
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized + 'a,
    {
        let guard = self.writer_lock();
        let mut removed = 0;
        for (hash, key) in keys {
            // SAFETY: writer lock held for the whole batch.
            if unsafe { self.remove_one_locked(hash, key) } {
                removed += 1;
            }
        }
        self.maybe_reclaim();
        drop(guard);
        removed
    }

    /// One remove step.
    ///
    /// # Safety
    ///
    /// The caller must hold the writer lock.
    unsafe fn remove_one_locked<Q>(&self, hash: u64, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        // SAFETY: writer lock held per the caller contract.
        let table = unsafe { self.table_locked() };
        let bucket = table.bucket_of(hash);

        match self.find_locked(table, hash, key) {
            Some((prev, node)) => {
                // SAFETY: live node reachable under the writer lock.
                let node_ref = unsafe { &*node };
                let next = node_ref.next_acquire();
                match prev {
                    Some(p) => {
                        // SAFETY: `p` is `node`'s predecessor in the chain,
                        // also alive under the writer lock.
                        unsafe { p.as_ref() }.next.store(next, Ordering::Release);
                    }
                    None => table.publish_head(bucket, next),
                }
                // SAFETY: writer lock held; `node` was just unlinked from
                // its home chain.
                unsafe { self.fixup_unzip_links_locked(table, hash, node, next) };
                let len = self.len.fetch_sub(1, Ordering::Relaxed) - 1;
                self.stats.bump(&self.stats.removes);
                // SAFETY: unlinked above, allocated by `Node::alloc`,
                // readers pin the global domain.
                unsafe { RcuDomain::global().defer_free(node) };
                if self.policy.should_shrink(len, table.len())
                    && rp_rcu::global_read_nesting() == 0
                    && !rp_rcu::qsbr::global_qsbr_online()
                    // SAFETY: writer lock held.
                    && unsafe { self.resize_op_locked() }.is_none()
                {
                    // SAFETY: writer lock held.
                    unsafe { self.shrink_locked() };
                }
                true
            }
            None => false,
        }
    }

    /// Removes `key`, returning a clone of its value if it was present.
    pub fn remove_cloned<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        let previous = self.get_cloned(key);
        if self.remove(key) {
            previous
        } else {
            None
        }
    }

    /// Atomically renames `old_key` to `new_key`, keeping the value (the
    /// relativistic *move* operation from the authors' earlier work).
    ///
    /// A concurrent lookup for the entry observes the old key, the new key,
    /// or briefly both — but never neither. Returns `false` (and does
    /// nothing) if `old_key` is absent. If `new_key` already exists its
    /// value is replaced.
    pub fn rename<Q>(&self, old_key: &Q, new_key: K) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        let old_hash = self.hash_of(old_key);
        let new_hash = self.hash_of(&new_key);
        if old_hash == new_hash && new_key.borrow() == old_key {
            // Renaming a key to itself: nothing to move.
            return self.contains_key(old_key);
        }
        let guard = self.writer_lock();
        // SAFETY: writer lock held.
        let table = unsafe { self.table_locked() };

        let Some((_, old_node)) = self.find_locked(table, old_hash, old_key) else {
            return false;
        };
        // SAFETY: live node under the writer lock; value is immutable.
        let value = unsafe { &*old_node }.value.clone();

        // 1. Publish the entry under the new key (insert-or-replace at the
        //    head of the new bucket).
        let new_bucket = table.bucket_of(new_hash);
        let new_node = Node::alloc(new_hash, new_key, value);
        // SAFETY: unpublished node, exclusive access.
        let new_ref = unsafe { &*new_node };
        let displaced = self.find_locked::<K>(table, new_hash, &new_ref.key);
        new_ref
            .next
            .store(table.head_acquire(new_bucket), Ordering::Relaxed);
        table.publish_head(new_bucket, new_node);

        // 2. Unlink any entry the new key displaced (it is now shadowed by
        //    the head insertion, so readers already prefer the new node).
        if let Some((prev, dup)) = displaced {
            // Re-locate the predecessor: the head insertion may have made
            // the recorded predecessor stale only if the duplicate was the
            // head, in which case its new predecessor is `new_node`.
            // SAFETY: live nodes under the writer lock.
            let dup_next = unsafe { &*dup }.next_acquire();
            match prev {
                Some(p) => unsafe { p.as_ref() }
                    .next
                    .store(dup_next, Ordering::Release),
                None => new_ref.next.store(dup_next, Ordering::Release),
            }
            // SAFETY: writer lock held; `dup` was just unlinked.
            unsafe { self.fixup_unzip_links_locked(table, new_hash, dup, dup_next) };
            // SAFETY: unlinked, allocated by `Node::alloc`, global domain.
            unsafe { RcuDomain::global().defer_free(dup) };
            self.len.fetch_sub(1, Ordering::Relaxed);
        }

        // 3. Unlink the old entry. Readers searching for the old key during
        //    this window still find it; readers searching for the new key
        //    already find the new node.
        let old_bucket = table.bucket_of(old_hash);
        if let Some((prev, node)) = self.find_locked(table, old_hash, old_key) {
            // SAFETY: live nodes under the writer lock.
            let next = unsafe { &*node }.next_acquire();
            match prev {
                Some(p) => unsafe { p.as_ref() }.next.store(next, Ordering::Release),
                None => table.publish_head(old_bucket, next),
            }
            // SAFETY: writer lock held; `node` was just unlinked.
            unsafe { self.fixup_unzip_links_locked(table, old_hash, node, next) };
            // SAFETY: unlinked, allocated by `Node::alloc`, global domain.
            unsafe { RcuDomain::global().defer_free(node) };
        }
        self.stats.bump(&self.stats.replaces);
        self.maybe_reclaim();
        drop(guard);
        true
    }

    /// Removes every entry for which `f` returns `false`.
    ///
    /// Each entry is visited exactly once, even while an incremental resize
    /// is in progress (entries temporarily reachable from a bucket they do
    /// not belong to are visited from their home bucket only).
    pub fn retain<F>(&self, mut f: F)
    where
        F: FnMut(&K, &V) -> bool,
    {
        let _guard = self.writer_lock();
        // SAFETY: writer lock held.
        let table = unsafe { self.table_locked() };
        for bucket in 0..table.len() {
            let mut prev: Option<NonNull<Node<K, V>>> = None;
            let mut cur = table.head_acquire(bucket);
            while !cur.is_null() {
                // SAFETY: live node under the writer lock.
                let cur_ref = unsafe { &*cur };
                let next = cur_ref.next_acquire();
                // Mid-unzip a chain can hold foreign nodes; those are
                // judged from their home bucket (they remain valid
                // predecessors in this chain either way).
                let foreign = table.bucket_of(cur_ref.hash) != bucket;
                if foreign || f(&cur_ref.key, &cur_ref.value) {
                    prev = NonNull::new(cur);
                } else {
                    match prev {
                        Some(p) => {
                            // SAFETY: predecessor node, alive under the lock.
                            unsafe { p.as_ref() }.next.store(next, Ordering::Release);
                        }
                        None => table.publish_head(bucket, next),
                    }
                    // SAFETY: writer lock held; `cur` was just unlinked from
                    // its home chain.
                    unsafe { self.fixup_unzip_links_locked(table, cur_ref.hash, cur, next) };
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    self.stats.bump(&self.stats.removes);
                    // SAFETY: unlinked, allocated by `Node::alloc`.
                    unsafe { RcuDomain::global().defer_free(cur) };
                }
                cur = next;
            }
        }
        self.maybe_reclaim();
    }

    /// Removes all entries.
    pub fn clear(&self) {
        self.retain(|_, _| false);
    }

    /// Iterates over all key/value pairs under a read-side protection
    /// witness (an EBR guard or an online QSBR handle).
    ///
    /// Entries present for the whole iteration are yielded exactly once;
    /// entries inserted or removed concurrently may or may not be observed.
    pub fn iter<'g, P: ReadProtect>(&'g self, protect: &'g P) -> Iter<'g, K, V> {
        Iter::new(self.table_for_read(protect))
    }

    /// Iterates over all keys under a read-side protection witness.
    pub fn keys<'g, P: ReadProtect>(&'g self, protect: &'g P) -> Keys<'g, K, V> {
        Keys::new(self.iter(protect))
    }

    /// Iterates over all values under a read-side protection witness.
    pub fn values<'g, P: ReadProtect>(&'g self, protect: &'g P) -> Values<'g, K, V> {
        Values::new(self.iter(protect))
    }

    /// Collects all entries into a `Vec` (cloning), a convenience for tests
    /// and examples.
    pub fn to_vec(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let guard = rp_rcu::pin();
        self.iter(&guard)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Flushes retired nodes: waits for a grace period of every read-side
    /// flavor with registered readers and frees everything retired before
    /// the call.
    pub fn flush_retired(&self) {
        GraceSync::global().synchronize_and_reclaim();
    }

    /// Locates `key`'s node and its predecessor in the current table.
    ///
    /// Returns `(predecessor, node)`; `predecessor == None` means the node
    /// is the bucket head. Must be called with the writer lock held.
    #[allow(clippy::type_complexity)]
    fn find_locked<Q>(
        &self,
        table: &BucketArray<K, V>,
        hash: u64,
        key: &Q,
    ) -> Option<(Option<NonNull<Node<K, V>>>, *mut Node<K, V>)>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let bucket = table.bucket_of(hash);
        let mut prev: Option<NonNull<Node<K, V>>> = None;
        let mut cur = table.head_acquire(bucket);
        while !cur.is_null() {
            // SAFETY: nodes reachable from the table cannot be freed while
            // the writer lock is held: only writers retire nodes, retiring
            // happens under the same lock, and freeing waits for a grace
            // period besides.
            let cur_ref = unsafe { &*cur };
            if cur_ref.hash == hash && cur_ref.key.borrow() == key {
                return Some((prev, cur));
            }
            prev = NonNull::new(cur);
            cur = cur_ref.next_acquire();
        }
        None
    }

    /// Publishes `node` in place of the successor of `prev` (or as the
    /// bucket head if `prev` is `None`).
    fn link_after(
        &self,
        table: &BucketArray<K, V>,
        bucket: usize,
        prev: Option<NonNull<Node<K, V>>>,
        node: *mut Node<K, V>,
    ) {
        match prev {
            Some(p) => {
                // SAFETY: `p` is a live predecessor node under the writer
                // lock.
                unsafe { p.as_ref() }.next.store(node, Ordering::Release);
            }
            None => table.publish_head(bucket, node),
        }
    }

    fn maybe_reclaim(&self) {
        // Reclamation waits for a grace period, which can never complete if
        // the calling thread itself holds a read guard or is an online QSBR
        // reader; postpone it in those cases (a later update from a
        // quiescent thread — or the maintenance thread / a background
        // reclaimer — will catch up). The wait goes through `GraceSync` so
        // it covers QSBR readers of this map too.
        if rp_rcu::global_read_nesting() == 0 && !rp_rcu::qsbr::global_qsbr_online() {
            GraceSync::global().reclaim_if_pending(self.reclaim_threshold.load(Ordering::Relaxed));
        }
    }
}

impl<K, V, S> Drop for RpHashMap<K, V, S> {
    fn drop(&mut self) {
        // Exclusive access: no readers or writers exist. An incremental
        // resize may still be mid-flight, though; complete its chain surgery
        // first (no grace periods are needed without readers) so that every
        // node is reachable from exactly one bucket and can be freed
        // directly.
        let table_ptr = *self.table.get_mut();
        // SAFETY: the table pointer is always a live `BucketArray` allocated
        // by `BucketArray::new`; we own it exclusively here.
        let table = unsafe { Box::from_raw(table_ptr) };
        if let Some(mut op) = self.resize_op.get_mut().take() {
            Self::complete_resize_for_drop(&table, &mut op, &self.stats);
        }
        for bucket in table.buckets.iter() {
            let mut cur = bucket.load(Ordering::Relaxed);
            while !cur.is_null() {
                // SAFETY: nodes were allocated by `Node::alloc` and are
                // freed exactly once (each node is reachable from exactly
                // one bucket at rest; retired nodes were unlinked first and
                // are owned by the RCU domain's deferred queue instead).
                let node = unsafe { Box::from_raw(cur) };
                cur = node.next.load(Ordering::Relaxed);
            }
        }
    }
}

impl<K, V, S> std::fmt::Debug for RpHashMap<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpHashMap")
            .field("len", &self.len())
            .field("buckets", &self.num_buckets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnvBuildHasher;

    type Map = RpHashMap<u64, u64, FnvBuildHasher>;

    fn fnv_map(buckets: usize) -> Map {
        RpHashMap::with_buckets_and_hasher(buckets, FnvBuildHasher)
    }

    #[test]
    fn new_map_is_empty() {
        let map: RpHashMap<u32, u32> = RpHashMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.num_buckets(), 16);
        assert!(!map.contains_key(&1));
    }

    #[test]
    fn matching_prehashed_probes_without_a_borrowable_key() {
        // A String-keyed map probed by a byte slice: no Borrow<[u8]> for
        // String exists, so the matching lookup is the only alloc-free way.
        let map: RpHashMap<String, u64, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(16, FnvBuildHasher);
        map.insert("alpha".to_string(), 1);
        map.insert("beta".to_string(), 2);

        let probe: &[u8] = b"beta";
        let hash = map.hash_one("beta"); // hash once, as a str
        let guard = map.pin();
        assert_eq!(
            map.get_matching_prehashed(hash, |k| k.as_bytes() == probe, &guard),
            Some(&2)
        );
        assert_eq!(
            map.get_key_value_matching_prehashed(hash, |k| k.as_bytes() == probe, &guard)
                .map(|(k, _)| k.as_str()),
            Some("beta")
        );
        // A wrong hash misses even when the predicate would match.
        assert_eq!(
            map.get_matching_prehashed(hash ^ 1, |k| k.as_bytes() == probe, &guard),
            None
        );
        // The QSBR witness drives the same core.
        drop(guard);
        std::thread::spawn(move || {
            let handle = crate::QsbrReadHandle::register();
            assert_eq!(
                map.get_matching_prehashed(hash, |k| k.as_bytes() == probe, &handle),
                Some(&2)
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let map: RpHashMap<u32, u32> = RpHashMap::with_buckets(20);
        assert_eq!(map.num_buckets(), 32);
        let map: RpHashMap<u32, u32> = RpHashMap::with_buckets(0);
        assert_eq!(map.num_buckets(), 1);
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let map = fnv_map(8);
        assert!(map.insert(1, 100));
        assert!(map.insert(2, 200));
        assert_eq!(map.len(), 2);

        let guard = map.pin();
        assert_eq!(map.get(&1, &guard), Some(&100));
        assert_eq!(map.get(&2, &guard), Some(&200));
        assert_eq!(map.get(&3, &guard), None);
        drop(guard);

        assert!(map.remove(&1));
        assert!(!map.remove(&1));
        assert_eq!(map.len(), 1);
        assert!(!map.contains_key(&1));
        assert!(map.contains_key(&2));
    }

    #[test]
    fn insert_replaces_existing_value() {
        let map = fnv_map(4);
        assert!(map.insert(7, 1));
        assert!(!map.insert(7, 2));
        assert_eq!(map.len(), 1);
        assert_eq!(map.get_cloned(&7), Some(2));
        assert_eq!(map.stats().replaces, 1);
    }

    #[test]
    fn insert_replacing_returns_previous_value() {
        let map = fnv_map(4);
        assert_eq!(map.insert_replacing(1, 10), None);
        assert_eq!(map.insert_replacing(1, 20), Some(10));
        assert_eq!(map.get_cloned(&1), Some(20));
    }

    #[test]
    fn remove_cloned_returns_value() {
        let map = fnv_map(4);
        map.insert(5, 50);
        assert_eq!(map.remove_cloned(&5), Some(50));
        assert_eq!(map.remove_cloned(&5), None);
    }

    #[test]
    fn get_key_value_returns_stored_key() {
        let map: RpHashMap<String, u32> = RpHashMap::with_buckets(8);
        map.insert("alpha".to_string(), 1);
        let guard = map.pin();
        let (k, v) = map.get_key_value("alpha", &guard).unwrap();
        assert_eq!(k, "alpha");
        assert_eq!(*v, 1);
    }

    #[test]
    fn borrowed_key_lookup_works() {
        let map: RpHashMap<String, u32> = RpHashMap::new();
        map.insert("hello".to_string(), 5);
        let guard = map.pin();
        // Look up with &str against String keys.
        assert_eq!(map.get("hello", &guard), Some(&5));
        assert!(map.remove("hello"));
    }

    #[test]
    fn many_keys_collide_into_few_buckets() {
        // A 2-bucket table forces long chains; correctness must not depend
        // on distribution.
        let map = fnv_map(2);
        for i in 0..200 {
            assert!(map.insert(i, i * 10));
        }
        assert_eq!(map.len(), 200);
        let guard = map.pin();
        for i in 0..200 {
            assert_eq!(map.get(&i, &guard), Some(&(i * 10)));
        }
    }

    #[test]
    fn get_with_copies_under_guard() {
        let map: RpHashMap<u32, String> = RpHashMap::new();
        map.insert(1, "value".to_string());
        let len = map.get_with(&1, |v| v.len());
        assert_eq!(len, Some(5));
        assert_eq!(map.get_with(&2, |v| v.len()), None);
    }

    #[test]
    fn rename_moves_value_to_new_key() {
        let map: RpHashMap<String, u64> = RpHashMap::with_buckets(8);
        map.insert("old".to_string(), 7);
        assert!(map.rename("old", "new".to_string()));
        assert!(!map.contains_key("old"));
        assert_eq!(map.get_cloned("new"), Some(7));
        assert_eq!(map.len(), 1);
        // Renaming a missing key is a no-op.
        assert!(!map.rename("missing", "other".to_string()));
    }

    #[test]
    fn rename_onto_existing_key_replaces_it() {
        let map: RpHashMap<String, u64> = RpHashMap::with_buckets(8);
        map.insert("a".to_string(), 1);
        map.insert("b".to_string(), 2);
        assert!(map.rename("a", "b".to_string()));
        assert_eq!(map.len(), 1);
        assert_eq!(map.get_cloned("b"), Some(1));
        assert!(!map.contains_key("a"));
    }

    #[test]
    fn retain_keeps_matching_entries() {
        let map = fnv_map(8);
        for i in 0..20 {
            map.insert(i, i);
        }
        map.retain(|k, _| k % 2 == 0);
        assert_eq!(map.len(), 10);
        for i in 0..20 {
            assert_eq!(map.contains_key(&i), i % 2 == 0);
        }
    }

    #[test]
    fn clear_removes_everything() {
        let map = fnv_map(8);
        for i in 0..50 {
            map.insert(i, i);
        }
        map.clear();
        assert!(map.is_empty());
        assert!(!map.contains_key(&10));
        map.flush_retired();
    }

    #[test]
    fn len_and_load_factor_track_inserts() {
        let map = fnv_map(8);
        for i in 0..16 {
            map.insert(i, i);
        }
        assert_eq!(map.len(), 16);
        assert!((map.load_factor() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn reader_reference_survives_removal_until_guard_drop() {
        let map: RpHashMap<u32, String> = RpHashMap::new();
        map.insert(1, "payload".to_string());
        let guard = map.pin();
        let v = map.get(&1, &guard).unwrap();
        assert!(map.remove(&1));
        // The node is retired but cannot be freed while `guard` is alive.
        assert_eq!(v, "payload");
        drop(guard);
        map.flush_retired();
    }

    #[test]
    fn stats_count_operations() {
        let map = fnv_map(8);
        map.insert(1, 1);
        map.insert(1, 2);
        map.insert(2, 2);
        map.remove(&2);
        let stats = map.stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.replaces, 1);
        assert_eq!(stats.removes, 1);
    }

    #[test]
    fn drop_frees_all_nodes_without_reclaim() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        #[derive(Clone)]
        struct CountsDrop(Arc<AtomicUsize>);
        impl Drop for CountsDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        {
            let map: RpHashMap<u32, CountsDrop> = RpHashMap::with_buckets(4);
            for i in 0..10 {
                map.insert(i, CountsDrop(Arc::clone(&drops)));
            }
        }
        // All ten values dropped by the map's Drop (no removals happened, so
        // nothing is sitting in the deferred queue).
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn auto_expand_policy_grows_table() {
        let map: RpHashMap<u64, u64, FnvBuildHasher> = RpHashMap::with_buckets_hasher_and_policy(
            4,
            FnvBuildHasher,
            ResizePolicy {
                auto_expand: true,
                max_load_factor: 1.0,
                ..ResizePolicy::default()
            },
        );
        for i in 0..64 {
            map.insert(i, i);
        }
        assert!(
            map.num_buckets() >= 64,
            "expected auto-expansion, got {} buckets",
            map.num_buckets()
        );
        let guard = map.pin();
        for i in 0..64 {
            assert_eq!(map.get(&i, &guard), Some(&i));
        }
        assert!(map.stats().expands >= 4);
    }

    #[test]
    fn auto_shrink_policy_shrinks_table() {
        let map: RpHashMap<u64, u64, FnvBuildHasher> = RpHashMap::with_buckets_hasher_and_policy(
            64,
            FnvBuildHasher,
            ResizePolicy {
                auto_shrink: true,
                min_load_factor: 0.5,
                min_buckets: 4,
                ..ResizePolicy::default()
            },
        );
        for i in 0..64 {
            map.insert(i, i);
        }
        assert_eq!(map.num_buckets(), 64);
        for i in 0..64 {
            map.remove(&i);
        }
        assert!(
            map.num_buckets() <= 8,
            "expected auto-shrink, got {} buckets",
            map.num_buckets()
        );
        assert!(map.stats().shrinks >= 3);
    }
}
