//! Per-map operation and resize statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters.
#[derive(Debug, Default)]
pub(crate) struct AtomicMapStats {
    pub(crate) expands: AtomicU64,
    pub(crate) shrinks: AtomicU64,
    pub(crate) unzip_rounds: AtomicU64,
    pub(crate) unzip_splices: AtomicU64,
    pub(crate) resize_grace_periods: AtomicU64,
    pub(crate) inserts: AtomicU64,
    pub(crate) replaces: AtomicU64,
    pub(crate) removes: AtomicU64,
}

impl AtomicMapStats {
    pub(crate) fn snapshot(&self) -> MapStats {
        MapStats {
            expands: self.expands.load(Ordering::Relaxed),
            shrinks: self.shrinks.load(Ordering::Relaxed),
            unzip_rounds: self.unzip_rounds.load(Ordering::Relaxed),
            unzip_splices: self.unzip_splices.load(Ordering::Relaxed),
            resize_grace_periods: self.resize_grace_periods.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            replaces: self.replaces.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of an [`crate::RpHashMap`]'s counters.
///
/// Useful for the benchmark harness (e.g. reporting how many grace periods a
/// continuous-resize run waited for) and for the ablation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapStats {
    /// Completed expand (doubling) steps.
    pub expands: u64,
    /// Completed shrink (halving) steps.
    pub shrinks: u64,
    /// Unzip rounds performed across all expands (each round ends with one
    /// grace period).
    pub unzip_rounds: u64,
    /// Individual cross-link splices performed by unzip rounds.
    pub unzip_splices: u64,
    /// Grace periods waited for by resize operations.
    pub resize_grace_periods: u64,
    /// Keys newly inserted.
    pub inserts: u64,
    /// Values replaced for an existing key.
    pub replaces: u64,
    /// Keys removed.
    pub removes: u64,
}

impl MapStats {
    /// Total resize steps (expands + shrinks).
    pub fn resizes(&self) -> u64 {
        self.expands + self.shrinks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips() {
        let s = AtomicMapStats::default();
        s.bump(&s.expands);
        s.bump(&s.expands);
        s.bump(&s.shrinks);
        s.bump(&s.inserts);
        let snap = s.snapshot();
        assert_eq!(snap.expands, 2);
        assert_eq!(snap.shrinks, 1);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.resizes(), 3);
    }
}
