//! Bucket arrays.

use std::sync::atomic::{AtomicPtr, Ordering};

use crate::node::Node;

/// A bucket array: a power-of-two number of chain heads.
///
/// The bucket array is itself published through the map's table pointer and
/// reclaimed only after a grace period, so readers may traverse it freely
/// under a guard.
pub(crate) struct BucketArray<K, V> {
    /// `buckets.len() - 1`; bucket index for a hash `h` is `h & mask`.
    pub(crate) mask: usize,
    pub(crate) buckets: Box<[AtomicPtr<Node<K, V>>]>,
}

impl<K, V> BucketArray<K, V> {
    /// Allocates an array of `n` empty buckets (`n` must be a power of two).
    pub(crate) fn new(n: usize) -> Box<Self> {
        assert!(n.is_power_of_two(), "bucket count must be a power of two");
        let buckets: Box<[AtomicPtr<Node<K, V>>]> = (0..n)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Box::new(BucketArray {
            mask: n - 1,
            buckets,
        })
    }

    /// Number of buckets.
    pub(crate) fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Index of the bucket a hash belongs to.
    pub(crate) fn bucket_of(&self, hash: u64) -> usize {
        (hash as usize) & self.mask
    }

    /// Loads a bucket head with acquire ordering (`rcu_dereference`).
    pub(crate) fn head_acquire(&self, index: usize) -> *mut Node<K, V> {
        self.buckets[index].load(Ordering::Acquire)
    }

    /// Publishes a new head for bucket `index` (`rcu_assign_pointer`).
    pub(crate) fn publish_head(&self, index: usize, node: *mut Node<K, V>) {
        self.buckets[index].store(node, Ordering::Release);
    }
}

impl<K, V> std::fmt::Debug for BucketArray<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BucketArray")
            .field("buckets", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_array_is_empty() {
        let t: Box<BucketArray<u32, u32>> = BucketArray::new(8);
        assert_eq!(t.len(), 8);
        assert_eq!(t.mask, 7);
        for i in 0..8 {
            assert!(t.head_acquire(i).is_null());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_is_rejected() {
        let _: Box<BucketArray<u32, u32>> = BucketArray::new(6);
    }

    #[test]
    fn bucket_of_uses_low_bits() {
        let t: Box<BucketArray<u32, u32>> = BucketArray::new(16);
        assert_eq!(t.bucket_of(0), 0);
        assert_eq!(t.bucket_of(5), 5);
        assert_eq!(t.bucket_of(16 + 3), 3);
        assert_eq!(t.bucket_of(u64::MAX), 15);
    }

    #[test]
    fn publish_and_load_round_trip() {
        let t: Box<BucketArray<u32, u32>> = BucketArray::new(4);
        let node = Node::alloc(9, 1_u32, 2_u32);
        t.publish_head(1, node);
        assert_eq!(t.head_acquire(1), node);
        assert!(t.head_acquire(0).is_null());
        // SAFETY: the node was allocated above and never shared.
        unsafe { drop(Box::from_raw(node)) };
    }
}
