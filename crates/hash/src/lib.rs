//! Resizable, scalable, concurrent hash tables via relativistic programming.
//!
//! This crate implements the central contribution of Triplett, McKenney &
//! Walpole's USENIX ATC'11 paper: an open-chaining hash table whose lookups
//! are *wait-free* — no locks, no retries, no atomic read-modify-write
//! instructions — and which can nonetheless be **grown and shrunk while
//! readers run at full speed**.
//!
//! The resize algorithms rely on a relaxed but sufficient notion of
//! consistency: a reader traversing a hash bucket must always observe every
//! element that belongs to that bucket, but observing *extra* elements (ones
//! that belong to a sibling bucket) is harmless because the per-element key
//! comparison filters them out. Buckets that temporarily contain foreign
//! elements are called *imprecise*.
//!
//! * **Shrinking ("zip")** concatenates the chains of the old buckets that
//!   collapse into each new bucket, publishes the smaller bucket array, and
//!   waits for one grace period before reclaiming the old array.
//! * **Expanding ("unzip")** points each new bucket into the old chain at
//!   the first element that belongs to it, publishes the larger bucket
//!   array, and then incrementally splices the interleaved chains apart —
//!   one splice per chain per grace period — until every bucket is precise
//!   again.
//!
//! Readers are oblivious to all of this; they never see a bucket that is
//! missing one of its elements.
//!
//! # Example
//!
//! ```
//! use rp_hash::RpHashMap;
//!
//! let map: RpHashMap<u64, &'static str> = RpHashMap::with_buckets(8);
//! map.insert(1, "one");
//! map.insert(2, "two");
//! map.insert(3, "three");
//!
//! // Readers pin a guard; lookups are wait-free. (Other threads can keep
//! // reading like this while the resizes below are in progress; a single
//! // thread must drop its guard before *itself* resizing, since resizing
//! // waits for all readers.)
//! {
//!     let guard = map.pin();
//!     assert_eq!(map.get(&2, &guard), Some(&"two"));
//! }
//!
//! // Grow and shrink; the map stays fully readable throughout.
//! map.expand();
//! map.shrink();
//!
//! let guard = map.pin();
//! assert_eq!(map.get(&1, &guard), Some(&"one"));
//! assert_eq!(map.get(&3, &guard), Some(&"three"));
//! assert_eq!(map.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod fnv;
mod iter;
mod map;
mod node;
mod policy;
pub mod qsbr;
mod resize;
mod set;
mod stats;
mod table;

pub use fnv::{FnvBuildHasher, FnvHasher};
pub use iter::{Iter, Keys, Values};
pub use map::RpHashMap;
pub use policy::ResizePolicy;
pub use qsbr::{QsbrReadHandle, ReadProtect};
pub use resize::ResizeStep;
pub use set::RpHashSet;
pub use stats::MapStats;

/// Re-export of the guard type readers use to delimit lookups.
pub use rp_rcu::RcuGuard;
