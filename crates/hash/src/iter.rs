//! Guard-scoped iterators.

use crate::node::Node;
use crate::table::BucketArray;

/// An iterator over the key/value pairs of an [`crate::RpHashMap`].
///
/// The iterator is valid for the lifetime of the guard borrow it was created
/// with. Each entry that is present for the entire iteration is yielded
/// exactly once, even if a resize is in progress: nodes reachable from a
/// bucket they do not belong to (imprecise buckets) are skipped and yielded
/// from their home bucket instead.
pub struct Iter<'g, K, V> {
    table: &'g BucketArray<K, V>,
    bucket: usize,
    cur: *const Node<K, V>,
}

impl<'g, K, V> Iter<'g, K, V> {
    pub(crate) fn new(table: &'g BucketArray<K, V>) -> Self {
        Iter {
            table,
            bucket: 0,
            cur: if table.len() > 0 {
                table.head_acquire(0)
            } else {
                std::ptr::null()
            },
        }
    }
}

impl<'g, K: 'g, V: 'g> Iterator for Iter<'g, K, V> {
    type Item = (&'g K, &'g V);

    fn next(&mut self) -> Option<(&'g K, &'g V)> {
        loop {
            if self.cur.is_null() {
                // Advance to the next non-empty bucket.
                if self.bucket + 1 >= self.table.len() {
                    return None;
                }
                self.bucket += 1;
                self.cur = self.table.head_acquire(self.bucket);
                continue;
            }
            // SAFETY: the node was reached from a published bucket head /
            // next pointer while the guard borrowed by `'g` keeps the
            // read-side critical section open; nodes are freed only after a
            // grace period following their unlinking.
            let node = unsafe { &*self.cur };
            self.cur = node.next_acquire();
            // Skip entries that belong to a different bucket (possible only
            // while a concurrent resize leaves this bucket imprecise); they
            // are yielded from their home bucket.
            if self.table.bucket_of(node.hash) == self.bucket {
                return Some((&node.key, &node.value));
            }
        }
    }
}

impl<K, V> std::fmt::Debug for Iter<'_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iter")
            .field("bucket", &self.bucket)
            .finish()
    }
}

/// An iterator over the keys of an [`crate::RpHashMap`].
pub struct Keys<'g, K, V> {
    inner: Iter<'g, K, V>,
}

impl<'g, K, V> Keys<'g, K, V> {
    pub(crate) fn new(inner: Iter<'g, K, V>) -> Self {
        Keys { inner }
    }
}

impl<'g, K: 'g, V: 'g> Iterator for Keys<'g, K, V> {
    type Item = &'g K;

    fn next(&mut self) -> Option<&'g K> {
        self.inner.next().map(|(k, _)| k)
    }
}

/// An iterator over the values of an [`crate::RpHashMap`].
pub struct Values<'g, K, V> {
    inner: Iter<'g, K, V>,
}

impl<'g, K, V> Values<'g, K, V> {
    pub(crate) fn new(inner: Iter<'g, K, V>) -> Self {
        Values { inner }
    }
}

impl<'g, K: 'g, V: 'g> Iterator for Values<'g, K, V> {
    type Item = &'g V;

    fn next(&mut self) -> Option<&'g V> {
        self.inner.next().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use crate::{FnvBuildHasher, RpHashMap};
    use std::collections::BTreeSet;

    #[test]
    fn iter_visits_every_entry_exactly_once() {
        let map: RpHashMap<u64, u64, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(8, FnvBuildHasher);
        for i in 0..100 {
            map.insert(i, i + 1);
        }
        let guard = map.pin();
        let mut seen = BTreeSet::new();
        for (k, v) in map.iter(&guard) {
            assert_eq!(*v, *k + 1);
            assert!(seen.insert(*k), "key {k} yielded twice");
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn keys_and_values_agree_with_iter() {
        let map: RpHashMap<u64, u64, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(4, FnvBuildHasher);
        for i in 0..20 {
            map.insert(i, 100 + i);
        }
        let guard = map.pin();
        let keys: BTreeSet<u64> = map.keys(&guard).copied().collect();
        let values: BTreeSet<u64> = map.values(&guard).copied().collect();
        assert_eq!(keys, (0..20).collect());
        assert_eq!(values, (100..120).collect());
    }

    #[test]
    fn empty_map_iterates_nothing() {
        let map: RpHashMap<u64, u64> = RpHashMap::with_buckets(8);
        let guard = map.pin();
        assert_eq!(map.iter(&guard).count(), 0);
    }

    #[test]
    fn iteration_is_stable_across_resizes() {
        let map: RpHashMap<u64, u64, FnvBuildHasher> =
            RpHashMap::with_buckets_and_hasher(4, FnvBuildHasher);
        for i in 0..64 {
            map.insert(i, i);
        }
        map.expand();
        map.expand();
        map.shrink();
        let guard = map.pin();
        let seen: BTreeSet<u64> = map.keys(&guard).copied().collect();
        assert_eq!(seen.len(), 64);
    }
}
