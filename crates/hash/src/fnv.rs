//! A small, deterministic FNV-1a hasher.
//!
//! The default [`std::collections::hash_map::RandomState`] is perfectly fine
//! for [`crate::RpHashMap`]; this hasher exists so benchmarks and tests can
//! be deterministic and so the hashing cost stays small and constant across
//! runs (the paper's microbenchmark uses a trivial hash as well).

use std::hash::{BuildHasher, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`].
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher {
    state: u64,
}

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher { state: FNV_OFFSET }
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        // A final avalanche step spreads entropy into the low bits, which is
        // what the table's mask uses for bucket selection.
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// A [`BuildHasher`] producing [`FnvHasher`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FnvBuildHasher.hash_one(v)
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(&42_u64), hash_of(&42_u64));
        assert_eq!(hash_of(&"key"), hash_of(&"key"));
    }

    #[test]
    fn different_inputs_hash_differently() {
        assert_ne!(hash_of(&1_u64), hash_of(&2_u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn low_bits_are_well_distributed() {
        // Bucket selection uses the low bits; sequential keys must not all
        // collide in a small table.
        let mask = 63_u64;
        let mut seen = std::collections::HashSet::new();
        for i in 0_u64..64 {
            seen.insert(hash_of(&i) & mask);
        }
        assert!(
            seen.len() > 32,
            "sequential keys fill only {} of 64 buckets",
            seen.len()
        );
    }
}
