//! Maintenance-worker supervision: a panicking `MaintTarget::step` must be
//! contained (the worker keeps serving other units), the panicked unit must
//! be re-queued exactly once, and the panic must be counted.
//!
//! These tests panic on purpose; a quiet hook keeps the expected unwinds
//! out of the test log while still letting *unexpected* panics print.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rp_maint::{MaintConfig, MaintStep, MaintTarget, MaintThread, StepMode};

/// Installs a panic hook that suppresses messages for panics carrying the
/// given marker (the supervisor catches them anyway).
fn quiet_expected_panics(marker: &'static str) {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains(marker))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains(marker))
            })
            .unwrap_or(false);
        if !expected {
            default(info);
        }
    }));
}

/// Unit 0 panics on every `Normal` step (attempts are counted); the other
/// units are 3-step countdowns. `Drain` mode is a no-op so shutdown stays
/// quiet.
struct PoisonedUnit {
    attempts_on_poisoned: AtomicUsize,
    countdowns: Vec<AtomicUsize>,
}

impl PoisonedUnit {
    fn new(units: usize) -> Self {
        PoisonedUnit {
            attempts_on_poisoned: AtomicUsize::new(0),
            countdowns: (0..units).map(|_| AtomicUsize::new(3)).collect(),
        }
    }
}

impl MaintTarget for PoisonedUnit {
    fn units(&self) -> usize {
        self.countdowns.len()
    }

    fn step(&self, unit: usize, mode: StepMode) -> MaintStep {
        if mode == StepMode::Drain {
            return MaintStep::Idle;
        }
        if unit == 0 {
            self.attempts_on_poisoned.fetch_add(1, Ordering::SeqCst);
            panic!("supervision-test: injected step panic");
        }
        let remaining = self.countdowns[unit].load(Ordering::SeqCst);
        if remaining == 0 {
            return MaintStep::Idle;
        }
        self.countdowns[unit].store(remaining - 1, Ordering::SeqCst);
        match remaining {
            1 => MaintStep::Finished,
            3 => MaintStep::Began,
            _ => MaintStep::Splice,
        }
    }
}

/// Unit 0 panics on its first `Normal` step only, then counts down like the
/// rest — the transient-failure case the one-shot re-queue exists for.
struct TransientPanic {
    panicked: AtomicUsize,
    countdown: AtomicUsize,
}

impl MaintTarget for TransientPanic {
    fn units(&self) -> usize {
        1
    }

    fn step(&self, _unit: usize, mode: StepMode) -> MaintStep {
        if mode == StepMode::Drain {
            return MaintStep::Idle;
        }
        if self.panicked.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("supervision-test: transient step panic");
        }
        let remaining = self.countdown.load(Ordering::SeqCst);
        if remaining == 0 {
            return MaintStep::Idle;
        }
        self.countdown.store(remaining - 1, Ordering::SeqCst);
        if remaining == 1 {
            MaintStep::Finished
        } else {
            MaintStep::Splice
        }
    }
}

fn wait_until(mut done: impl FnMut() -> bool) {
    for _ in 0..2000 {
        if done() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(done(), "condition not reached within the bounded wait");
}

#[test]
fn panicking_unit_is_contained_requeued_once_and_counted() {
    quiet_expected_panics("supervision-test");
    let target = Arc::new(PoisonedUnit::new(3));
    let handle = MaintThread::spawn(
        Arc::clone(&target) as Arc<dyn MaintTarget>,
        MaintConfig::default(),
    );

    handle.request(0); // will panic
    handle.request(1); // must still complete despite the panic

    // The poisoned unit is attempted, re-queued once by the supervisor,
    // attempted again, and then dropped: exactly two attempts.
    wait_until(|| target.attempts_on_poisoned.load(Ordering::SeqCst) >= 2);
    wait_until(|| target.countdowns[1].load(Ordering::SeqCst) == 0);
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(
        target.attempts_on_poisoned.load(Ordering::SeqCst),
        2,
        "a deterministically-panicking unit gets its initial attempt plus \
         exactly one supervised retry"
    );

    // The worker survived: it still serves fresh requests for other units
    // and honors *new* external requests for the poisoned one (a single
    // fresh attempt; still no supervised re-queue since it never completed
    // a clean slice).
    handle.request(2);
    wait_until(|| target.countdowns[2].load(Ordering::SeqCst) == 0);
    handle.request(0);
    wait_until(|| target.attempts_on_poisoned.load(Ordering::SeqCst) >= 3);
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(target.attempts_on_poisoned.load(Ordering::SeqCst), 3);

    let stats = handle.stats();
    assert_eq!(
        stats.worker_panics, 3,
        "every contained panic is counted: {stats:?}"
    );
    assert_eq!(stats.resizes_finished, 2, "units 1 and 2 completed");
    handle.shutdown();
}

#[test]
fn transient_panic_recovers_via_the_single_requeue() {
    quiet_expected_panics("supervision-test");
    let target = Arc::new(TransientPanic {
        panicked: AtomicUsize::new(0),
        countdown: AtomicUsize::new(3),
    });
    let handle = MaintThread::spawn(
        Arc::clone(&target) as Arc<dyn MaintTarget>,
        MaintConfig::default(),
    );
    handle.request(0);
    wait_until(|| target.countdown.load(Ordering::SeqCst) == 0);
    let stats = handle.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(
        stats.resizes_finished, 1,
        "the one-shot re-queue finished the unit after its transient panic"
    );
    handle.shutdown();
}
